//! Generator orchestration and raw-format emission.
//!
//! [`generate`] produces parsed records plus a synthetic master file
//! list; [`generate_dataset`] runs the full preprocessing pipeline on
//! them (exactly what a user would do with real GDELT archives) and
//! returns the queryable [`Dataset`] with its cleaning report.

use crate::config::SynthConfig;
use crate::events::{
    headline_sketch, quarter_interval_range, sample_tone, EventSampler, EventSketch,
};
use crate::mentions::{choose_reporters_with_active, Article};
use crate::powerlaw::BoundedZipf;
use crate::sources::SourcePopulation;
use gdelt_columnar::{Dataset, DatasetBuilder};
use gdelt_csv::clean::CleanReport;
use gdelt_model::cameo::{CameoRoot, Goldstein, QuadClass};
use gdelt_model::country::CountryRegistry;
use gdelt_model::event::{ActionGeo, EventRecord, GeoType};
use gdelt_model::ids::EventId;
use gdelt_model::mention::{MentionRecord, MentionType};
use gdelt_model::time::CaptureInterval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Everything the generator produces.
#[derive(Debug)]
pub struct GeneratedData {
    /// The publisher population the corpus was built from.
    pub population: SourcePopulation,
    /// Parsed event records, id-ascending.
    pub events: Vec<EventRecord>,
    /// Parsed mention records (unordered; the builder sorts).
    pub mentions: Vec<MentionRecord>,
    /// Synthetic master file list text, faults included.
    pub masterlist: String,
}

/// Generate a corpus from a validated config.
///
/// # Panics
/// On an invalid config — call [`SynthConfig::validate`] first when the
/// config is user-supplied.
pub fn generate(cfg: &SynthConfig) -> GeneratedData {
    if let Err(e) = cfg.validate() {
        panic!("invalid synth config: {e}");
    }
    let registry = CountryRegistry::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let population = SourcePopulation::generate(cfg, &mut rng);
    let sampler = EventSampler::new(cfg);
    let popularity = BoundedZipf::new(cfg.popularity_max, cfg.popularity_alpha);

    // Active-source cache, one list per quarter.
    let active: Vec<Vec<u32>> = (0..cfg.n_quarters).map(|q| population.active_in(q)).collect();
    // Collection cutoff: GDELT only contains articles scraped inside the
    // archive window, so echo articles that would land past the end are
    // never observed (exactly like the real 2019-12-31 cutoff).
    let (_, collection_end) = quarter_interval_range(cfg.n_quarters - 1);

    // --- Sketch phase. ---
    let mut sketches: Vec<EventSketch> = Vec::with_capacity(cfg.n_events + 16);
    for _ in 0..cfg.n_events {
        let k = popularity.sample(&mut rng);
        sketches.push(sampler.sample(&mut rng, k));
    }
    for h in &cfg.headline_events {
        let country = registry.by_name(&h.country);
        let sketch = headline_sketch(&h.name, h.day, country, 0);
        if sketch.quarter >= cfg.n_quarters {
            continue; // outside the configured time range
        }
        let target = (h.coverage * active[sketch.quarter].len() as f64).round() as usize;
        sketches.push(EventSketch { target_articles: target.max(1), ..sketch });
    }
    sketches.sort_by_key(|s| s.interval.0);

    // --- Materialization phase. ---
    let mut events = Vec::with_capacity(sketches.len());
    let mut mentions = Vec::with_capacity(sketches.len() * 4);
    let mut next_id: u64 = 100_000_001;
    for sketch in &sketches {
        let act = &active[sketch.quarter];
        let mut articles = choose_reporters_with_active(
            &mut rng,
            &population,
            cfg,
            sketch.quarter,
            sketch.country,
            sketch.target_articles,
            act,
        );
        // Articles scraped after the collection window do not exist.
        articles.retain(|a| sketch.interval.0.saturating_add(a.delay) < collection_end);
        if articles.is_empty() {
            // GDELT events always carry at least one mention; fall back
            // to any active source (or drop the event in a dead quarter).
            let Some(&s) = act.first() else { continue };
            articles.push(Article { source: s, delay: 0 });
        }
        articles.sort_by_key(|a| a.delay);
        // GDELT creates the event when its first article is scraped, so
        // the originator's delay is zero by construction (this is why
        // the paper finds half of all sources with a min delay within
        // one interval — they originated at least once).
        articles[0].delay = 0;

        let id = EventId(next_id);
        next_id += 1 + rng.gen_range(0u64..8); // GDELT ids grow with gaps

        let date_added = sketch.interval.start();
        let root = CameoRoot::new(rng.gen_range(1..=20)).expect("in range");
        let originator = &population.sources[articles[0].source as usize].name;
        let source_url = match &sketch.headline {
            Some(name) => format!("https://en.wikipedia.org/wiki/{}", name.replace(' ', "_")),
            None => format!("https://{originator}/{}", id.raw()),
        };
        let distinct_sources = {
            let mut s: Vec<u32> = articles.iter().map(|a| a.source).collect();
            s.sort_unstable();
            s.dedup();
            s.len() as u32
        };
        let geo = if sketch.country.is_unknown() {
            ActionGeo::default()
        } else {
            let c = registry.get(sketch.country).expect("registry id");
            ActionGeo {
                geo_type: GeoType::Country,
                country_fips: c.fips.to_owned(),
                lat: Some(rng.gen_range(-60.0..70.0)),
                lon: Some(rng.gen_range(-180.0..180.0)),
            }
        };
        events.push(EventRecord {
            id,
            day: sketch.interval.date(),
            root,
            event_code: format!("{:02}0", root.0),
            // Actor geography follows the event: actor1 is usually the
            // event's own country; actor2 (when present — conflict/
            // cooperation dyads) is drawn from the global mix.
            actor1_country: {
                let c = if sketch.country.is_unknown() {
                    sampler.sample_country(&mut rng)
                } else {
                    sketch.country
                };
                registry.get(c).map(|c| c.cameo.to_owned()).unwrap_or_default()
            },
            actor2_country: if rng.gen::<f64>() < 0.45 {
                let c = sampler.sample_country(&mut rng);
                registry.get(c).map(|c| c.cameo.to_owned()).unwrap_or_default()
            } else {
                String::new()
            },
            quad_class: QuadClass::from_root(root),
            goldstein: Goldstein::new(rng.gen_range(-10.0..=10.0)).expect("in range"),
            num_mentions: articles.len() as u32,
            num_sources: distinct_sources,
            num_articles: articles.len() as u32,
            avg_tone: sample_tone(&mut rng),
            geo,
            date_added,
            source_url,
        });

        for (k, a) in articles.iter().enumerate() {
            let src = &population.sources[a.source as usize];
            let mention_iv = CaptureInterval(sketch.interval.0.saturating_add(a.delay));
            mentions.push(MentionRecord {
                event_id: id,
                event_time: date_added,
                mention_time: mention_iv.start(),
                mention_type: MentionType::Web,
                source_name: src.name.clone(),
                url: format!("https://{}/{}/{}", src.name, id.raw(), k),
                confidence: rng.gen_range(20..=100),
                doc_tone: sample_tone(&mut rng),
            });
        }
    }

    // --- Fault injection (Table II). ---
    let n = events.len();
    if n > 0 {
        for i in 0..(cfg.faults.missing_event_url as usize).min(n) {
            events[i * 7 % n].source_url.clear();
        }
        for i in 0..(cfg.faults.future_event_date as usize).min(n) {
            let idx = (i * 13 + 3) % n;
            let future = events[idx].date_added.date.add_days(rng.gen_range(2..30));
            events[idx].day = future;
        }
    }

    let masterlist = make_masterlist(cfg, &mut rng);
    GeneratedData { population, events, mentions, masterlist }
}

/// Synthesize the master file list for the configured time range, with
/// the configured number of malformed entries and missing archives.
pub fn make_masterlist(cfg: &SynthConfig, rng: &mut StdRng) -> String {
    let (_, end) = quarter_interval_range(cfg.n_quarters - 1);
    // Keep the list bounded: emit a *contiguous* window of at most 40 k
    // intervals (gap detection needs contiguity — a strided list would
    // read as missing archives everywhere).
    let start = end.saturating_sub(40_000);
    let covered: Vec<u32> = (start..end).collect();
    // Drop `missing_archives` interior intervals from the events side.
    let mut missing: Vec<usize> = Vec::new();
    if covered.len() > 2 {
        for _ in 0..cfg.faults.missing_archives {
            missing.push(rng.gen_range(1..covered.len() - 1));
        }
    }
    let mut out = String::with_capacity(covered.len() * 160);
    for (i, &iv) in covered.iter().enumerate() {
        let stamp = CaptureInterval(iv).start().to_yyyymmddhhmmss();
        let md5 = format!("{:032x}", (u128::from(iv) << 64) | 0xfeed_beef);
        if !missing.contains(&i) {
            let _ = writeln!(
                out,
                "{} {} http://data.gdeltproject.org/gdeltv2/{stamp}.export.CSV.zip",
                100_000 + iv,
                md5
            );
        }
        let _ = writeln!(
            out,
            "{} {} http://data.gdeltproject.org/gdeltv2/{stamp}.mentions.CSV.zip",
            200_000 + iv,
            md5
        );
    }
    for i in 0..cfg.faults.malformed_masterlist {
        let _ = writeln!(out, "corrupted entry number {i}");
    }
    out
}

/// Render the generated records as raw GDELT TSV (events text, mentions
/// text) — the exact bytes a real archive would contain.
pub fn to_tsv(data: &GeneratedData) -> (String, String) {
    let mut etext = String::new();
    gdelt_csv::writer::write_events(&mut etext, &data.events);
    let mut mtext = String::new();
    gdelt_csv::writer::write_mentions(&mut mtext, &data.mentions);
    (etext, mtext)
}

/// Run the full pipeline: generate, then convert through the
/// preprocessing builder (cleaning, interning, sorting, indexing).
pub fn generate_dataset(cfg: &SynthConfig) -> (Dataset, CleanReport) {
    let data = generate(cfg);
    let mut b = DatasetBuilder::new();
    b.ingest_masterlist(&data.masterlist);
    for e in data.events {
        b.add_event(e);
    }
    for m in data.mentions {
        b.add_mention(m);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{paper_calibrated, tiny};

    #[test]
    fn generates_requested_volume() {
        let cfg = tiny(21);
        let data = generate(&cfg);
        // Every ordinary event materializes unless its quarter is dead.
        assert!(data.events.len() >= cfg.n_events * 9 / 10);
        assert!(data.mentions.len() >= data.events.len());
        // Ids strictly ascending (events were time-sorted before ids).
        assert!(data.events.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny(22);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.mentions.len(), b.mentions.len());
        assert_eq!(a.events[0], b.events[0]);
        assert_eq!(a.mentions[10], b.mentions[10]);
        assert_eq!(a.masterlist, b.masterlist);
    }

    #[test]
    fn headline_events_have_top_coverage() {
        let cfg = tiny(23);
        let data = generate(&cfg);
        let max_articles = data.events.iter().map(|e| e.num_articles).max().unwrap();
        let headline_max = data
            .events
            .iter()
            .filter(|e| e.source_url.contains("wikipedia"))
            .map(|e| e.num_articles)
            .max()
            .unwrap_or(0);
        assert!(headline_max > 0, "no headline events generated");
        assert_eq!(max_articles, headline_max, "a headline event must top the chart");
    }

    #[test]
    fn event_mention_counts_agree() {
        let cfg = tiny(24);
        let data = generate(&cfg);
        let mut per_event = std::collections::HashMap::new();
        for m in &data.mentions {
            *per_event.entry(m.event_id).or_insert(0u32) += 1;
        }
        for e in &data.events {
            assert_eq!(
                per_event.get(&e.id).copied().unwrap_or(0),
                e.num_mentions,
                "event {}",
                e.id
            );
        }
    }

    #[test]
    fn faults_are_injected() {
        let cfg = tiny(25);
        let data = generate(&cfg);
        let blank_urls = data.events.iter().filter(|e| e.source_url.is_empty()).count();
        assert_eq!(blank_urls, cfg.faults.missing_event_url as usize);
        let future = data.events.iter().filter(|e| e.day_in_future()).count();
        assert_eq!(future, cfg.faults.future_event_date as usize);
        let garbage = data.masterlist.lines().filter(|l| l.starts_with("corrupted")).count();
        assert_eq!(garbage, cfg.faults.malformed_masterlist as usize);
    }

    #[test]
    fn full_pipeline_produces_valid_dataset() {
        let cfg = tiny(26);
        let (d, report) = generate_dataset(&cfg);
        assert_eq!(d.validate(), Ok(()));
        assert!(d.events.len() > 200);
        assert!(d.mentions.len() >= d.events.len());
        assert_eq!(report.missing_source_url, cfg.faults.missing_event_url as u64);
        assert_eq!(report.future_event_date, cfg.faults.future_event_date as u64);
        assert_eq!(report.malformed_masterlist, cfg.faults.malformed_masterlist as u64);
        assert!(report.missing_archives >= u64::from(cfg.faults.missing_archives));
        assert_eq!(report.bad_event_lines, 0);
        assert_eq!(report.bad_mention_lines, 0);
    }

    #[test]
    fn tsv_round_trip_matches_direct_build() {
        let cfg = tiny(27);
        let data = generate(&cfg);
        let (etext, mtext) = to_tsv(&data);
        let mut b = DatasetBuilder::new();
        b.ingest_events_text(&etext);
        b.ingest_mentions_text(&mtext);
        let (d_tsv, report) = b.build();
        assert_eq!(report.bad_event_lines, 0, "writer/parser disagreement");
        assert_eq!(report.bad_mention_lines, 0);
        assert_eq!(d_tsv.events.len(), data.events.len());
        assert_eq!(d_tsv.mentions.len(), data.mentions.len());
    }

    #[test]
    fn paper_scale_smoke() {
        // Smallest calibrated scale: structure intact, fast to build.
        let cfg = paper_calibrated(1e-5, 3);
        let (d, _) = generate_dataset(&cfg);
        assert_eq!(d.validate(), Ok(()));
        assert!(d.sources.len() >= 50);
        let articles_per_event = d.mentions.len() as f64 / d.events.len() as f64;
        assert!(
            (1.5..=8.0).contains(&articles_per_event),
            "articles/event {articles_per_event} implausible"
        );
    }
}
