//! # gdelt-synth
//!
//! Seeded synthetic GDELT workload generator.
//!
//! The paper analyzes the real GDELT 2.0 corpus (1.09 billion mentions,
//! 325 million events, 20 996 sources, 2015-02-18 … 2019-12-31). That
//! corpus is not redistributable and exceeds laptop memory, so this crate
//! generates a *statistically calibrated* stand-in: every published shape
//! the paper's experiments depend on is a generator parameter —
//!
//! * power-law articles-per-event with configurable exponent and cap
//!   (paper: max 5234, weighted mean 3.36; Fig 2);
//! * a Zipf source-productivity ladder with a media-group block of
//!   co-reporting regional publishers at the top (the Newsquest block of
//!   §VI-A/B; Figs 6–7, Table IV);
//! * per-source activity windows so only ~⅓ of sources are active in any
//!   quarter (Fig 3);
//! * TLD-based country mix with the UK/USA/Australia cluster and
//!   US-dominated event geography (Tables V–VII, Fig 8);
//! * per-source publishing-delay models with the 24 h news cycle and
//!   week/month/year echo modes (Fig 9, Table VIII), and a declining
//!   long-tail rate over time (Figs 10–11);
//! * the ten named headline events of Table III;
//! * optional fault injection reproducing the Table II problem classes.
//!
//! Everything is driven by a single `u64` seed: identical configs produce
//! identical datasets.

#![warn(missing_docs)]

pub mod config;
pub mod emit;
pub mod events;
pub mod mentions;
pub mod powerlaw;
pub mod scenario;
pub mod sources;

pub use config::{FaultConfig, SynthConfig};
pub use emit::{generate, generate_dataset, GeneratedData};
pub use scenario::{paper_calibrated, tiny};
pub use sources::{SourcePopulation, SpeedClass};
