//! Event-stream sampling: when and where events happen.

use crate::config::SynthConfig;
use crate::powerlaw::{sample_normal, WeightedIndex};
use gdelt_model::country::CountryRegistry;
use gdelt_model::ids::CountryId;
use gdelt_model::time::{CaptureInterval, Date, Quarter, INTERVALS_PER_DAY};
use rand::Rng;

/// The quarter containing the GDELT epoch (2015Q1).
pub fn epoch_quarter() -> Quarter {
    gdelt_model::time::GDELT_EPOCH.quarter()
}

/// Capture-interval range `[start, end)` of quarter index `q` (counted
/// from the epoch quarter). Quarter 0 is clamped to the 2015-02-18
/// archive start.
pub fn quarter_interval_range(q: usize) -> (u32, u32) {
    let epoch_days = gdelt_model::time::GDELT_EPOCH.to_days();
    let quarter = Quarter::from_linear(epoch_quarter().linear() + q as i32);
    let start_days = quarter.first_date().to_days().max(epoch_days);
    let end_days = quarter.next().first_date().to_days();
    let start = ((start_days - epoch_days) as u32) * INTERVALS_PER_DAY;
    let end = ((end_days - epoch_days) as u32) * INTERVALS_PER_DAY;
    (start, end)
}

/// Quarter index (from the epoch quarter) of a capture interval.
pub fn interval_quarter_index(iv: CaptureInterval) -> usize {
    (iv.quarter().linear() - epoch_quarter().linear()).max(0) as usize
}

/// A sampled event skeleton, before mention generation.
#[derive(Debug, Clone)]
pub struct EventSketch {
    /// Capture interval the event enters the database.
    pub interval: CaptureInterval,
    /// Quarter index of that interval.
    pub quarter: usize,
    /// Event-location country (unknown = untagged).
    pub country: CountryId,
    /// Target number of covering articles.
    pub target_articles: usize,
    /// Headline slug for Table III events.
    pub headline: Option<String>,
}

/// Sampler for ordinary (non-headline) events.
pub struct EventSampler {
    quarter_sampler: WeightedIndex,
    country_sampler: WeightedIndex,
    country_ids: Vec<CountryId>,
    untagged_frac: f64,
}

impl EventSampler {
    /// Build from the config (panics on unresolvable country names —
    /// configs are validated first).
    pub fn new(cfg: &SynthConfig) -> Self {
        let registry = CountryRegistry::new();
        let mut weights = cfg.quarter_weights.clone();
        weights.resize(cfg.n_quarters, 1.0);
        weights.truncate(cfg.n_quarters.max(1));
        let country_ids: Vec<CountryId> = cfg
            .event_country_weights
            .iter()
            .map(|(n, _)| {
                let id = registry.by_name(n);
                assert!(!id.is_unknown(), "unknown event country {n}");
                id
            })
            .collect();
        let cw: Vec<f64> = cfg.event_country_weights.iter().map(|&(_, w)| w).collect();
        EventSampler {
            quarter_sampler: WeightedIndex::new(&weights),
            country_sampler: WeightedIndex::new(&cw),
            country_ids,
            untagged_frac: cfg.untagged_geo_frac,
        }
    }

    /// Draw a country from the event-location mix (also used for actor
    /// codes, which follow the same geography).
    pub fn sample_country<R: Rng + ?Sized>(&self, rng: &mut R) -> CountryId {
        self.country_ids[self.country_sampler.sample(rng)]
    }

    /// Draw the timing and location of one ordinary event.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, target_articles: usize) -> EventSketch {
        let q = self.quarter_sampler.sample(rng);
        let (lo, hi) = quarter_interval_range(q);
        let interval = CaptureInterval(rng.gen_range(lo..hi.max(lo + 1)));
        let country = if rng.gen::<f64>() < self.untagged_frac {
            CountryId::UNKNOWN
        } else {
            self.country_ids[self.country_sampler.sample(rng)]
        };
        EventSketch { interval, quarter: q, country, target_articles, headline: None }
    }
}

/// Build the sketch for one headline event (Table III): fixed date,
/// morning capture, coverage resolved against the active source count by
/// the caller.
pub fn headline_sketch(
    name: &str,
    day: Date,
    country: CountryId,
    target_articles: usize,
) -> EventSketch {
    let epoch_days = gdelt_model::time::GDELT_EPOCH.to_days();
    let days = (day.to_days() - epoch_days).max(0) as u32;
    // Enter the database mid-morning local to the archive (08:00 UTC).
    let interval = CaptureInterval(days * INTERVALS_PER_DAY + 32);
    EventSketch {
        interval,
        quarter: interval_quarter_index(interval),
        country,
        target_articles,
        headline: Some(name.to_owned()),
    }
}

/// Random tone value: mildly negative mean, clamped to GDELT's range.
pub fn sample_tone<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    ((-1.5 + 3.0 * sample_normal(rng)) as f32).clamp(-20.0, 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::tiny;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epoch_quarter_is_2015q1() {
        assert_eq!(epoch_quarter(), Quarter { year: 2015, q: 1 });
    }

    #[test]
    fn quarter_zero_starts_at_interval_zero() {
        let (lo, hi) = quarter_interval_range(0);
        assert_eq!(lo, 0);
        // 2015-02-18 … 2015-04-01 is 42 days.
        assert_eq!(hi, 42 * INTERVALS_PER_DAY);
    }

    #[test]
    fn quarters_tile_without_gaps() {
        let mut prev_end = 0;
        for q in 0..20 {
            let (lo, hi) = quarter_interval_range(q);
            assert_eq!(lo, prev_end, "gap before quarter {q}");
            assert!(hi > lo);
            prev_end = hi;
        }
    }

    #[test]
    fn interval_quarter_round_trip() {
        for q in 0..12 {
            let (lo, hi) = quarter_interval_range(q);
            assert_eq!(interval_quarter_index(CaptureInterval(lo)), q);
            assert_eq!(interval_quarter_index(CaptureInterval(hi - 1)), q);
        }
    }

    #[test]
    fn sampler_respects_quarter_count() {
        let cfg = tiny(11);
        let s = EventSampler::new(&cfg);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let e = s.sample(&mut rng, 3);
            assert!(e.quarter < cfg.n_quarters);
            assert_eq!(interval_quarter_index(e.interval), e.quarter);
            assert_eq!(e.target_articles, 3);
            assert!(e.headline.is_none());
        }
    }

    #[test]
    fn untagged_fraction_is_respected() {
        let mut cfg = tiny(12);
        cfg.untagged_geo_frac = 0.5;
        let s = EventSampler::new(&cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 4_000;
        let untagged = (0..n).filter(|_| s.sample(&mut rng, 1).country.is_unknown()).count();
        let frac = untagged as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "untagged frac {frac}");
    }

    #[test]
    fn headline_sketch_lands_on_its_day() {
        let reg = CountryRegistry::new();
        let day = Date { year: 2016, month: 6, day: 12 };
        let h = headline_sketch("Orlando nightclub shooting, 2016", day, reg.by_name("USA"), 500);
        assert_eq!(h.interval.date(), day);
        assert_eq!(h.headline.as_deref(), Some("Orlando nightclub shooting, 2016"));
        assert_eq!(h.quarter, 5); // 2016Q2 is the 6th quarter from 2015Q1
    }

    #[test]
    fn tone_is_clamped() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let t = sample_tone(&mut rng);
            assert!((-20.0..=20.0).contains(&t));
        }
    }
}
