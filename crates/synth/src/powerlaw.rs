//! Discrete distribution samplers built on `rand`.
//!
//! The generator needs three non-uniform shapes: bounded Zipf/power-law
//! (event popularity, source productivity), weighted categorical
//! (countries, source choice), and a crude lognormal (publishing delays).
//! All are implemented from first principles — inverse-CDF over
//! precomputed tables for the discrete ones, Box–Muller for the normal —
//! to stay inside the approved dependency set.

use rand::Rng;

/// Bounded discrete power law: `P(k) ∝ k^-alpha` for `k in 1..=k_max`,
/// sampled by binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct BoundedZipf {
    cdf: Vec<f64>,
}

impl BoundedZipf {
    /// Build the table. `k_max` is clamped to at least 1.
    pub fn new(k_max: usize, alpha: f64) -> Self {
        let k_max = k_max.max(1);
        let mut cdf = Vec::with_capacity(k_max);
        let mut acc = 0.0;
        for k in 1..=k_max {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        BoundedZipf { cdf }
    }

    /// Draw one value in `1..=k_max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Theoretical mean of the bounded distribution.
    pub fn mean(&self) -> f64 {
        // Recover pmf from the cdf table.
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (i + 1) as f64 * (c - prev);
            prev = c;
        }
        mean
    }

    /// Upper bound of the support.
    pub fn k_max(&self) -> usize {
        self.cdf.len()
    }
}

/// Weighted categorical sampler over indexes `0..n` (cumulative-weight
/// binary search).
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cum: Vec<f64>,
}

impl WeightedIndex {
    /// Build from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
            acc += w;
            cum.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        WeightedIndex { cum }
    }

    /// Draw one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().expect("non-empty");
        let u: f64 = rng.gen::<f64>() * total;
        match self.cum.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) | Err(i) => i.min(self.cum.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True if there are no categories (never: `new` asserts non-empty).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }
}

/// Standard normal via Box–Muller.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Lognormal draw with the given location/scale of the underlying normal.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * sample_normal(rng)).exp()
}

/// Geometric-ish small-integer draw: number of failures before success
/// with probability `p` (clamped to avoid degenerate loops).
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u32 {
    let p = p.clamp(1e-6, 1.0);
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).max(1e-12).ln()).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zipf_stays_in_support() {
        let z = BoundedZipf::new(100, 2.2);
        let mut r = rng();
        for _ in 0..10_000 {
            let k = z.sample(&mut r);
            assert!((1..=100).contains(&k));
        }
        assert_eq!(z.k_max(), 100);
    }

    #[test]
    fn zipf_mass_concentrates_at_small_k() {
        let z = BoundedZipf::new(1000, 2.2);
        let mut r = rng();
        let n = 50_000;
        let small = (0..n).filter(|_| z.sample(&mut r) <= 5).count();
        // For alpha=2.2 about 93% of mass lies in 1..=5.
        assert!(small as f64 / n as f64 > 0.85, "small fraction {}", small as f64 / n as f64);
    }

    #[test]
    fn zipf_empirical_mean_matches_theory() {
        let z = BoundedZipf::new(5234, 2.23);
        let theory = z.mean();
        let mut r = rng();
        let n = 200_000;
        let sum: usize = (0..n).map(|_| z.sample(&mut r)).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - theory).abs() / theory < 0.15, "empirical {emp} vs theoretical {theory}");
        // Calibration target from Table I: weighted average 3.36.
        assert!((theory - 3.36).abs() < 0.7, "theory mean {theory} too far from 3.36");
    }

    #[test]
    fn zipf_k_max_one_is_constant() {
        let z = BoundedZipf::new(1, 2.0);
        let mut r = rng();
        assert!((0..100).all(|_| z.sample(&mut r) == 1));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[0.0, 3.0, 1.0]);
        let mut r = rng();
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        let _ = WeightedIndex::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_index_rejects_all_zero() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| sample_lognormal(&mut r, 2.8, 0.6)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal mean must exceed median");
    }

    #[test]
    fn geometric_mean_approximates_theory() {
        let mut r = rng();
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| u64::from(sample_geometric(&mut r, p))).sum();
        let emp = sum as f64 / n as f64;
        let theory = (1.0 - p) / p; // failures before success
        assert!((emp - theory).abs() < 0.15, "empirical {emp} theory {theory}");
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let z = BoundedZipf::new(50, 2.0);
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
