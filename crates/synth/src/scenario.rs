//! Preset generator scenarios.
//!
//! [`paper_calibrated`] reproduces the paper's dataset shapes at a
//! requested scale; [`tiny`] is a fast deterministic corpus for unit
//! tests.

use crate::config::{FaultConfig, HeadlineEvent, SynthConfig};
use gdelt_model::time::Date;

fn w(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
    pairs.iter().map(|&(n, v)| (n.to_owned(), v)).collect()
}

/// Event-location weights matching the Table VI row ordering: the USA
/// dominates, followed by UK, India, China, Australia, Canada, Nigeria,
/// Russia, Israel, Pakistan, with a modest tail.
fn event_country_weights() -> Vec<(String, f64)> {
    w(&[
        ("USA", 0.400),
        ("UK", 0.052),
        ("India", 0.029),
        ("China", 0.027),
        ("Australia", 0.029),
        ("Canada", 0.024),
        ("Nigeria", 0.014),
        ("Russia", 0.031),
        ("Israel", 0.025),
        ("Pakistan", 0.014),
        ("Germany", 0.013),
        ("France", 0.013),
        ("Japan", 0.011),
        ("Brazil", 0.009),
        ("Mexico", 0.008),
        ("Turkey", 0.008),
        ("Iran", 0.007),
        ("Syria", 0.007),
        ("South Korea", 0.007),
        ("Italy", 0.007),
        ("Spain", 0.006),
        ("Egypt", 0.006),
        ("South Africa", 0.006),
        ("Indonesia", 0.005),
        ("Philippines", 0.005),
        ("Ukraine", 0.005),
        ("Ireland", 0.004),
        ("Greece", 0.004),
        ("Saudi Arabia", 0.004),
        ("Afghanistan", 0.004),
        ("Iraq", 0.004),
        ("North Korea", 0.004),
        ("Argentina", 0.003),
        ("Poland", 0.003),
        ("Netherlands", 0.003),
        ("Sweden", 0.003),
        ("Switzerland", 0.003),
        ("Austria", 0.002),
        ("Belgium", 0.002),
        ("Norway", 0.002),
        ("Denmark", 0.002),
        ("Finland", 0.002),
        ("Portugal", 0.002),
        ("Czechia", 0.002),
        ("Hungary", 0.002),
        ("Romania", 0.002),
        ("Thailand", 0.002),
        ("Vietnam", 0.002),
        ("Malaysia", 0.002),
        ("Singapore", 0.002),
        ("Kenya", 0.002),
        ("Ghana", 0.002),
        ("Zimbabwe", 0.001),
        ("Sri Lanka", 0.001),
        ("Nepal", 0.001),
        ("Bangladesh", 0.003),
        ("Hong Kong", 0.002),
        ("Taiwan", 0.002),
        ("New Zealand", 0.002),
        ("Chile", 0.001),
        ("Colombia", 0.001),
        ("Peru", 0.001),
        ("Venezuela", 0.002),
        ("UAE", 0.002),
    ])
}

/// Source-country weights: the English-speaking cluster dominates
/// publishing (Tables V–VII); most US sites sit on generic TLDs.
fn source_country_weights() -> Vec<(String, f64)> {
    w(&[
        ("USA", 0.430),
        ("UK", 0.170),
        ("Australia", 0.090),
        ("India", 0.055),
        ("Italy", 0.020),
        ("Canada", 0.020),
        ("South Africa", 0.016),
        ("Nigeria", 0.013),
        ("Bangladesh", 0.012),
        ("Philippines", 0.011),
        ("Ireland", 0.015),
        ("New Zealand", 0.013),
        ("Pakistan", 0.010),
        ("Kenya", 0.008),
        ("Ghana", 0.008),
        ("Singapore", 0.008),
        ("Malaysia", 0.008),
        ("Hong Kong", 0.007),
        ("Israel", 0.007),
        ("Germany", 0.007),
        ("France", 0.006),
        ("Spain", 0.006),
        ("Japan", 0.006),
        ("China", 0.006),
        ("Russia", 0.006),
        ("Turkey", 0.005),
        ("UAE", 0.005),
        ("Sri Lanka", 0.005),
        ("Nepal", 0.004),
        ("Zimbabwe", 0.004),
        ("Thailand", 0.004),
        ("Indonesia", 0.004),
        ("Vietnam", 0.003),
        ("South Korea", 0.003),
        ("Taiwan", 0.003),
        ("Greece", 0.003),
        ("Netherlands", 0.003),
        ("Sweden", 0.002),
        ("Norway", 0.002),
        ("Denmark", 0.002),
        ("Poland", 0.002),
        ("Brazil", 0.002),
        ("Mexico", 0.002),
        ("Egypt", 0.002),
        ("Saudi Arabia", 0.002),
    ])
}

/// The English-language press with a global news diet (Table V's
/// tightly-coupled cluster plus its satellites).
fn outlook_countries() -> Vec<String> {
    ["UK", "USA", "Australia", "Canada", "Ireland", "New Zealand"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// The ten most-reported events of Table III, with their real dates.
fn headline_events() -> Vec<HeadlineEvent> {
    let h = |name: &str, y: i32, m: u8, d: u8, country: &str, coverage: f64| HeadlineEvent {
        name: name.to_owned(),
        day: Date { year: y, month: m, day: d },
        country: country.to_owned(),
        coverage,
    };
    vec![
        h("Orlando nightclub shooting, 2016", 2016, 6, 12, "USA", 0.850),
        h("Las Vegas shooting, 2017", 2017, 10, 1, "USA", 0.836),
        h("Shooting of Dallas police officers, 2016", 2016, 7, 7, "USA", 0.833),
        h("Shooting of Alton Sterling, 2016", 2016, 7, 5, "USA", 0.803),
        h("Donald Trump announces running for a second term, 2019", 2019, 6, 18, "USA", 0.748),
        h("Reactions to shooting of Dallas police officers, 2016", 2016, 7, 8, "USA", 0.731),
        h("Reactions to Orlando nightclub shooting, 2016", 2016, 6, 13, "USA", 0.681),
        h("El Paso shooting, 2019", 2019, 8, 3, "USA", 0.655),
        h("NRA activity, 2019", 2019, 4, 27, "USA", 0.648),
        h("Russian reaction to Donald Trump election, 2017", 2017, 1, 20, "Russia", 0.647),
    ]
}

/// Mild volume decline in the final two years (Figs 4–5); the first
/// quarter is partial (the archive starts 2015-02-18).
fn quarter_weights(n_quarters: usize) -> Vec<f64> {
    (0..n_quarters)
        .map(|q| {
            let base = if q == 0 { 0.45 } else { 1.0 };
            // From 2018Q1 (q = 12) volumes sag slightly.
            let decline = if q >= 12 { 1.0 - 0.03 * (q - 11) as f64 } else { 1.0 };
            base * decline.max(0.5)
        })
        .collect()
}

/// The paper-calibrated scenario at `scale` (1.0 would be the full 325 M
/// events / 21 k sources corpus; benchmarks typically run 1e-4 … 1e-2).
///
/// Scaling rules: source count and event count scale linearly (with
/// floors so tiny scales stay structurally faithful); the per-event
/// article cap tracks source count the way the paper's does (max 5234 ≈
/// a quarter of all sources); headline coverage fractions stay fixed.
pub fn paper_calibrated(scale: f64, seed: u64) -> SynthConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let n_sources = ((20_996.0 * scale) as usize).max(120);
    let n_events = ((324_564_472.0 * scale) as usize).max(2_000);
    SynthConfig {
        seed,
        n_sources,
        n_events,
        n_quarters: 20, // 2015Q1 … 2019Q4
        popularity_alpha: 2.23,
        // Ordinary events cap well below headline coverage (~0.6–0.85 of
        // active sources ≈ n/4), so the named Table III events stay on
        // top at every scale, as in the paper.
        popularity_max: (n_sources / 6).max(8),
        productivity_alpha: 0.82,
        media_group_size: 8,
        extra_groups: 6,
        extra_group_size: 5,
        cluster_pull: 0.45,
        home_boost: 2.0,
        global_outlook_countries: outlook_countries(),
        periphery_foreign_weight: 0.50,
        untagged_geo_frac: 0.25,
        repeat_prob: 0.06,
        echo_week: 0.020,
        echo_month: 0.012,
        echo_year: 0.006,
        late_decline: 0.93,
        quarter_weights: quarter_weights(20),
        event_country_weights: event_country_weights(),
        source_country_weights: source_country_weights(),
        fast_frac: 0.05,
        slow_frac: 0.22,
        headline_events: headline_events(),
        faults: FaultConfig::paper(),
    }
}

/// A minimal fast corpus for unit tests: a few hundred events over eight
/// quarters, all structural features present.
pub fn tiny(seed: u64) -> SynthConfig {
    SynthConfig {
        seed,
        n_sources: 60,
        n_events: 300,
        n_quarters: 8,
        popularity_alpha: 2.2,
        // Kept well below the active-source count so the planted
        // headline events dominate Table III even at this scale.
        popularity_max: 8,
        productivity_alpha: 0.8,
        media_group_size: 6,
        extra_groups: 2,
        extra_group_size: 4,
        cluster_pull: 0.5,
        home_boost: 2.0,
        global_outlook_countries: outlook_countries(),
        periphery_foreign_weight: 0.50,
        untagged_geo_frac: 0.2,
        repeat_prob: 0.08,
        echo_week: 0.03,
        echo_month: 0.02,
        echo_year: 0.01,
        late_decline: 0.9,
        quarter_weights: quarter_weights(8),
        event_country_weights: event_country_weights(),
        source_country_weights: source_country_weights(),
        fast_frac: 0.1,
        slow_frac: 0.2,
        headline_events: headline_events().into_iter().take(3).collect(),
        faults: FaultConfig {
            malformed_masterlist: 2,
            missing_archives: 1,
            missing_event_url: 1,
            future_event_date: 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdelt_model::country::CountryRegistry;

    #[test]
    fn paper_scenario_validates_at_various_scales() {
        for scale in [1e-4, 1e-3, 1e-2, 0.1, 1.0] {
            let cfg = paper_calibrated(scale, 7);
            assert_eq!(cfg.validate(), Ok(()), "scale {scale}");
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_zero_scale() {
        let _ = paper_calibrated(0.0, 1);
    }

    #[test]
    fn full_scale_matches_paper_counts() {
        let cfg = paper_calibrated(1.0, 1);
        assert_eq!(cfg.n_sources, 20_996);
        assert_eq!(cfg.n_events, 324_564_472);
        assert_eq!(cfg.n_quarters, 20);
        // Ordinary events cap at ~n/6; the paper's 5234 maximum belongs
        // to the headline events, which scale with active sources.
        assert_eq!(cfg.popularity_max, 3499);
        assert_eq!(cfg.headline_events.len(), 10);
        assert_eq!(cfg.headline_events[0].name, "Orlando nightclub shooting, 2016");
    }

    #[test]
    fn all_config_countries_resolve_in_registry() {
        let reg = CountryRegistry::new();
        let cfg = paper_calibrated(1e-3, 1);
        for (name, _) in cfg.event_country_weights.iter().chain(&cfg.source_country_weights) {
            assert!(!reg.by_name(name).is_unknown(), "unresolvable country {name}");
        }
        for h in &cfg.headline_events {
            assert!(!reg.by_name(&h.country).is_unknown());
        }
    }

    #[test]
    fn quarter_weights_shape() {
        let qw = quarter_weights(20);
        assert_eq!(qw.len(), 20);
        assert!(qw[0] < qw[1], "first quarter is partial");
        assert!(qw[19] < qw[5], "late quarters decline");
        assert!(qw.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn headline_coverage_is_descending() {
        let hs = headline_events();
        for p in hs.windows(2) {
            assert!(p[0].coverage >= p[1].coverage);
        }
    }

    #[test]
    fn tiny_is_small_and_valid() {
        let cfg = tiny(3);
        assert!(cfg.n_events <= 1000);
        assert_eq!(cfg.validate(), Ok(()));
    }
}
