//! Generator configuration.
//!
//! Every statistical shape the paper's experiments rest on is a field
//! here; `scenario::paper_calibrated` fills them with values matched to
//! the paper's published statistics, scaled down to a requested corpus
//! size.

use gdelt_model::time::Date;

/// Fault-injection counts reproducing the Table II problem classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Malformed master-file-list entries to emit (paper: 53).
    pub malformed_masterlist: u32,
    /// Archives to drop from the master list (paper: 8).
    pub missing_archives: u32,
    /// Events whose `SOURCEURL` is blanked (paper: 1).
    pub missing_event_url: u32,
    /// Events whose day is pushed past their capture date (paper: 4).
    pub future_event_date: u32,
}

impl FaultConfig {
    /// The exact counts of Table II.
    pub fn paper() -> Self {
        FaultConfig {
            malformed_masterlist: 53,
            missing_archives: 8,
            missing_event_url: 1,
            future_event_date: 4,
        }
    }
}

/// A named high-coverage event (Table III row).
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineEvent {
    /// Human-readable description used as the source-URL slug, so the
    /// Table III reproduction can print it.
    pub name: String,
    /// The day it happened.
    pub day: Date,
    /// Country name (registry display name) where it happened.
    pub country: String,
    /// Fraction of then-active sources that reported on it (the paper's
    /// Orlando row is ≈85 %).
    pub coverage: f64,
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Master seed; identical configs produce identical corpora.
    pub seed: u64,
    /// Number of news sources (paper: 20 996).
    pub n_sources: usize,
    /// Number of ordinary events to generate (paper: 324.6 M).
    pub n_events: usize,
    /// Number of calendar quarters starting 2015Q1 (paper: 20; the first
    /// starts at the 2015-02-18 epoch and is partial).
    pub n_quarters: usize,
    /// Power-law exponent for articles-per-event (Fig 2 shape).
    pub popularity_alpha: f64,
    /// Cap on articles per ordinary event (paper max: 5234, reached by
    /// the headline events below).
    pub popularity_max: usize,
    /// Zipf exponent of the source-productivity ladder.
    pub productivity_alpha: f64,
    /// Size of the dominant co-owned regional media group (the paper
    /// finds 8 of the Top 10 publishers in one UK group).
    pub media_group_size: usize,
    /// Additional smaller media groups.
    pub extra_groups: usize,
    /// Size of each extra group.
    pub extra_group_size: usize,
    /// Probability that selecting one group member pulls in another
    /// member of the same group for the same event (drives the Table IV
    /// / Fig 7 co-reporting block).
    pub cluster_pull: f64,
    /// Selection boost for sources whose country matches the event's.
    pub home_boost: f64,
    /// Countries whose press has a "global outlook" — their sources
    /// cover foreign and untagged events at full weight. Everyone else
    /// covers foreign news at [`SynthConfig::periphery_foreign_weight`].
    /// This is what separates the paper's UK–USA–Australia co-reporting
    /// cluster (Table V) from the weakly-connected periphery.
    pub global_outlook_countries: Vec<String>,
    /// Relative weight at which non-outlook sources pick up foreign or
    /// untagged events (≤ 1).
    pub periphery_foreign_weight: f64,
    /// Fraction of events with no usable geotag (paper §VI-D notes local
    /// news is often untagged).
    pub untagged_geo_frac: f64,
    /// Probability a covering source publishes a follow-up article on
    /// the same event (Table IV diagonal).
    pub repeat_prob: f64,
    /// Per-article probability of a one-week echo (Fig 9 max-delay
    /// groups).
    pub echo_week: f64,
    /// Per-article probability of a one-month echo.
    pub echo_month: f64,
    /// Per-article probability of a one-year echo.
    pub echo_year: f64,
    /// Multiplicative per-quarter decay of long-delay probability,
    /// producing the declining >24 h article count of Fig 11 and the
    /// falling average delay of Fig 10a.
    pub late_decline: f64,
    /// Relative weight of each quarter's event volume (padded/truncated
    /// to `n_quarters`; paper shows mild decline in 2018–19, Figs 4–5).
    pub quarter_weights: Vec<f64>,
    /// Event-location mix as (registry country name, weight); the
    /// remainder after `untagged_geo_frac` is split by these weights
    /// (Table VI: US dominates).
    pub event_country_weights: Vec<(String, f64)>,
    /// Source-country mix as (registry country name, weight) —
    /// UK/USA/Australia-heavy per Tables V–VII.
    pub source_country_weights: Vec<(String, f64)>,
    /// Fractions of fast / slow sources (the rest are average;
    /// §VI-E's three speed groups).
    pub fast_frac: f64,
    /// See [`SynthConfig::fast_frac`].
    pub slow_frac: f64,
    /// Named headline events (Table III).
    pub headline_events: Vec<HeadlineEvent>,
    /// Table II fault injection.
    pub faults: FaultConfig,
}

impl SynthConfig {
    /// Sanity-check parameter ranges; called by the generator.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_sources == 0 {
            return Err("n_sources must be positive".into());
        }
        if self.n_quarters == 0 || self.n_quarters > 400 {
            return Err("n_quarters must be in 1..=400".into());
        }
        if !(1.0..=5.0).contains(&self.popularity_alpha) {
            return Err("popularity_alpha must be in [1, 5]".into());
        }
        if self.popularity_max == 0 {
            return Err("popularity_max must be positive".into());
        }
        for (name, p) in [
            ("cluster_pull", self.cluster_pull),
            ("untagged_geo_frac", self.untagged_geo_frac),
            ("repeat_prob", self.repeat_prob),
            ("echo_week", self.echo_week),
            ("echo_month", self.echo_month),
            ("echo_year", self.echo_year),
            ("fast_frac", self.fast_frac),
            ("slow_frac", self.slow_frac),
            ("periphery_foreign_weight", self.periphery_foreign_weight),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.fast_frac + self.slow_frac > 1.0 {
            return Err("fast_frac + slow_frac must not exceed 1".into());
        }
        if !(0.0..=1.0).contains(&self.late_decline) {
            return Err("late_decline must be in [0, 1]".into());
        }
        if self.home_boost < 1.0 {
            return Err("home_boost must be >= 1".into());
        }
        if self.event_country_weights.is_empty() || self.source_country_weights.is_empty() {
            return Err("country weight tables must be non-empty".into());
        }
        for h in &self.headline_events {
            if !(0.0..=1.0).contains(&h.coverage) {
                return Err(format!("headline coverage out of range for {}", h.name));
            }
        }
        Ok(())
    }

    /// Number of media groups in total (the dominant one plus extras),
    /// or zero when the dominant group is empty.
    pub fn n_groups(&self) -> usize {
        usize::from(self.media_group_size > 0) + self.extra_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::tiny;

    #[test]
    fn tiny_scenario_validates() {
        assert_eq!(tiny(1).validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_probability() {
        let mut c = tiny(1);
        c.repeat_prob = 1.5;
        assert!(c.validate().is_err());
        c.repeat_prob = 0.1;
        c.fast_frac = 0.7;
        c.slow_frac = 0.7;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_sources() {
        let mut c = tiny(1);
        c.n_sources = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_low_home_boost() {
        let mut c = tiny(1);
        c.home_boost = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn paper_faults_match_table_ii() {
        let f = FaultConfig::paper();
        assert_eq!(
            (f.malformed_masterlist, f.missing_archives, f.missing_event_url, f.future_event_date),
            (53, 8, 1, 4)
        );
    }

    #[test]
    fn group_count() {
        let mut c = tiny(1);
        c.media_group_size = 8;
        c.extra_groups = 3;
        assert_eq!(c.n_groups(), 4);
        c.media_group_size = 0;
        assert_eq!(c.n_groups(), 3);
    }
}
