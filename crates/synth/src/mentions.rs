//! Coverage and publishing-delay models.
//!
//! Given an event sketch, decide *who* reports it (productivity-weighted
//! with home-country boost and media-group pull — the generators of the
//! co-/follow-reporting structure in Tables IV–V and Fig 7) and *when*
//! (per-speed-class delay distributions with week/month/year echo modes —
//! the generators of Fig 9, Table VIII and Figs 10–11).

use crate::config::SynthConfig;
use crate::powerlaw::{sample_geometric, sample_lognormal};
use crate::sources::{SourcePopulation, SpeedClass};
use gdelt_model::ids::CountryId;
use gdelt_model::time::{INTERVALS_PER_DAY, INTERVALS_PER_WEEK};
use rand::Rng;
use std::collections::HashSet;

/// One year plus one day of intervals — the paper's ubiquitous maximum
/// observed delay (Table VIII).
pub const MAX_DELAY: u32 = 366 * INTERVALS_PER_DAY - 1; // 35 135

/// Intervals in a 30-day month.
pub const INTERVALS_PER_MONTH: u32 = 30 * INTERVALS_PER_DAY;

/// Sample the base publishing delay for one article from a source of the
/// given speed class, in quarter `q` (0-based from the epoch quarter).
///
/// * `Fast` — geometric, mostly 0–8 intervals (≤ 2 h);
/// * `Average` — lognormal with median ≈ 16 intervals (4 h), the 24 h
///   news-cycle group;
/// * `Slow` — lognormal with median around 5–6 days, shrinking by
///   `late_decline` per quarter (drives Fig 10a / Fig 11).
pub fn sample_base_delay<R: Rng + ?Sized>(
    rng: &mut R,
    speed: SpeedClass,
    q: usize,
    cfg: &SynthConfig,
) -> u32 {
    match speed {
        SpeedClass::Fast => sample_geometric(rng, 0.30).min(2 * INTERVALS_PER_DAY),
        SpeedClass::Average => {
            let d = sample_lognormal(rng, (16.0f64).ln(), 0.80);
            (d.round() as u32).min(MAX_DELAY)
        }
        SpeedClass::Slow => {
            let scale = cfg.late_decline.powi(q as i32);
            let d = sample_lognormal(rng, (520.0 * scale).max(32.0).ln(), 1.35);
            (d.round() as u32).clamp(1, MAX_DELAY)
        }
    }
}

/// Overlay the echo modes: with (declining) probability an article is a
/// retrospective piece landing near one week, one month or one year
/// after the event — the three late groups of Fig 9's maximum-delay
/// histogram.
pub fn apply_echo<R: Rng + ?Sized>(rng: &mut R, base: u32, q: usize, cfg: &SynthConfig) -> u32 {
    let decay = cfg.late_decline.powi(q as i32);
    let u: f64 = rng.gen();
    let week_p = cfg.echo_week * decay;
    let month_p = cfg.echo_month * decay;
    let year_p = cfg.echo_year * decay;
    if u < year_p {
        rng.gen_range(MAX_DELAY - 400..=MAX_DELAY)
    } else if u < year_p + month_p {
        INTERVALS_PER_MONTH + rng.gen_range(0..2 * INTERVALS_PER_DAY)
    } else if u < year_p + month_p + week_p {
        INTERVALS_PER_WEEK + rng.gen_range(0..INTERVALS_PER_DAY / 2)
    } else {
        base
    }
}

/// Full per-article delay: base distribution plus echo overlay.
pub fn sample_delay<R: Rng + ?Sized>(
    rng: &mut R,
    speed: SpeedClass,
    q: usize,
    cfg: &SynthConfig,
) -> u32 {
    let base = sample_base_delay(rng, speed, q, cfg);
    apply_echo(rng, base, q, cfg)
}

/// One generated article: which source, how many intervals after the
/// event it appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Article {
    /// Index into the [`SourcePopulation`].
    pub source: u32,
    /// Publishing delay in capture intervals.
    pub delay: u32,
}

/// Choose the reporters (and their delays) for one event.
///
/// Selection is productivity-weighted rejection sampling restricted to
/// sources active in quarter `q`, with `home_boost` for same-country
/// sources and `cluster_pull` spreading coverage through media groups.
/// For saturation-level targets (headline events covering most of the
/// active population) selection switches to a Bernoulli sweep over all
/// active sources, which is both faster and exact.
pub fn choose_reporters<R: Rng + ?Sized>(
    rng: &mut R,
    pop: &SourcePopulation,
    cfg: &SynthConfig,
    q: usize,
    event_country: CountryId,
    target: usize,
) -> Vec<Article> {
    let active = pop.active_in(q);
    choose_reporters_with_active(rng, pop, cfg, q, event_country, target, &active)
}

/// As [`choose_reporters`], with the active-source list precomputed by
/// the caller (the generator caches one list per quarter instead of
/// rescanning the population for every event).
#[allow(clippy::too_many_arguments)]
pub fn choose_reporters_with_active<R: Rng + ?Sized>(
    rng: &mut R,
    pop: &SourcePopulation,
    cfg: &SynthConfig,
    q: usize,
    event_country: CountryId,
    target: usize,
    active_hint: &[u32],
) -> Vec<Article> {
    let mut chosen: Vec<u32> = Vec::with_capacity(target.min(64));
    let mut seen: HashSet<u32> = HashSet::with_capacity(target.min(64));

    if active_hint.is_empty() {
        return Vec::new();
    }
    let saturating = target * 2 >= active_hint.len();

    if saturating {
        // Headline path: keep each active source with probability
        // target / active, scaled down for periphery press covering a
        // foreign story (same weighting as the rejection path below —
        // otherwise a handful of world events would dominate the event
        // sets of small countries and distort Table V).
        let p = (target as f64 / active_hint.len() as f64).min(1.0);
        for &s in active_hint {
            let model = &pop.sources[s as usize];
            let home = !event_country.is_unknown() && model.country == event_country;
            let rel = if home || model.outlook { 1.0 } else { cfg.periphery_foreign_weight };
            if rng.gen::<f64>() < p * rel {
                seen.insert(s);
                chosen.push(s);
            }
        }
    } else {
        // Generous cap: rejection losses (inactive draws, duplicate hits
        // on the most productive sources, periphery penalties) would
        // otherwise depress the realized articles-per-event mean well
        // below the configured Zipf mean.
        let max_attempts = 60 * target + 200;
        let mut attempts = 0;
        while chosen.len() < target && attempts < max_attempts {
            attempts += 1;
            let s = pop.sample_source(rng) as u32;
            let model = &pop.sources[s as usize];
            if !model.is_active(q) || seen.contains(&s) {
                continue;
            }
            // Home-country boost / periphery foreign penalty, applied via
            // normalized rejection. Outlook-country press covers the
            // whole world; periphery press mostly covers home events —
            // the Table V cluster structure.
            let weight = if !event_country.is_unknown() && model.country == event_country {
                cfg.home_boost
            } else if model.outlook {
                1.0
            } else {
                cfg.periphery_foreign_weight
            };
            if rng.gen::<f64>() >= weight / cfg.home_boost {
                continue;
            }
            seen.insert(s);
            chosen.push(s);
            // Media-group pull: co-owned outlets syndicate coverage.
            if let Some(g) = model.group {
                for &member in &pop.groups[g as usize] {
                    if chosen.len() >= target {
                        break;
                    }
                    if member != s
                        && !seen.contains(&member)
                        && pop.sources[member as usize].is_active(q)
                        && rng.gen::<f64>() < cfg.cluster_pull
                    {
                        seen.insert(member);
                        chosen.push(member);
                    }
                }
            }
        }
    }

    // Delays, plus occasional same-source follow-up articles (Table IV
    // diagonal).
    let mut articles = Vec::with_capacity(chosen.len() + 4);
    for &s in &chosen {
        let speed = pop.sources[s as usize].speed;
        let delay = sample_delay(rng, speed, q, cfg);
        articles.push(Article { source: s, delay });
        if rng.gen::<f64>() < cfg.repeat_prob {
            let extra = 1 + sample_lognormal(rng, (24.0f64).ln(), 0.8).round() as u32;
            articles.push(Article { source: s, delay: (delay + extra).min(MAX_DELAY) });
        }
    }
    articles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::tiny;
    use crate::sources::SourcePopulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (SynthConfig, SourcePopulation, StdRng) {
        let cfg = tiny(seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pop = SourcePopulation::generate(&cfg, &mut rng);
        (cfg, pop, rng)
    }

    #[test]
    fn max_delay_is_papers_35135() {
        assert_eq!(MAX_DELAY, 35_135);
    }

    #[test]
    fn fast_sources_report_quickly() {
        let (cfg, _, mut rng) = setup(1);
        let n = 5_000;
        let quick =
            (0..n).filter(|_| sample_base_delay(&mut rng, SpeedClass::Fast, 0, &cfg) <= 8).count();
        assert!(quick as f64 / n as f64 > 0.85, "fast quick frac {}", quick as f64 / n as f64);
    }

    #[test]
    fn average_sources_have_median_near_16() {
        let (cfg, _, mut rng) = setup(2);
        let mut d: Vec<u32> =
            (0..9_001).map(|_| sample_base_delay(&mut rng, SpeedClass::Average, 0, &cfg)).collect();
        d.sort_unstable();
        let median = d[d.len() / 2];
        assert!((10..=24).contains(&median), "median {median}");
    }

    #[test]
    fn slow_sources_are_much_later_and_decline_over_quarters() {
        let (cfg, _, mut rng) = setup(3);
        let mean = |rng: &mut StdRng, q: usize| {
            (0..4_000)
                .map(|_| sample_base_delay(rng, SpeedClass::Slow, q, &cfg) as f64)
                .sum::<f64>()
                / 4_000.0
        };
        let early = mean(&mut rng, 0);
        let late = mean(&mut rng, 12);
        assert!(early > 300.0, "slow mean {early} too small");
        assert!(late < early, "slow delays should decline: {early} -> {late}");
    }

    #[test]
    fn delays_never_exceed_max() {
        let (cfg, _, mut rng) = setup(4);
        for speed in [SpeedClass::Fast, SpeedClass::Average, SpeedClass::Slow] {
            for q in [0, 7] {
                for _ in 0..2_000 {
                    assert!(sample_delay(&mut rng, speed, q, &cfg) <= MAX_DELAY);
                }
            }
        }
    }

    #[test]
    fn echo_produces_week_month_year_modes() {
        let (mut cfg, _, mut rng) = setup(5);
        cfg.echo_week = 0.2;
        cfg.echo_month = 0.2;
        cfg.echo_year = 0.2;
        let mut week = 0;
        let mut month = 0;
        let mut year = 0;
        let n = 10_000;
        for _ in 0..n {
            let d = apply_echo(&mut rng, 5, 0, &cfg);
            if (INTERVALS_PER_WEEK..INTERVALS_PER_WEEK + 48).contains(&d) {
                week += 1;
            } else if (INTERVALS_PER_MONTH..INTERVALS_PER_MONTH + 192).contains(&d) {
                month += 1;
            } else if d >= MAX_DELAY - 400 {
                year += 1;
            }
        }
        assert!(week > n / 10, "week echoes {week}");
        assert!(month > n / 10, "month echoes {month}");
        assert!(year > n / 10, "year echoes {year}");
    }

    #[test]
    fn reporters_are_distinct_active_and_near_target() {
        let (cfg, pop, mut rng) = setup(6);
        let reg = gdelt_model::country::CountryRegistry::new();
        let us = reg.by_name("USA");
        for _ in 0..50 {
            let arts = choose_reporters(&mut rng, &pop, &cfg, 2, us, 8);
            // Distinct first-articles per source (repeats allowed after).
            let mut firsts: Vec<u32> = arts.iter().map(|a| a.source).collect();
            firsts.sort_unstable();
            for a in &arts {
                assert!(pop.sources[a.source as usize].is_active(2));
            }
            // Can't exceed target by more than the repeat articles.
            let distinct = {
                let mut f = firsts.clone();
                f.dedup();
                f.len()
            };
            assert!(distinct <= 8 + pop.groups.iter().map(Vec::len).max().unwrap_or(0));
        }
    }

    #[test]
    fn saturating_target_covers_most_active_sources() {
        let (cfg, pop, mut rng) = setup(7);
        let active = pop.active_count(1);
        let target = (active as f64 * 0.85) as usize;
        let arts = choose_reporters(&mut rng, &pop, &cfg, 1, CountryId::UNKNOWN, target);
        let mut srcs: Vec<u32> = arts.iter().map(|a| a.source).collect();
        srcs.sort_unstable();
        srcs.dedup();
        let frac = srcs.len() as f64 / active as f64;
        assert!((0.6..=1.0).contains(&frac), "coverage {frac}");
    }

    #[test]
    fn group_pull_creates_cluster_coreporting() {
        let (mut cfg, pop, mut rng) = setup(8);
        cfg.cluster_pull = 0.9;
        // Count events where ≥2 group-0 members co-report.
        let mut both = 0;
        let n = 300;
        for _ in 0..n {
            let arts = choose_reporters(&mut rng, &pop, &cfg, 0, CountryId::UNKNOWN, 5);
            let g0 = arts
                .iter()
                .filter(|a| pop.sources[a.source as usize].group == Some(0))
                .map(|a| a.source)
                .collect::<HashSet<_>>();
            if g0.len() >= 2 {
                both += 1;
            }
        }
        assert!(both > n / 4, "co-reporting events {both}/{n}");
    }

    #[test]
    fn empty_quarter_returns_no_articles() {
        let (cfg, pop, mut rng) = setup(9);
        // Quarter index beyond every activity window.
        let arts = choose_reporters(&mut rng, &pop, &cfg, 500, CountryId::UNKNOWN, 5);
        assert!(arts.is_empty());
    }
}
