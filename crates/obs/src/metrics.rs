//! Metrics: counters, gauges, and mergeable log-linear histograms
//! behind a process-wide registry with Prometheus-style exposition.
//!
//! Recording is lock-free (`Relaxed` atomics throughout — each metric
//! is a monotone accumulator, never a synchronisation point). The
//! histogram is log-linear: values below [`LINEAR_MAX`] land in exact
//! unit buckets, larger values fall into 32 sub-buckets per power of
//! two, so the recorded→reported error is bounded by one bucket width
//! (≤ value/32). Snapshots merge associatively and commutatively,
//! which is what lets per-thread histograms roll up into one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Values below this are recorded exactly (unit-width buckets).
pub const LINEAR_MAX: u64 = 256;
/// Sub-buckets per octave above the linear range.
const SUBS: usize = 32;
/// First octave above the linear range: `LINEAR_MAX == 1 << 8`.
const FIRST_OCTAVE: u32 = 8;
/// 256 unit buckets + 32 sub-buckets for each octave 8..=63. Public
/// so tests (and the snapshot serde bounds check) can exercise the
/// fully-populated case.
pub const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE as usize) * SUBS;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bucket index for a recorded value.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - 5)) & (SUBS as u64 - 1)) as usize;
        LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUBS + sub
    }
}

/// Inclusive lower bound of a bucket (the value quantiles report).
fn bucket_lower(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let rel = i - LINEAR_MAX as usize;
        let octave = FIRST_OCTAVE + (rel / SUBS) as u32;
        let sub = (rel % SUBS) as u64;
        (1u64 << octave) + (sub << (octave - 5))
    }
}

/// Width of a bucket: 1 in the linear range, 2^(octave-5) above it.
fn bucket_width(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        1
    } else {
        let octave = FIRST_OCTAVE + ((i - LINEAR_MAX as usize) / SUBS) as u32;
        1u64 << (octave - 5)
    }
}

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (queue depths, resident entries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-linear histogram with lock-free recording.
///
/// Unlike the latency ring it replaced in `crates/serve`, the histogram
/// never forgets: every sample since creation contributes to the
/// quantiles, so a sustained-load tail cannot age out of the window.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// Quantile of the live histogram; see
    /// [`HistogramSnapshot::quantile`] for the rank convention.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// Owned copy of a histogram's state; merges across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistogramSnapshot { counts: vec![0; NUM_BUCKETS], sum: 0, count: 0 }
    }

    /// Raw bucket counts, for the snapshot JSON serde.
    pub(crate) fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild from raw parts; `counts` must be [`NUM_BUCKETS`] long
    /// (the JSON parser guarantees this by construction).
    pub(crate) fn from_raw(counts: Vec<u64>, sum: u64, count: u64) -> Self {
        debug_assert_eq!(counts.len(), NUM_BUCKETS);
        HistogramSnapshot { counts, sum, count }
    }

    /// Fold another snapshot in. Bucket-wise addition, so merging is
    /// associative and commutative (the proptests pin this). Wrapping,
    /// to match the `fetch_add` semantics of live recording — a merge
    /// must never panic where the histogram itself would have wrapped.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
    }

    /// Nearest-rank quantile, matching the rank convention the serve
    /// latency ring used (0-based rank `round((count-1) * q)`): exact
    /// for values below [`LINEAR_MAX`], bucket lower bound above it.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_lower(i);
            }
        }
        bucket_lower(NUM_BUCKETS - 1)
    }

    /// Upper bound of the error `quantile` can make for a value that
    /// landed in the same bucket: the bucket width at that value.
    pub fn max_error_at(v: u64) -> u64 {
        bucket_width(bucket_index(v))
    }

    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs for every
    /// non-empty bucket, ascending — the `_bucket{le=...}` series.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_lower(i) + bucket_width(i) - 1, cum));
            }
        }
        out
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotone counter.
    Counter(Arc<Counter>),
    /// Instantaneous gauge.
    Gauge(Arc<Gauge>),
    /// Log-linear histogram.
    Histogram(Arc<Histogram>),
}

/// Named collection of metrics; renders Prometheus text exposition.
///
/// Lookup takes a mutex, so call sites resolve their metric once and
/// hold the `Arc` — recording on the handle is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Prometheus metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`. Anything else
/// is mapped to `_` so instrumentation sites cannot produce an
/// exposition that fails its own validator.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        // analyze: allow(hot_alloc): runs once per metric registration, never per sample
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

impl Registry {
    /// An empty registry. Most callers want [`crate::global`] instead.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// If `name` is already registered as a different kind, a detached
    /// (unregistered) counter is returned so recording still works.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let name = sanitize(name);
        let mut m = lock_recover(&self.metrics);
        match m.entry(name).or_insert_with(|| Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::default()),
        }
    }

    /// The gauge registered under `name`; same contract as `counter`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let name = sanitize(name);
        let mut m = lock_recover(&self.metrics);
        match m.entry(name).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// The histogram registered under `name`; same contract as `counter`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let name = sanitize(name);
        let mut m = lock_recover(&self.metrics);
        match m.entry(name).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// The metric registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Metric> {
        lock_recover(&self.metrics).get(&sanitize(name)).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        lock_recover(&self.metrics).keys().cloned().collect()
    }

    /// Owned, mergeable, wire-able copy of every registered metric —
    /// the unit of cross-process metrics federation.
    pub fn snapshot(&self) -> crate::snapshot::RegistrySnapshot {
        let metrics = lock_recover(&self.metrics);
        let mut out = crate::snapshot::RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    out.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    out.hists.insert(name.clone(), h.snapshot());
                }
            }
        }
        out
    }

    /// Prometheus text exposition of every registered metric, names in
    /// sorted order. Histograms emit only their non-empty buckets (the
    /// log-linear layout has 2048) plus the mandatory `+Inf`, `_sum`
    /// and `_count` series. Round-trips through
    /// [`crate::validate_prometheus`].
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let metrics = lock_recover(&self.metrics);
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    for (le, cum) in snap.cumulative() {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR_MAX {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_width(i), 1);
        }
    }

    #[test]
    fn bucket_bounds_bracket_the_value() {
        for shift in 8..63 {
            for v in [1u64 << shift, (1u64 << shift) + 7, (1u64 << (shift + 1)) - 1] {
                let i = bucket_index(v);
                let lo = bucket_lower(i);
                let w = bucket_width(i);
                assert!(lo <= v && v < lo + w, "v={v} lo={lo} w={w}");
                assert!(w <= v / 16, "width {w} too coarse for {v}");
            }
        }
        let i = bucket_index(u64::MAX);
        assert!(i < NUM_BUCKETS);
        // The top bucket ends exactly at u64::MAX — no overflow, no gap.
        assert_eq!(bucket_lower(i) + (bucket_width(i) - 1), u64::MAX);
    }

    #[test]
    fn quantile_matches_the_serve_ring_convention() {
        let h = Histogram::new();
        for us in 1..=100 {
            h.record(us);
        }
        // 0-based rank round((n-1)*q), same as the old sorted-ring
        // percentile(): p50 of 1..=100 is 51, p99 is 99.
        assert_eq!(h.quantile(0.50), 51);
        assert_eq!(h.quantile(0.95), 95);
        assert_eq!(h.quantile(0.99), 99);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(1_000_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1_000_030);
        let p = s.quantile(1.0);
        assert!(p <= 1_000_000 && 1_000_000 - p <= HistogramSnapshot::max_error_at(1_000_000));
    }

    #[test]
    fn cumulative_is_ascending_and_ends_at_count() {
        let h = Histogram::new();
        for v in [0u64, 1, 255, 256, 300, 70_000, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let cum = snap.cumulative();
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, snap.count);
    }

    #[test]
    fn registry_handles_are_idempotent_and_shared() {
        let r = Registry::new();
        r.counter("requests_total").add(2);
        r.counter("requests_total").inc();
        assert_eq!(r.counter("requests_total").get(), 3);
        r.gauge("queue_depth").set(-4);
        assert_eq!(r.gauge("queue_depth").get(), -4);
        r.histogram("latency_us").record(42);
        assert_eq!(r.histogram("latency_us").count(), 1);
        // Kind mismatch yields a detached instance, not a panic.
        assert_eq!(r.gauge("requests_total").get(), 0);
        assert_eq!(r.counter("requests_total").get(), 3);
    }

    #[test]
    fn names_are_sanitized_to_prometheus_syntax() {
        let r = Registry::new();
        r.counter("serve.cache-hits");
        assert_eq!(r.names(), vec!["serve_cache_hits".to_string()]);
        r.counter("9lives");
        assert!(r.names().contains(&"_lives".to_string()));
    }

    #[test]
    fn render_emits_all_three_kinds() {
        let r = Registry::new();
        r.counter("c_total").add(5);
        r.gauge("g_now").set(7);
        let h = r.histogram("h_us");
        h.record(3);
        h.record(500);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE c_total counter\nc_total 5\n"), "{text}");
        assert!(text.contains("# TYPE g_now gauge\ng_now 7\n"), "{text}");
        assert!(text.contains("# TYPE h_us histogram\n"), "{text}");
        assert!(text.contains("h_us_bucket{le=\"3\"} 1\n"), "{text}");
        assert!(text.contains("h_us_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("h_us_sum 503\n"), "{text}");
        assert!(text.contains("h_us_count 2\n"), "{text}");
    }
}
