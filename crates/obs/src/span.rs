//! Structured spans: RAII-timed intervals recorded into per-thread
//! buffers and drained for Chrome trace export.
//!
//! Cost model (the DESIGN.md overhead budget leans on this):
//!
//! - **Tracing disabled** (the default): [`span`] is one `OnceLock`
//!   get plus one `Relaxed` load and returns an inert guard whose drop
//!   does nothing. No clock read, no allocation, no lock.
//! - **Tracing enabled**: the guard reads the clock twice and pushes a
//!   `Copy` record into this thread's pre-reserved buffer under an
//!   uncontended per-thread mutex (the mutex exists only so
//!   [`take_spans`] can drain other threads' buffers). Steady state is
//!   allocation-free: the buffer is reserved at [`RESERVE`] records on
//!   first use and only regrows past that.
//!
//! Buffers are never bounded — a tracing session is expected to be
//! short (one replay, one query) and drained promptly. Thread buffers
//! registered by exited threads stay in the sink list until drained;
//! that is a few empty `Vec`s, not a leak that grows with traffic.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Arguments a span can carry (kept fixed-size so records stay `Copy`).
pub const MAX_SPAN_ARGS: usize = 2;

/// Per-thread buffer capacity reserved up front.
const RESERVE: usize = 256;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One completed span, as drained by [`take_spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Event name (e.g. `"run_query"`).
    pub name: &'static str,
    /// Category / layer (e.g. `"engine"`, `"ingest"`, `"serve"`).
    pub cat: &'static str,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u32,
    /// Up to [`MAX_SPAN_ARGS`] named integer arguments.
    pub args: [(&'static str, u64); MAX_SPAN_ARGS],
    /// How many entries of `args` are live.
    pub n_args: u8,
}

struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    sinks: Mutex<Vec<Arc<Mutex<Vec<SpanRecord>>>>>,
    next_tid: AtomicU32,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        sinks: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(0),
    })
}

struct ThreadSink {
    tid: u32,
    buf: Arc<Mutex<Vec<SpanRecord>>>,
}

thread_local! {
    static LOCAL: RefCell<Option<ThreadSink>> = const { RefCell::new(None) };
}

fn record(mut rec: SpanRecord) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let sink = slot.get_or_insert_with(|| {
            let t = tracer();
            let buf = Arc::new(Mutex::new(Vec::with_capacity(RESERVE)));
            lock_recover(&t.sinks).push(Arc::clone(&buf));
            ThreadSink { tid: t.next_tid.fetch_add(1, Ordering::Relaxed), buf }
        });
        rec.tid = sink.tid;
        lock_recover(&sink.buf).push(rec);
    });
}

/// Turn span recording on or off process-wide. Already-buffered spans
/// survive a disable and remain drainable.
pub fn set_tracing(on: bool) {
    tracer().enabled.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
pub fn tracing_enabled() -> bool {
    tracer().enabled.load(Ordering::Relaxed)
}

/// Drain every thread's buffered spans, sorted by start time. Live
/// threads' buffers keep their reserved capacity, so a drain does not
/// reintroduce allocation into their recording path; buffers whose
/// thread has exited (only the sink list still holds them) are pruned
/// here so short-lived pool threads cannot accumulate dead buffers.
pub fn take_spans() -> Vec<SpanRecord> {
    let t = tracer();
    let mut out = Vec::new();
    lock_recover(&t.sinks).retain(|sink| {
        out.extend(lock_recover(sink).drain(..));
        Arc::strong_count(sink) > 1
    });
    out.sort_by_key(|r| (r.start_ns, r.tid, r.name));
    out
}

/// Start a span; the interval closes (and is recorded) when the
/// returned guard drops. Inert when tracing is disabled.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            cat,
            start: Instant::now(),
            args: [("", 0); MAX_SPAN_ARGS],
            n_args: 0,
        }),
    }
}

/// [`span`] with one argument attached, e.g.
/// `span_args("engine", "partition", "rows", n)`.
pub fn span_args(cat: &'static str, name: &'static str, key: &'static str, val: u64) -> SpanGuard {
    span(cat, name).arg(key, val)
}

struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    start: Instant,
    args: [(&'static str, u64); MAX_SPAN_ARGS],
    n_args: u8,
}

/// RAII guard closing a [`span`]; see [`SpanGuard::arg`] for chaining.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attach a named integer argument (up to [`MAX_SPAN_ARGS`];
    /// extras are dropped). Chains: `span(..).arg("rows", n)`.
    pub fn arg(mut self, key: &'static str, val: u64) -> Self {
        if let Some(a) = self.active.as_mut() {
            if let Some(slot) = a.args.get_mut(a.n_args as usize) {
                *slot = (key, val);
                a.n_args += 1;
            }
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let t = tracer();
        if !t.enabled.load(Ordering::Relaxed) {
            return; // tracing turned off mid-span: drop silently
        }
        let start_ns = a.start.saturating_duration_since(t.epoch).as_nanos() as u64;
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        record(SpanRecord {
            name: a.name,
            cat: a.cat,
            start_ns,
            dur_ns,
            tid: 0, // assigned in record() from the thread sink
            args: a.args,
            n_args: a.n_args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; tests that toggle it serialize
    // here so parallel test threads cannot interleave enable/drain.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = guard();
        set_tracing(false);
        let _ = take_spans();
        {
            let _s = span("test", "ignored").arg("k", 1);
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn enabled_span_round_trips_name_cat_and_args() {
        let _g = guard();
        set_tracing(true);
        let _ = take_spans();
        {
            let _s = span_args("engine", "kernel", "rows", 7).arg("part", 3).arg("extra", 9);
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        set_tracing(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 1, "{spans:?}");
        let s = spans[0];
        assert_eq!((s.cat, s.name), ("engine", "kernel"));
        // Third arg was dropped: records are fixed-size.
        assert_eq!(s.n_args, 2);
        assert_eq!(s.args[0], ("rows", 7));
        assert_eq!(s.args[1], ("part", 3));
        assert!(s.dur_ns >= 50_000, "slept 50us, recorded {}ns", s.dur_ns);
    }

    #[test]
    fn spans_from_other_threads_are_drained_and_sorted() {
        let _g = guard();
        set_tracing(true);
        let _ = take_spans();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span("test", "worker").arg("i", i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        {
            let _s = span("test", "local");
        }
        set_tracing(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 5, "{spans:?}");
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(spans.iter().filter(|s| s.name == "worker").count() == 4);
    }
}
