//! Structured spans: RAII-timed intervals recorded into per-thread
//! buffers and drained for Chrome trace export.
//!
//! Cost model (the DESIGN.md overhead budget leans on this):
//!
//! - **Tracing disabled** (the default): [`span`] is one `OnceLock`
//!   get plus one `Relaxed` load and returns an inert guard whose drop
//!   does nothing. No clock read, no allocation, no lock, no
//!   thread-local write.
//! - **Tracing enabled**: the guard reads the clock twice and pushes a
//!   `Copy` record into this thread's pre-reserved buffer under an
//!   uncontended per-thread mutex (the mutex exists only so
//!   [`take_spans`] can drain other threads' buffers). Steady state is
//!   allocation-free: the buffer is reserved at [`RESERVE`] records on
//!   first use and only regrows past that.
//!
//! Buffers are never bounded — a tracing session is expected to be
//! short (one replay, one query) and drained promptly. Thread buffers
//! registered by exited threads stay in the sink list until drained;
//! that is a few empty `Vec`s, not a leak that grows with traffic.
//!
//! # Trace identity
//!
//! Every enabled span carries a `(trace_id, span_id, parent_id)`
//! triple so spans from different processes can be stitched into one
//! distributed trace:
//!
//! - A span started while an ambient [`TraceContext`] is set (see
//!   [`with_trace`]) joins that trace with the ambient span as its
//!   parent. A span started with no ambient context roots a fresh
//!   trace.
//! - [`span`]/[`span_args`] install their own context as the ambient
//!   one for their RAII scope, so nested spans on the same thread
//!   parent naturally. [`span_at`] does *not* touch the ambient
//!   context — use it when several sibling guards are held at once
//!   (e.g. one RPC span per shard during a scatter) and drop order is
//!   not LIFO.
//! - Ids are allocated from a process-seeded counter
//!   (`pid << 32 | seq`), so routers and workers stitching into the
//!   same trace never collide. Id 0 means "absent".

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Arguments a span can carry (kept fixed-size so records stay `Copy`).
pub const MAX_SPAN_ARGS: usize = 2;

/// Per-thread buffer capacity reserved up front.
const RESERVE: usize = 256;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The trace a span belongs to and the span acting as parent for new
/// work: the propagation unit carried across threads and (via the
/// shard wire header) across processes. Zero fields mean "absent".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Distributed trace id (0 = no trace).
    pub trace_id: u64,
    /// Span id new child spans should record as their parent (0 = root).
    pub span_id: u64,
}

impl TraceContext {
    /// The absent context: spans started under it root fresh traces.
    pub const NONE: TraceContext = TraceContext { trace_id: 0, span_id: 0 };

    /// True when this context carries no trace at all.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }
}

/// One completed span, as drained by [`take_spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Event name (e.g. `"run_query"`).
    pub name: &'static str,
    /// Category / layer (e.g. `"engine"`, `"ingest"`, `"serve"`).
    pub cat: &'static str,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u32,
    /// Distributed trace this span belongs to (0 = untraced).
    pub trace_id: u64,
    /// This span's own id (0 = untraced).
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent_id: u64,
    /// Up to [`MAX_SPAN_ARGS`] named integer arguments.
    pub args: [(&'static str, u64); MAX_SPAN_ARGS],
    /// How many entries of `args` are live.
    pub n_args: u8,
}

struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    epoch_unix_ns: u64,
    sinks: Mutex<Vec<Arc<Mutex<Vec<SpanRecord>>>>>,
    next_tid: AtomicU32,
    next_id: AtomicU64,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        epoch_unix_ns: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0),
        sinks: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(0),
        // Seed ids with the OS pid so routers and workers allocating
        // into the same distributed trace cannot collide.
        next_id: AtomicU64::new(((std::process::id() as u64) << 32) | 1),
    })
}

/// Wall-clock nanoseconds (unix epoch) of the instant that
/// [`SpanRecord::start_ns`] is measured from. `start_ns +
/// epoch_unix_ns` is an absolute timestamp comparable across
/// processes, which is how worker spans are rebased onto the router's
/// timeline when stitching a distributed trace.
pub fn epoch_unix_ns() -> u64 {
    tracer().epoch_unix_ns
}

struct ThreadSink {
    tid: u32,
    buf: Arc<Mutex<Vec<SpanRecord>>>,
}

thread_local! {
    static LOCAL: RefCell<Option<ThreadSink>> = const { RefCell::new(None) };
    static CONTEXT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

fn record(mut rec: SpanRecord) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let sink = slot.get_or_insert_with(|| {
            let t = tracer();
            let buf = Arc::new(Mutex::new(Vec::with_capacity(RESERVE)));
            lock_recover(&t.sinks).push(Arc::clone(&buf));
            ThreadSink { tid: t.next_tid.fetch_add(1, Ordering::Relaxed), buf }
        });
        rec.tid = sink.tid;
        lock_recover(&sink.buf).push(rec);
    });
}

/// Turn span recording on or off process-wide. Already-buffered spans
/// survive a disable and remain drainable.
pub fn set_tracing(on: bool) {
    tracer().enabled.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
pub fn tracing_enabled() -> bool {
    tracer().enabled.load(Ordering::Relaxed)
}

/// The ambient [`TraceContext`] of the calling thread: what a new
/// span would join. [`TraceContext::NONE`] when nothing is set.
pub fn current_trace() -> TraceContext {
    CONTEXT.get()
}

/// Install `ctx` as the calling thread's ambient trace context until
/// the returned guard drops (the previous context is restored).
///
/// This is the explicit propagation primitive for the two places the
/// implicit per-thread nesting cannot reach: adopting a context that
/// arrived over the wire (shard workers) and carrying a context into
/// rayon worker closures (partition spans).
pub fn with_trace(ctx: TraceContext) -> TraceScope {
    TraceScope { prev: CONTEXT.replace(ctx) }
}

/// RAII guard of [`with_trace`]: restores the previous ambient
/// context on drop. Must drop on the thread that created it.
pub struct TraceScope {
    prev: TraceContext,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CONTEXT.set(self.prev);
    }
}

/// Drain every thread's buffered spans, sorted by start time. Live
/// threads' buffers keep their reserved capacity, so a drain does not
/// reintroduce allocation into their recording path; buffers whose
/// thread has exited (only the sink list still holds them) are pruned
/// here so short-lived pool threads cannot accumulate dead buffers.
pub fn take_spans() -> Vec<SpanRecord> {
    let t = tracer();
    let mut out = Vec::new();
    lock_recover(&t.sinks).retain(|sink| {
        out.extend(lock_recover(sink).drain(..));
        Arc::strong_count(sink) > 1
    });
    out.sort_by_key(|r| (r.start_ns, r.tid, r.name));
    out
}

fn fresh_ids(parent: TraceContext) -> (u64, u64) {
    let t = tracer();
    let span_id = t.next_id.fetch_add(1, Ordering::Relaxed);
    let trace_id = if parent.trace_id != 0 {
        parent.trace_id
    } else {
        t.next_id.fetch_add(1, Ordering::Relaxed)
    };
    (trace_id, span_id)
}

/// Start a span; the interval closes (and is recorded) when the
/// returned guard drops. Inert when tracing is disabled.
///
/// The span joins the thread's ambient [`TraceContext`] (rooting a
/// fresh trace if there is none) and installs itself as the ambient
/// context until the guard drops, so nested spans parent naturally.
/// Guards must therefore drop in LIFO order on their creating thread —
/// the natural shape of RAII scopes. For sibling guards held
/// simultaneously, use [`span_at`].
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { active: None };
    }
    let parent = current_trace();
    let (trace_id, span_id) = fresh_ids(parent);
    let prev = CONTEXT.replace(TraceContext { trace_id, span_id });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            cat,
            start: Instant::now(),
            trace_id,
            span_id,
            parent_id: parent.span_id,
            restore: Some(prev),
            args: [("", 0); MAX_SPAN_ARGS],
            n_args: 0,
        }),
    }
}

/// [`span`] with one argument attached, e.g.
/// `span_args("engine", "partition", "rows", n)`.
pub fn span_args(cat: &'static str, name: &'static str, key: &'static str, val: u64) -> SpanGuard {
    span(cat, name).arg(key, val)
}

/// Start a span parented at an explicit [`TraceContext`] without
/// touching the thread's ambient context. Use when several sibling
/// guards live at once and drop out of creation order (the router
/// holds one RPC span per shard across a pipelined scatter); the
/// ambient-stacking of [`span`] would mis-restore there.
pub fn span_at(cat: &'static str, name: &'static str, parent: TraceContext) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { active: None };
    }
    let (trace_id, span_id) = fresh_ids(parent);
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            cat,
            start: Instant::now(),
            trace_id,
            span_id,
            parent_id: parent.span_id,
            restore: None,
            args: [("", 0); MAX_SPAN_ARGS],
            n_args: 0,
        }),
    }
}

struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    start: Instant,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    /// Ambient context to restore on drop (`None` for [`span_at`]).
    restore: Option<TraceContext>,
    args: [(&'static str, u64); MAX_SPAN_ARGS],
    n_args: u8,
}

/// RAII guard closing a [`span`]; see [`SpanGuard::arg`] for chaining.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attach a named integer argument (up to [`MAX_SPAN_ARGS`];
    /// extras are dropped). Chains: `span(..).arg("rows", n)`.
    pub fn arg(mut self, key: &'static str, val: u64) -> Self {
        if let Some(a) = self.active.as_mut() {
            if let Some(slot) = a.args.get_mut(a.n_args as usize) {
                *slot = (key, val);
                a.n_args += 1;
            }
        }
        self
    }

    /// This span's identity as a [`TraceContext`] — what to stamp on
    /// outgoing work (wire headers, rayon closures) so remote spans
    /// parent under this one. [`TraceContext::NONE`] when inert.
    pub fn trace_context(&self) -> TraceContext {
        self.active
            .as_ref()
            .map_or(TraceContext::NONE, |a| TraceContext { trace_id: a.trace_id, span_id: a.span_id })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        if let Some(prev) = a.restore {
            CONTEXT.set(prev);
        }
        let t = tracer();
        if !t.enabled.load(Ordering::Relaxed) {
            return; // tracing turned off mid-span: drop silently
        }
        let start_ns = a.start.saturating_duration_since(t.epoch).as_nanos() as u64;
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        record(SpanRecord {
            name: a.name,
            cat: a.cat,
            start_ns,
            dur_ns,
            tid: 0, // assigned in record() from the thread sink
            trace_id: a.trace_id,
            span_id: a.span_id,
            parent_id: a.parent_id,
            args: a.args,
            n_args: a.n_args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; tests that toggle it serialize
    // here so parallel test threads cannot interleave enable/drain.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = guard();
        set_tracing(false);
        let _ = take_spans();
        {
            let _s = span("test", "ignored").arg("k", 1);
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn enabled_span_round_trips_name_cat_and_args() {
        let _g = guard();
        set_tracing(true);
        let _ = take_spans();
        {
            let _s = span_args("engine", "kernel", "rows", 7).arg("part", 3).arg("extra", 9);
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        set_tracing(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 1, "{spans:?}");
        let s = spans[0];
        assert_eq!((s.cat, s.name), ("engine", "kernel"));
        // Third arg was dropped: records are fixed-size.
        assert_eq!(s.n_args, 2);
        assert_eq!(s.args[0], ("rows", 7));
        assert_eq!(s.args[1], ("part", 3));
        assert!(s.dur_ns >= 50_000, "slept 50us, recorded {}ns", s.dur_ns);
    }

    #[test]
    fn spans_from_other_threads_are_drained_and_sorted() {
        let _g = guard();
        set_tracing(true);
        let _ = take_spans();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span("test", "worker").arg("i", i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        {
            let _s = span("test", "local");
        }
        set_tracing(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 5, "{spans:?}");
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(spans.iter().filter(|s| s.name == "worker").count() == 4);
    }

    #[test]
    fn nested_spans_share_a_trace_and_parent_naturally() {
        let _g = guard();
        set_tracing(true);
        let _ = take_spans();
        {
            let root = span("test", "root");
            let root_ctx = root.trace_context();
            assert!(root_ctx.trace_id != 0 && root_ctx.span_id != 0);
            {
                let child = span("test", "child");
                let cc = child.trace_context();
                assert_eq!(cc.trace_id, root_ctx.trace_id);
                assert_ne!(cc.span_id, root_ctx.span_id);
            }
        }
        set_tracing(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2, "{spans:?}");
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(root.parent_id, 0, "root spans have no parent");
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        // The ambient context is fully restored after the scope.
        assert_eq!(current_trace(), TraceContext::NONE);
    }

    #[test]
    fn with_trace_adopts_a_remote_context_and_restores_on_drop() {
        let _g = guard();
        set_tracing(true);
        let _ = take_spans();
        let remote = TraceContext { trace_id: 0xABCD, span_id: 77 };
        {
            let _scope = with_trace(remote);
            assert_eq!(current_trace(), remote);
            let _s = span("test", "adopted");
        }
        assert_eq!(current_trace(), TraceContext::NONE);
        set_tracing(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].trace_id, 0xABCD);
        assert_eq!(spans[0].parent_id, 77);
    }

    #[test]
    fn span_at_parents_explicitly_without_touching_ambient_context() {
        let _g = guard();
        set_tracing(true);
        let _ = take_spans();
        let parent = TraceContext { trace_id: 0x1234, span_id: 9 };
        {
            // Sibling guards held at once, dropped out of order — the
            // scatter shape span_at exists for.
            let a = span_at("test", "rpc_a", parent);
            let b = span_at("test", "rpc_b", parent);
            assert_eq!(current_trace(), TraceContext::NONE, "span_at must not install context");
            drop(a);
            drop(b);
        }
        set_tracing(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2, "{spans:?}");
        for s in &spans {
            assert_eq!(s.trace_id, 0x1234);
            assert_eq!(s.parent_id, 9);
        }
        assert_ne!(spans[0].span_id, spans[1].span_id);
    }

    #[test]
    fn span_ids_are_process_seeded_and_absolute_epoch_is_stable() {
        let _g = guard();
        set_tracing(true);
        let s = span("test", "seeded");
        let ctx = s.trace_context();
        assert_eq!(
            ctx.span_id >> 32,
            std::process::id() as u64,
            "span ids embed the pid in the high bits"
        );
        drop(s);
        set_tracing(false);
        let _ = take_spans();
        assert_eq!(epoch_unix_ns(), epoch_unix_ns(), "epoch is captured once");
    }
}
