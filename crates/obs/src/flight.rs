//! Flight recorder: a fixed-size ring of recent notable events, kept
//! cheap enough to leave on in production and dumped only when
//! something goes wrong (worker panic, degraded refusal, chaos-harness
//! failure).
//!
//! Policy (see DESIGN.md "Observability architecture"): components
//! record *state transitions*, not per-row traffic — retries,
//! quarantines, injected faults, panics, shed storms. The ring holds
//! the most recent [`FLIGHT_CAPACITY`] events; older ones are
//! overwritten, which is the point: a dump answers "what happened just
//! before this failure" without unbounded memory.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Events retained; older entries are overwritten ring-style.
pub const FLIGHT_CAPACITY: usize = 256;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Severity of a flight event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightLevel {
    /// Expected transition worth having in a dump (e.g. retry succeeded).
    Info,
    /// Something was tolerated (retry, quarantine, injected fault).
    Warn,
    /// Something failed (worker panic, degraded refusal).
    Error,
}

impl FlightLevel {
    fn tag(self) -> &'static str {
        match self {
            FlightLevel::Info => "INFO",
            FlightLevel::Warn => "WARN",
            FlightLevel::Error => "ERROR",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number since process start; gaps in a dump
    /// reveal how many events the ring already overwrote.
    pub seq: u64,
    /// Microseconds since the recorder first saw an event.
    pub t_us: u64,
    /// Severity.
    pub level: FlightLevel,
    /// Recording layer (e.g. `"serve"`, `"degraded"`, `"faults"`).
    /// Owned (not `&'static`) so events forwarded from another
    /// process — decoded off the wire — can be re-recorded here.
    pub component: String,
    /// Stable short event code (e.g. `"worker_panic"`, `"retry"`).
    pub code: String,
    /// Free-form context for humans; kept out of any hot loop.
    pub detail: String,
}

struct Recorder {
    epoch: Instant,
    seq: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        seq: AtomicU64::new(0),
        ring: Mutex::new(VecDeque::with_capacity(FLIGHT_CAPACITY)),
    })
}

/// Record one event into the process-wide ring.
pub fn flight(
    level: FlightLevel,
    component: impl Into<String>,
    code: impl Into<String>,
    detail: String,
) {
    let r = recorder();
    let ev = FlightEvent {
        seq: r.seq.fetch_add(1, Ordering::Relaxed),
        t_us: r.epoch.elapsed().as_micros() as u64,
        level,
        component: component.into(),
        code: code.into(),
        detail,
    };
    let mut ring = lock_recover(&r.ring);
    if ring.len() == FLIGHT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(ev);
}

/// [`flight`] at [`FlightLevel::Info`].
pub fn flight_info(component: impl Into<String>, code: impl Into<String>, detail: String) {
    flight(FlightLevel::Info, component, code, detail);
}

/// [`flight`] at [`FlightLevel::Warn`].
pub fn flight_warn(component: impl Into<String>, code: impl Into<String>, detail: String) {
    flight(FlightLevel::Warn, component, code, detail);
}

/// [`flight`] at [`FlightLevel::Error`].
pub fn flight_error(component: impl Into<String>, code: impl Into<String>, detail: String) {
    flight(FlightLevel::Error, component, code, detail);
}

/// Copy of the current ring contents, oldest first. The ring keeps
/// its events (a dump must not erase the evidence for the next dump).
pub fn flight_snapshot() -> Vec<FlightEvent> {
    lock_recover(&recorder().ring).iter().cloned().collect()
}

/// Drain the ring, returning its contents. Tests use this to isolate
/// themselves from events recorded by earlier tests.
pub fn flight_take() -> Vec<FlightEvent> {
    lock_recover(&recorder().ring).drain(..).collect()
}

/// Human-readable dump of recorded events, one line each.
pub fn render_flight(events: &[FlightEvent]) -> String {
    let mut out =
        format!("flight recorder: {} event(s), capacity {FLIGHT_CAPACITY}\n", events.len());
    for ev in events {
        let _ = writeln!(
            out,
            "  #{seq:<6} +{t:>10}us {lvl:<5} {comp}/{code}: {detail}",
            seq = ev.seq,
            t = ev.t_us,
            lvl = ev.level.tag(),
            comp = ev.component,
            code = ev.code,
            detail = ev.detail,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One global ring ⇒ tests serialize on a local gate.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn events_round_trip_with_monotone_seq() {
        let _g = guard();
        let _ = flight_take();
        flight_warn("degraded", "retry", "attempt 1 of 3".into());
        flight_error("serve", "worker_panic", "worker 2".into());
        let evs = flight_snapshot();
        assert_eq!(evs.len(), 2, "{evs:?}");
        assert!(evs[0].seq < evs[1].seq);
        assert!(evs[0].t_us <= evs[1].t_us);
        assert_eq!((evs[1].component.as_str(), evs[1].code.as_str()), ("serve", "worker_panic"));
        // Snapshot does not drain.
        assert_eq!(flight_snapshot().len(), 2);
        let drained = flight_take();
        assert_eq!(drained, evs);
        assert!(flight_snapshot().is_empty());
    }

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let _g = guard();
        let _ = flight_take();
        for i in 0..(FLIGHT_CAPACITY + 10) {
            flight_info("test", "tick", format!("event {i}"));
        }
        let evs = flight_take();
        assert_eq!(evs.len(), FLIGHT_CAPACITY);
        assert_eq!(evs.last().unwrap().detail, format!("event {}", FLIGHT_CAPACITY + 9));
        assert_eq!(evs.first().unwrap().detail, "event 10");
    }

    #[test]
    fn render_carries_level_component_and_detail() {
        let _g = guard();
        let _ = flight_take();
        flight_error("serve", "degraded", "coverage 6/8".into());
        let text = render_flight(&flight_take());
        assert!(text.contains("ERROR"), "{text}");
        assert!(text.contains("serve/degraded: coverage 6/8"), "{text}");
        assert!(text.starts_with("flight recorder: 1 event(s)"), "{text}");
    }
}
