//! Validator for the Prometheus text exposition this crate renders.
//! CI round-trips `Registry::render_prometheus` output through it, so
//! the exposition contract is pinned by a test, not by inspection.
//!
//! Samples are label-aware: a family may carry any number of series
//! as long as each `(name, label-set)` pair appears once, which is
//! what lets the federated shard exposition emit one unlabeled
//! (merged) series plus one `shard="i"` series per worker under a
//! single `# TYPE` declaration. Histogram series group by their
//! label set *minus* `le`, and every group is held to the full
//! histogram contract independently.

use std::collections::BTreeMap;

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse `k1="v1",k2="v2"` into sorted pairs. Values may contain the
/// standard `\\`, `\"`, `\n` escapes. Duplicate label names are an
/// error.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without '=' in {s:?}"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label {name:?}: value not quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                None => return Err(format!("label {name:?}: unterminated value")),
                Some((i, '"')) => break i,
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("label {name:?}: bad escape {other:?}")),
                },
                Some((_, c)) => value.push(c),
            }
        };
        if pairs.iter().any(|(n, _)| n == name) {
            return Err(format!("duplicate label {name:?}"));
        }
        pairs.push((name.to_string(), value));
        rest = &rest[close + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => break,
            None => return Err(format!("expected ',' between labels in {s:?}")),
        }
    }
    pairs.sort();
    Ok(pairs)
}

/// Canonical key for a label set (used to group and detect duplicates).
fn label_key(pairs: &[(String, String)]) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(k);
        out.push('\u{1}');
        out.push_str(v);
        out.push('\u{2}');
    }
    out
}

#[derive(Default)]
struct HistState {
    buckets: Vec<(f64, u64)>, // (le, cumulative)
    inf: Option<u64>,
    sum: Option<f64>,
    count: Option<u64>,
}

/// Validate a Prometheus text exposition; returns the number of
/// `# TYPE` families seen.
///
/// Enforced: every sample belongs to a declared family; names and
/// label syntax are legal; each `(name, label-set)` appears at most
/// once; histogram `le` labels are finite, strictly ascending within
/// their label group, with non-decreasing cumulative counts capped by
/// a mandatory `+Inf` bucket that equals that group's `_count`;
/// `_sum`/`_count` present per group.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // Scalar samples seen, keyed (family, label-set key).
    let mut scalar_samples: BTreeMap<(String, String), ()> = BTreeMap::new();
    // Histogram groups, keyed (family, label-set key minus `le`).
    let mut hists: BTreeMap<(String, String), HistState> = BTreeMap::new();

    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !valid_name(name) {
                return Err(format!("line {no}: bad metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {no}: unknown type {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {no}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment lines are permitted, unchecked
        }

        let (series, value) =
            line.rsplit_once(' ').ok_or(format!("line {no}: no value on sample"))?;
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let label =
                    rest.strip_suffix('}').ok_or(format!("line {no}: unterminated labels"))?;
                (n, parse_labels(label).map_err(|e| format!("line {no}: {e}"))?)
            }
            None => (series, Vec::new()),
        };
        if !valid_name(name) {
            return Err(format!("line {no}: bad sample name {name:?}"));
        }

        // Histogram series (`_bucket`/`_sum`/`_count`) attach to their
        // declared family; everything else must be its own family.
        if let Some(fam) = name.strip_suffix("_bucket") {
            if types.get(fam).map(String::as_str) != Some("histogram") {
                return Err(format!("line {no}: bucket for undeclared histogram {fam:?}"));
            }
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or(format!("line {no}: bucket without le label"))?;
            let group: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            let cum: u64 =
                value.parse().map_err(|_| format!("line {no}: bad bucket count {value:?}"))?;
            let h = hists.entry((fam.to_string(), label_key(&group))).or_default();
            if le == "+Inf" {
                if h.inf.replace(cum).is_some() {
                    return Err(format!("line {no}: duplicate +Inf bucket for {fam}"));
                }
            } else {
                if h.inf.is_some() {
                    return Err(format!("line {no}: bucket after +Inf for {fam}"));
                }
                let le: f64 = le.parse().map_err(|_| format!("line {no}: bad le value {le:?}"))?;
                if !le.is_finite() {
                    return Err(format!("line {no}: non-finite le for {fam}"));
                }
                h.buckets.push((le, cum));
            }
            continue;
        }
        if let Some(fam) = name.strip_suffix("_sum") {
            if types.get(fam).map(String::as_str) == Some("histogram") {
                let v: f64 = value.parse().map_err(|_| format!("line {no}: bad sum {value:?}"))?;
                let h = hists.entry((fam.to_string(), label_key(&labels))).or_default();
                if h.sum.replace(v).is_some() {
                    return Err(format!("line {no}: duplicate _sum for {fam}"));
                }
                continue;
            }
        }
        if let Some(fam) = name.strip_suffix("_count") {
            if types.get(fam).map(String::as_str) == Some("histogram") {
                let v: u64 =
                    value.parse().map_err(|_| format!("line {no}: bad count {value:?}"))?;
                let h = hists.entry((fam.to_string(), label_key(&labels))).or_default();
                if h.count.replace(v).is_some() {
                    return Err(format!("line {no}: duplicate _count for {fam}"));
                }
                continue;
            }
        }

        match types.get(name).map(String::as_str) {
            Some("counter") | Some("gauge") => {
                if value.parse::<f64>().is_err() {
                    return Err(format!("line {no}: bad value {value:?}"));
                }
                let key = (name.to_string(), label_key(&labels));
                if scalar_samples.insert(key, ()).is_some() {
                    return Err(format!("line {no}: duplicate sample for {name}"));
                }
            }
            Some("histogram") => {
                return Err(format!("line {no}: bare sample for histogram {name}"));
            }
            _ => return Err(format!("line {no}: sample {name:?} has no TYPE declaration")),
        }
    }

    for (name, kind) in &types {
        match kind.as_str() {
            "counter" | "gauge" => {
                if !scalar_samples.keys().any(|(n, _)| n == name) {
                    return Err(format!("{kind} {name} declared but has no sample"));
                }
            }
            _ => {
                if !hists.keys().any(|(n, _)| n == name) {
                    return Err(format!("histogram {name} has no series"));
                }
            }
        }
    }
    for ((name, _), h) in &hists {
        let inf = h.inf.ok_or(format!("histogram {name} missing +Inf bucket"))?;
        let count = h.count.ok_or(format!("histogram {name} missing _count"))?;
        h.sum.ok_or(format!("histogram {name} missing _sum"))?;
        if inf != count {
            return Err(format!("histogram {name}: +Inf {inf} != _count {count}"));
        }
        let ascending = h.buckets.windows(2).all(|w| w[0].0 < w[1].0);
        if !ascending {
            return Err(format!("histogram {name}: le not strictly ascending"));
        }
        let monotone = h.buckets.windows(2).all(|w| w[0].1 <= w[1].1);
        if !monotone {
            return Err(format!("histogram {name}: cumulative counts decreased"));
        }
        if h.buckets.last().is_some_and(|(_, c)| *c > inf) {
            return Err(format!("histogram {name}: bucket exceeds +Inf"));
        }
    }
    Ok(types.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn rendered_registry_validates() {
        let r = Registry::new();
        r.counter("ingest_rows_total").add(100);
        r.gauge("serve_queue_depth").set(3);
        let h = r.histogram("serve_latency_us");
        for v in [1u64, 4, 4, 900, 70_000] {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert_eq!(validate_prometheus(&text), Ok(3), "{text}");
    }

    #[test]
    fn empty_exposition_is_valid() {
        assert_eq!(validate_prometheus(""), Ok(0));
    }

    #[test]
    fn labeled_series_coexist_within_one_family() {
        let text = "# TYPE reqs_total counter\n\
                    reqs_total 10\n\
                    reqs_total{shard=\"0\"} 4\n\
                    reqs_total{shard=\"1\"} 6\n\
                    # TYPE lat_us histogram\n\
                    lat_us_bucket{le=\"5\"} 1\n\
                    lat_us_bucket{le=\"+Inf\"} 2\n\
                    lat_us_sum 12\n\
                    lat_us_count 2\n\
                    lat_us_bucket{shard=\"0\",le=\"5\"} 1\n\
                    lat_us_bucket{shard=\"0\",le=\"+Inf\"} 1\n\
                    lat_us_sum{shard=\"0\"} 5\n\
                    lat_us_count{shard=\"0\"} 1\n";
        assert_eq!(validate_prometheus(text), Ok(2), "{text}");
    }

    #[test]
    fn duplicate_label_sets_are_rejected() {
        let text = "# TYPE reqs_total counter\n\
                    reqs_total{shard=\"0\"} 4\n\
                    reqs_total{shard=\"0\"} 5\n";
        assert!(validate_prometheus(text).is_err());
        // Same label set written in a different order is still a dup.
        let text = "# TYPE x counter\n\
                    x{a=\"1\",b=\"2\"} 4\n\
                    x{b=\"2\",a=\"1\"} 5\n";
        assert!(validate_prometheus(text).is_err());
    }

    #[test]
    fn histogram_groups_are_checked_independently() {
        // The shard="0" group is internally broken (+Inf != _count)
        // even though the unlabeled group is fine.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 2\n\
                    h_sum 3\n\
                    h_count 2\n\
                    h_bucket{shard=\"0\",le=\"+Inf\"} 2\n\
                    h_sum{shard=\"0\"} 3\n\
                    h_count{shard=\"0\"} 1\n";
        assert!(validate_prometheus(text).is_err());
    }

    #[test]
    fn violations_are_rejected() {
        for (bad, why) in [
            ("orphan 1", "sample without TYPE"),
            ("# TYPE x widget\nx 1", "unknown type"),
            ("# TYPE x counter\nx banana", "non-numeric value"),
            ("# TYPE x counter", "declared without sample"),
            ("# TYPE 9x counter\n9x 1", "bad name"),
            ("# TYPE x counter\nx{9bad=\"1\"} 1", "bad label name"),
            ("# TYPE x counter\nx{a=1} 1", "unquoted label value"),
            ("# TYPE x counter\nx{a=\"1\",a=\"2\"} 1", "duplicate label name"),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 3",
                "+Inf disagrees with _count",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\n\
                 h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2",
                "le out of order",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"5\"} 1\n\
                 h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2",
                "cumulative decreased",
            ),
            ("# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_sum 3\nh_count 1", "missing +Inf"),
        ] {
            assert!(validate_prometheus(bad).is_err(), "{why}: {bad:?}");
        }
    }
}
