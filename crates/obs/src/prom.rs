//! Validator for the Prometheus text exposition this crate renders.
//! CI round-trips `Registry::render_prometheus` output through it, so
//! the exposition contract is pinned by a test, not by inspection.

use std::collections::BTreeMap;

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[derive(Default)]
struct HistState {
    buckets: Vec<(f64, u64)>, // (le, cumulative)
    inf: Option<u64>,
    sum: Option<f64>,
    count: Option<u64>,
}

/// Validate a Prometheus text exposition; returns the number of
/// `# TYPE` families seen.
///
/// Enforced: every sample belongs to a declared family; names are
/// legal; counter/gauge families carry exactly one sample line;
/// histogram `le` labels are finite, strictly ascending, with
/// non-decreasing cumulative counts capped by a mandatory `+Inf`
/// bucket that equals `_count`; `_sum`/`_count` present.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut scalar_samples: BTreeMap<String, u64> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();

    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !valid_name(name) {
                return Err(format!("line {no}: bad metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {no}: unknown type {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {no}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment lines are permitted, unchecked
        }

        let (series, value) =
            line.rsplit_once(' ').ok_or(format!("line {no}: no value on sample"))?;
        let (name, label) = match series.split_once('{') {
            Some((n, rest)) => {
                let label =
                    rest.strip_suffix('}').ok_or(format!("line {no}: unterminated labels"))?;
                (n, Some(label))
            }
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("line {no}: bad sample name {name:?}"));
        }

        // Histogram series (`_bucket`/`_sum`/`_count`) attach to their
        // declared family; everything else must be its own family.
        if let Some(fam) = name.strip_suffix("_bucket") {
            if types.get(fam).map(String::as_str) != Some("histogram") {
                return Err(format!("line {no}: bucket for undeclared histogram {fam:?}"));
            }
            let le = label
                .and_then(|l| l.strip_prefix("le=\""))
                .and_then(|l| l.strip_suffix('"'))
                .ok_or(format!("line {no}: bucket without le label"))?;
            let cum: u64 =
                value.parse().map_err(|_| format!("line {no}: bad bucket count {value:?}"))?;
            let h = hists.entry(fam.to_string()).or_default();
            if le == "+Inf" {
                if h.inf.replace(cum).is_some() {
                    return Err(format!("line {no}: duplicate +Inf bucket for {fam}"));
                }
            } else {
                if h.inf.is_some() {
                    return Err(format!("line {no}: bucket after +Inf for {fam}"));
                }
                let le: f64 = le.parse().map_err(|_| format!("line {no}: bad le value {le:?}"))?;
                h.buckets.push((le, cum));
            }
            continue;
        }
        if let Some(fam) = name.strip_suffix("_sum") {
            if types.get(fam).map(String::as_str) == Some("histogram") {
                let v: f64 = value.parse().map_err(|_| format!("line {no}: bad sum {value:?}"))?;
                if hists.entry(fam.to_string()).or_default().sum.replace(v).is_some() {
                    return Err(format!("line {no}: duplicate _sum for {fam}"));
                }
                continue;
            }
        }
        if let Some(fam) = name.strip_suffix("_count") {
            if types.get(fam).map(String::as_str) == Some("histogram") {
                let v: u64 =
                    value.parse().map_err(|_| format!("line {no}: bad count {value:?}"))?;
                if hists.entry(fam.to_string()).or_default().count.replace(v).is_some() {
                    return Err(format!("line {no}: duplicate _count for {fam}"));
                }
                continue;
            }
        }

        match types.get(name).map(String::as_str) {
            Some("counter") | Some("gauge") => {
                if value.parse::<f64>().is_err() {
                    return Err(format!("line {no}: bad value {value:?}"));
                }
                *scalar_samples.entry(name.to_string()).or_insert(0) += 1;
                if scalar_samples[name] > 1 {
                    return Err(format!("line {no}: duplicate sample for {name}"));
                }
            }
            Some("histogram") => {
                return Err(format!("line {no}: bare sample for histogram {name}"));
            }
            _ => return Err(format!("line {no}: sample {name:?} has no TYPE declaration")),
        }
    }

    for (name, kind) in &types {
        match kind.as_str() {
            "counter" | "gauge" => {
                if !scalar_samples.contains_key(name) {
                    return Err(format!("{kind} {name} declared but has no sample"));
                }
            }
            _ => {
                let h = hists.get(name).ok_or(format!("histogram {name} has no series"))?;
                let inf = h.inf.ok_or(format!("histogram {name} missing +Inf bucket"))?;
                let count = h.count.ok_or(format!("histogram {name} missing _count"))?;
                h.sum.ok_or(format!("histogram {name} missing _sum"))?;
                if inf != count {
                    return Err(format!("histogram {name}: +Inf {inf} != _count {count}"));
                }
                let ascending = h.buckets.windows(2).all(|w| w[0].0 < w[1].0);
                if !ascending {
                    return Err(format!("histogram {name}: le not strictly ascending"));
                }
                let monotone = h.buckets.windows(2).all(|w| w[0].1 <= w[1].1);
                if !monotone {
                    return Err(format!("histogram {name}: cumulative counts decreased"));
                }
                if h.buckets.last().is_some_and(|(_, c)| *c > inf) {
                    return Err(format!("histogram {name}: bucket exceeds +Inf"));
                }
            }
        }
    }
    Ok(types.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn rendered_registry_validates() {
        let r = Registry::new();
        r.counter("ingest_rows_total").add(100);
        r.gauge("serve_queue_depth").set(3);
        let h = r.histogram("serve_latency_us");
        for v in [1u64, 4, 4, 900, 70_000] {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert_eq!(validate_prometheus(&text), Ok(3), "{text}");
    }

    #[test]
    fn empty_exposition_is_valid() {
        assert_eq!(validate_prometheus(""), Ok(0));
    }

    #[test]
    fn violations_are_rejected() {
        for (bad, why) in [
            ("orphan 1", "sample without TYPE"),
            ("# TYPE x widget\nx 1", "unknown type"),
            ("# TYPE x counter\nx banana", "non-numeric value"),
            ("# TYPE x counter", "declared without sample"),
            ("# TYPE 9x counter\n9x 1", "bad name"),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 3",
                "+Inf disagrees with _count",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\n\
                 h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2",
                "le out of order",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"5\"} 1\n\
                 h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2",
                "cumulative decreased",
            ),
            ("# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_sum 3\nh_count 1", "missing +Inf"),
        ] {
            assert!(validate_prometheus(bad).is_err(), "{why}: {bad:?}");
        }
    }
}
