//! Minimal JSON reader used by the trace validator. Hand-rolled — the
//! offline build has no serde — and deliberately strict: anything the
//! grammar does not cover is an error, never a silent skip.

/// A parsed JSON value. Objects keep insertion order; duplicate keys
/// are rejected at parse time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (one value plus trailing whitespace).
pub(crate) fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected {:?} at byte {}, got {:?}", b as char, self.pos, got)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(fields)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(b) => {
                    // Re-borrow the source so multi-byte UTF-8 stays intact.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid UTF-8 in string")?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require the paired \uXXXX low surrogate.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err("lone high surrogate".into());
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err("bad low surrogate".into());
            }
            let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(cp).ok_or_else(|| "bad surrogate pair".into())
        } else {
            char::from_u32(first).ok_or_else(|| "lone low surrogate".into())
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.bump().and_then(|b| (b as char).to_digit(16));
            v = v * 16 + d.ok_or("bad \\u escape")?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err("invalid UTF-8 lead byte".into()),
    }
}

/// Escape a string for embedding in a JSON document (used by the
/// trace exporter).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\n\"y\""},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn surrogate_pairs_and_bmp_escapes_decode() {
        let v = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate must fail");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":1,\"a\":2}", "nul", "\"\\q\"", "1 2", "{\"k\" 1}"] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "a\"b\\c\nd\te\u{1}é";
        let doc = format!("\"{}\"", escape(raw));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(raw));
    }
}
