//! Hand-rolled observability substrate for the GDELT workspace.
//!
//! Three independent facilities, all zero-dependency (the air-gapped
//! build forbids `tracing`/`prometheus`, and obs sits below every other
//! crate, so it must not pull the stack back in):
//!
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]):
//!   lock-free recording, mergeable log-linear histograms with exact
//!   quantiles below [`metrics::LINEAR_MAX`], Prometheus-style text
//!   exposition ([`Registry::render_prometheus`]) plus a committed
//!   validator ([`validate_prometheus`]) that CI round-trips through.
//! - **Spans** ([`span`], [`span_args`], [`SpanGuard`]): structured
//!   intervals recorded into per-thread buffers (allocation-free in
//!   steady state), gated behind one relaxed atomic load when tracing
//!   is disabled, exported as Chrome `trace_event` JSON
//!   ([`chrome_trace_json`]) viewable in `about://tracing` / Perfetto
//!   and checked by [`validate_chrome_trace`].
//! - **Flight recorder** ([`flight`], [`flight_snapshot`]): a fixed-size
//!   ring of recent warn/error events that the serve stack dumps on
//!   worker panic and degraded refusals, and that `gdelt-cli chaos`
//!   writes out as a failure artifact.
//!
//! See DESIGN.md "Observability architecture" for the span model, the
//! overhead budget, and the flight-recorder policy.

pub mod flight;
mod json;
pub mod metrics;
pub mod prom;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use flight::{
    flight, flight_error, flight_info, flight_snapshot, flight_take, flight_warn, render_flight,
    FlightEvent, FlightLevel, FLIGHT_CAPACITY,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Metric, Registry};
pub use prom::validate_prometheus;
pub use snapshot::{render_federated, RegistrySnapshot};
pub use span::{
    current_trace, epoch_unix_ns, set_tracing, span, span_args, span_at, take_spans,
    tracing_enabled, with_trace, SpanGuard, SpanRecord, TraceContext, TraceScope, MAX_SPAN_ARGS,
};
pub use trace::{chrome_trace_json, chrome_trace_json_events, validate_chrome_trace, TraceEvent};

use std::sync::OnceLock;

/// The process-wide metrics registry every layer records into and the
/// CLI exporters render from.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
