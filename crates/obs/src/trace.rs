//! Chrome `trace_event` export and its committed validator.
//!
//! The exporter emits the JSON Object Format (`{"traceEvents": [...]}`)
//! with complete (`"ph":"X"`) events only — timestamps and durations in
//! microseconds with nanosecond fractions, one `tid` per recording
//! thread — which loads directly in `about://tracing` and Perfetto.
//! CI round-trips every exported trace through
//! [`validate_chrome_trace`], so the schema the viewer needs is pinned
//! by tests, not by hope.
//!
//! Two entry points: [`chrome_trace_json`] renders one process's
//! drained [`SpanRecord`]s (pid lane 1), and
//! [`chrome_trace_json_events`] renders owned [`TraceEvent`]s carrying
//! their own `pid` — the stitched multi-process form the shard tier
//! produces after collecting worker spans over the wire. Trace
//! identity (`trace_id`/`span_id`/`parent_id`) is emitted into `args`
//! as hex *strings*, not numbers: ids are pid-seeded u64s above 2^53,
//! and a JSON number would silently round them.

use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::span::SpanRecord;

/// One exportable trace event with an explicit process lane — the
/// owned, cross-process counterpart of [`SpanRecord`]. Worker spans
/// arrive over the wire as owned strings with absolute timestamps;
/// the router converts both sides to this type before stitching.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name.
    pub name: String,
    /// Category / layer.
    pub cat: String,
    /// Start in nanoseconds (caller picks the epoch; the exporter only
    /// requires all events in one document to share it).
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Process lane.
    pub pid: u32,
    /// Thread lane within the process.
    pub tid: u32,
    /// Distributed trace id (0 = untraced).
    pub trace_id: u64,
    /// This span's id (0 = untraced).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Named integer arguments.
    pub args: Vec<(String, u64)>,
}

impl TraceEvent {
    /// Convert a locally-drained span to an event on process lane
    /// `pid`. `ts_ns` stays relative to the local tracer epoch; add
    /// [`crate::epoch_unix_ns`] before mixing with remote events.
    pub fn from_span(s: &SpanRecord, pid: u32) -> TraceEvent {
        TraceEvent {
            name: s.name.to_string(),
            cat: s.cat.to_string(),
            ts_ns: s.start_ns,
            dur_ns: s.dur_ns,
            pid,
            tid: s.tid,
            trace_id: s.trace_id,
            span_id: s.span_id,
            parent_id: s.parent_id,
            args: s.args[..s.n_args as usize].iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }
}

/// Render drained spans as a Chrome trace JSON document (single
/// process, pid lane 1).
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let events: Vec<TraceEvent> = spans.iter().map(|s| TraceEvent::from_span(s, 1)).collect();
    chrome_trace_json_events(&events)
}

/// Render owned events — possibly stitched from several processes,
/// each on its own `pid` lane — as a Chrome trace JSON document.
pub fn chrome_trace_json_events(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{}",
            json::escape(&e.name),
            json::escape(&e.cat),
            micros(e.ts_ns),
            micros(e.dur_ns),
            e.pid,
            e.tid,
        );
        let traced = e.trace_id != 0;
        if !e.args.is_empty() || traced {
            out.push_str(",\"args\":{");
            let mut emitted = 0;
            for (j, (key, val)) in e.args.iter().enumerate() {
                // A repeated key would be an invalid JSON object; the
                // first occurrence wins.
                if e.args[..j].iter().any(|(k, _)| k == key) {
                    continue;
                }
                if emitted > 0 {
                    out.push(',');
                }
                emitted += 1;
                let _ = write!(out, "\"{}\":{val}", json::escape(key));
            }
            if traced {
                if emitted > 0 {
                    out.push(',');
                }
                // Hex strings, not numbers: ids exceed 2^53 (see
                // module docs) and must survive every JSON reader.
                let _ = write!(
                    out,
                    "\"trace\":\"{:#x}\",\"span\":\"{:#x}\",\"parent\":\"{:#x}\"",
                    e.trace_id, e.span_id, e.parent_id
                );
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Nanoseconds rendered as a microsecond decimal (`1234.567`), the
/// unit `trace_event` timestamps use.
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// Validate a Chrome trace JSON document; returns the event count.
///
/// Checks the exact shape the exporter promises: a root object with a
/// `traceEvents` array, every event a complete (`ph == "X"`) event
/// with non-empty string `name`, string `cat`, non-negative numeric
/// `ts`/`dur`, integer `pid`/`tid`, and (when present) an `args`
/// object whose values are numbers or strings (trace identity travels
/// as hex strings).
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let root = json::parse(text)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        validate_event(ev).map_err(|e| format!("event {i}: {e}"))?;
    }
    Ok(events.len())
}

fn validate_event(ev: &Value) -> Result<(), String> {
    if !matches!(ev, Value::Obj(_)) {
        return Err("not an object".into());
    }
    let name = ev.get("name").and_then(Value::as_str).ok_or("missing string name")?;
    if name.is_empty() {
        return Err("empty name".into());
    }
    ev.get("cat").and_then(Value::as_str).ok_or("missing string cat")?;
    if ev.get("ph").and_then(Value::as_str) != Some("X") {
        return Err("ph is not \"X\"".into());
    }
    for key in ["ts", "dur"] {
        let n = ev.get(key).and_then(Value::as_num).ok_or(format!("missing numeric {key}"))?;
        if !n.is_finite() || n < 0.0 {
            return Err(format!("{key} = {n} out of range"));
        }
    }
    for key in ["pid", "tid"] {
        let n = ev.get(key).and_then(Value::as_num).ok_or(format!("missing numeric {key}"))?;
        if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
            return Err(format!("{key} = {n} is not a non-negative integer"));
        }
    }
    if let Some(args) = ev.get("args") {
        let Value::Obj(fields) = args else {
            return Err("args is not an object".into());
        };
        for (k, v) in fields {
            if !matches!(v, Value::Num(_) | Value::Str(_)) {
                return Err(format!("args.{k} is not a number or string"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::MAX_SPAN_ARGS;

    fn rec(name: &'static str, start_ns: u64, dur_ns: u64, tid: u32) -> SpanRecord {
        SpanRecord {
            name,
            cat: "test",
            start_ns,
            dur_ns,
            tid,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            args: [("", 0); MAX_SPAN_ARGS],
            n_args: 0,
        }
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let mut with_args = rec("kernel", 1_500, 2_000_000, 3);
        with_args.args[0] = ("rows", 42);
        with_args.n_args = 1;
        let spans = [rec("load", 0, 999, 0), with_args];
        let doc = chrome_trace_json(&spans);
        assert_eq!(validate_chrome_trace(&doc), Ok(2), "{doc}");
        assert!(doc.contains("\"ts\":1.500,"), "{doc}");
        assert!(doc.contains("\"dur\":2000,"), "{doc}");
        assert!(doc.contains("\"args\":{\"rows\":42}"), "{doc}");
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate_chrome_trace(&chrome_trace_json(&[])), Ok(0));
    }

    #[test]
    fn multi_process_events_keep_their_pid_lanes_and_trace_ids() {
        let router = TraceEvent {
            name: "query".into(),
            cat: "router".into(),
            ts_ns: 0,
            dur_ns: 5_000,
            pid: 100,
            tid: 0,
            trace_id: (1u64 << 60) | 7, // deliberately above 2^53
            span_id: 1,
            parent_id: 0,
            args: vec![],
        };
        let worker = TraceEvent {
            name: "worker_query".into(),
            cat: "shard".into(),
            ts_ns: 1_000,
            dur_ns: 3_000,
            pid: 200,
            tid: 1,
            trace_id: router.trace_id,
            span_id: 2,
            parent_id: 1,
            args: vec![("shard".into(), 0)],
        };
        let doc = chrome_trace_json_events(&[router.clone(), worker]);
        assert_eq!(validate_chrome_trace(&doc), Ok(2), "{doc}");
        assert!(doc.contains("\"pid\":100,"), "{doc}");
        assert!(doc.contains("\"pid\":200,"), "{doc}");
        // Ids are exported as exact hex strings, shared across lanes.
        let hex = format!("\"trace\":\"{:#x}\"", router.trace_id);
        assert_eq!(doc.matches(hex.as_str()).count(), 2, "{doc}");
        assert!(doc.contains("\"parent\":\"0x1\""), "{doc}");
    }

    #[test]
    fn validator_rejects_schema_violations() {
        for (bad, why) in [
            ("[]", "root must be an object"),
            ("{\"traceEvents\":1}", "traceEvents must be an array"),
            ("{\"traceEvents\":[{\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]}", "missing name"),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]}",
                "only complete events",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":-1,\"dur\":0,\"pid\":1,\"tid\":0}]}",
                "negative ts",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0.5}]}",
                "fractional tid",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0,\"args\":{\"k\":true}}]}",
                "boolean arg",
            ),
        ] {
            assert!(validate_chrome_trace(bad).is_err(), "{why}: {bad}");
        }
    }

    #[test]
    fn names_are_json_escaped() {
        let spans = [rec("weird\"name\\", 0, 0, 0)];
        let doc = chrome_trace_json(&spans);
        assert_eq!(validate_chrome_trace(&doc), Ok(1), "{doc}");
    }
}
