//! Chrome `trace_event` export and its committed validator.
//!
//! The exporter emits the JSON Object Format (`{"traceEvents": [...]}`)
//! with complete (`"ph":"X"`) events only — timestamps and durations in
//! microseconds with nanosecond fractions, one `tid` per recording
//! thread — which loads directly in `about://tracing` and Perfetto.
//! CI round-trips every exported trace through
//! [`validate_chrome_trace`], so the schema the viewer needs is pinned
//! by tests, not by hope.

use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::span::SpanRecord;

/// Render drained spans as a Chrome trace JSON document.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{}",
            json::escape(s.name),
            json::escape(s.cat),
            micros(s.start_ns),
            micros(s.dur_ns),
            s.tid,
        );
        if s.n_args > 0 {
            out.push_str(",\"args\":{");
            let live = &s.args[..s.n_args as usize];
            let mut emitted = 0;
            for (j, (key, val)) in live.iter().enumerate() {
                // A repeated key would be an invalid JSON object; the
                // first occurrence wins.
                if live[..j].iter().any(|(k, _)| k == key) {
                    continue;
                }
                if emitted > 0 {
                    out.push(',');
                }
                emitted += 1;
                let _ = write!(out, "\"{}\":{val}", json::escape(key));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Nanoseconds rendered as a microsecond decimal (`1234.567`), the
/// unit `trace_event` timestamps use.
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// Validate a Chrome trace JSON document; returns the event count.
///
/// Checks the exact shape the exporter promises: a root object with a
/// `traceEvents` array, every event a complete (`ph == "X"`) event
/// with non-empty string `name`, string `cat`, non-negative numeric
/// `ts`/`dur`, integer `pid`/`tid`, and (when present) an `args`
/// object whose values are numbers.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let root = json::parse(text)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        validate_event(ev).map_err(|e| format!("event {i}: {e}"))?;
    }
    Ok(events.len())
}

fn validate_event(ev: &Value) -> Result<(), String> {
    if !matches!(ev, Value::Obj(_)) {
        return Err("not an object".into());
    }
    let name = ev.get("name").and_then(Value::as_str).ok_or("missing string name")?;
    if name.is_empty() {
        return Err("empty name".into());
    }
    ev.get("cat").and_then(Value::as_str).ok_or("missing string cat")?;
    if ev.get("ph").and_then(Value::as_str) != Some("X") {
        return Err("ph is not \"X\"".into());
    }
    for key in ["ts", "dur"] {
        let n = ev.get(key).and_then(Value::as_num).ok_or(format!("missing numeric {key}"))?;
        if !n.is_finite() || n < 0.0 {
            return Err(format!("{key} = {n} out of range"));
        }
    }
    for key in ["pid", "tid"] {
        let n = ev.get(key).and_then(Value::as_num).ok_or(format!("missing numeric {key}"))?;
        if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
            return Err(format!("{key} = {n} is not a non-negative integer"));
        }
    }
    if let Some(args) = ev.get("args") {
        let Value::Obj(fields) = args else {
            return Err("args is not an object".into());
        };
        for (k, v) in fields {
            if v.as_num().is_none() {
                return Err(format!("args.{k} is not a number"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::MAX_SPAN_ARGS;

    fn rec(name: &'static str, start_ns: u64, dur_ns: u64, tid: u32) -> SpanRecord {
        SpanRecord {
            name,
            cat: "test",
            start_ns,
            dur_ns,
            tid,
            args: [("", 0); MAX_SPAN_ARGS],
            n_args: 0,
        }
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let mut with_args = rec("kernel", 1_500, 2_000_000, 3);
        with_args.args[0] = ("rows", 42);
        with_args.n_args = 1;
        let spans = [rec("load", 0, 999, 0), with_args];
        let doc = chrome_trace_json(&spans);
        assert_eq!(validate_chrome_trace(&doc), Ok(2), "{doc}");
        assert!(doc.contains("\"ts\":1.500,"), "{doc}");
        assert!(doc.contains("\"dur\":2000,"), "{doc}");
        assert!(doc.contains("\"args\":{\"rows\":42}"), "{doc}");
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate_chrome_trace(&chrome_trace_json(&[])), Ok(0));
    }

    #[test]
    fn validator_rejects_schema_violations() {
        for (bad, why) in [
            ("[]", "root must be an object"),
            ("{\"traceEvents\":1}", "traceEvents must be an array"),
            ("{\"traceEvents\":[{\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]}", "missing name"),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]}",
                "only complete events",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":-1,\"dur\":0,\"pid\":1,\"tid\":0}]}",
                "negative ts",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0.5}]}",
                "fractional tid",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0,\"args\":{\"k\":\"v\"}}]}",
                "non-numeric arg",
            ),
        ] {
            assert!(validate_chrome_trace(bad).is_err(), "{why}: {bad}");
        }
    }

    #[test]
    fn names_are_json_escaped() {
        let spans = [rec("weird\"name\\", 0, 0, 0)];
        let doc = chrome_trace_json(&spans);
        assert_eq!(validate_chrome_trace(&doc), Ok(1), "{doc}");
    }
}
