//! Registry snapshots: owned, mergeable, JSON-serializable copies of
//! a [`Registry`](crate::Registry) — the unit of cross-process
//! metrics federation in the shard tier.
//!
//! A worker answers a `MetricsRequest` wire frame with
//! `Registry::snapshot().to_json()`; the router parses each shard's
//! reply back with [`RegistrySnapshot::from_json`] and folds them
//! together with [`RegistrySnapshot::merge`]. Merge is bucket-wise
//! addition on histograms and plain addition on counters/gauges, so
//! it inherits the associativity/commutativity the histogram
//! proptests pin: scraping shards in any order, or merging partial
//! federations, yields the same federated view.
//!
//! # Why integers travel as JSON strings
//!
//! The workspace JSON layer (like every f64-backed parser) cannot
//! represent integers above 2^53 exactly. Histogram sums and counter
//! values are u64, and the snapshot round-trip must be *bit*-exact —
//! a federated count that is off by one ulp would break the
//! `federated == Σ shards` acceptance invariant. So every integer
//! field is serialized as a decimal string (`"count":"18446744..."`)
//! and parsed back with `str::parse`, which is lossless for the full
//! u64/i64 range.

use crate::json::{self, Value};
use crate::metrics::{HistogramSnapshot, NUM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Point-in-time copy of a registry: every counter, gauge, and
/// histogram by name. Sorted maps so serialization is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by metric name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Fold another snapshot in: counters and gauges add, histograms
    /// merge bucket-wise. Associative and commutative (pinned by the
    /// snapshot proptests), so federation order never matters.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.wrapping_add(*v);
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = slot.wrapping_add(*v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_insert_with(HistogramSnapshot::empty).merge(h);
        }
    }

    /// Serialize for the wire. Histogram buckets are sparse (only
    /// non-zero indices) keyed by bucket index; all integers are
    /// decimal strings (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{v}\"", json::escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{v}\"", json::escape(name));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"sum\":\"{}\",\"count\":\"{}\",\"buckets\":{{",
                json::escape(name),
                h.sum,
                h.count
            );
            let mut first = true;
            for (idx, &c) in h.counts().iter().enumerate() {
                if c != 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "\"{idx}\":\"{c}\"");
                }
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }

    /// Parse a document produced by [`RegistrySnapshot::to_json`].
    /// Strict: unknown shapes, out-of-range bucket indices, and
    /// non-integer strings are typed errors, never silent zeros.
    pub fn from_json(text: &str) -> Result<RegistrySnapshot, String> {
        let doc = json::parse(text)?;
        let mut snap = RegistrySnapshot::default();
        for (name, v) in obj_fields(&doc, "counters")? {
            snap.counters.insert(name.clone(), str_u64(v, name)?);
        }
        for (name, v) in obj_fields(&doc, "gauges")? {
            let s = v.as_str().ok_or_else(|| format!("gauge {name:?}: expected string"))?;
            let n = s.parse::<i64>().map_err(|e| format!("gauge {name:?}: {e}"))?;
            snap.gauges.insert(name.clone(), n);
        }
        for (name, v) in obj_fields(&doc, "hists")? {
            let sum = str_u64(
                v.get("sum").ok_or_else(|| format!("hist {name:?}: missing sum"))?,
                name,
            )?;
            let count = str_u64(
                v.get("count").ok_or_else(|| format!("hist {name:?}: missing count"))?,
                name,
            )?;
            let mut counts = vec![0u64; NUM_BUCKETS];
            let buckets = match v.get("buckets") {
                Some(Value::Obj(fields)) => fields,
                _ => return Err(format!("hist {name:?}: missing buckets object")),
            };
            for (idx_str, c) in buckets {
                let idx = idx_str
                    .parse::<usize>()
                    .map_err(|e| format!("hist {name:?}: bucket index {idx_str:?}: {e}"))?;
                if idx >= NUM_BUCKETS {
                    return Err(format!("hist {name:?}: bucket index {idx} out of range"));
                }
                counts[idx] = str_u64(c, name)?;
            }
            snap.hists.insert(name.clone(), HistogramSnapshot::from_raw(counts, sum, count));
        }
        Ok(snap)
    }
}

fn obj_fields<'a>(doc: &'a Value, key: &str) -> Result<&'a [(String, Value)], String> {
    match doc.get(key) {
        Some(Value::Obj(fields)) => Ok(fields),
        _ => Err(format!("snapshot: missing {key:?} object")),
    }
}

fn str_u64(v: &Value, ctx: &str) -> Result<u64, String> {
    let s = v.as_str().ok_or_else(|| format!("{ctx:?}: expected string-encoded integer"))?;
    s.parse::<u64>().map_err(|e| format!("{ctx:?}: {e}"))
}

/// Render a federated Prometheus exposition from labeled snapshot
/// parts (e.g. `("router", …), ("0", …), ("1", …)`).
///
/// Every metric family appears twice: once **unlabeled** with the
/// merged (federated) value across all parts, and once per
/// contributing part with a `shard="<label>"` label. Because the
/// federated series is computed with [`RegistrySnapshot::merge`],
/// its counts equal the sum of the per-shard counts by construction —
/// the CLI `--check` mode asserts this end to end. Round-trips
/// through [`crate::validate_prometheus`].
pub fn render_federated(parts: &[(String, RegistrySnapshot)]) -> String {
    let mut fed = RegistrySnapshot::default();
    for (_, part) in parts {
        fed.merge(part);
    }
    let mut out = String::new();
    for (name, v) in &fed.counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        for (label, part) in parts {
            if let Some(pv) = part.counters.get(name) {
                let _ = writeln!(out, "{name}{{shard=\"{label}\"}} {pv}");
            }
        }
    }
    for (name, v) in &fed.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        for (label, part) in parts {
            if let Some(pv) = part.gauges.get(name) {
                let _ = writeln!(out, "{name}{{shard=\"{label}\"}} {pv}");
            }
        }
    }
    for (name, h) in &fed.hists {
        let _ = writeln!(out, "# TYPE {name} histogram");
        render_hist(&mut out, name, h, None);
        for (label, part) in parts {
            if let Some(ph) = part.hists.get(name) {
                render_hist(&mut out, name, ph, Some(label));
            }
        }
    }
    out
}

fn render_hist(out: &mut String, name: &str, h: &HistogramSnapshot, shard: Option<&str>) {
    let shard_prefix = |le: &str| match shard {
        Some(s) => format!("{{shard=\"{s}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let plain = match shard {
        Some(s) => format!("{{shard=\"{s}\"}}"),
        None => String::new(),
    };
    for (le, cum) in h.cumulative() {
        let _ = writeln!(out, "{name}_bucket{} {cum}", shard_prefix(&le.to_string()));
    }
    let _ = writeln!(out, "{name}_bucket{} {}", shard_prefix("+Inf"), h.count);
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("reqs_total").add(7);
        r.gauge("depth").set(-3);
        let h = r.histogram("lat_us");
        h.record(3);
        h.record(500);
        h.record(1 << 40);
        r
    }

    #[test]
    fn snapshot_json_round_trips_bit_identically() {
        let snap = sample_registry().snapshot();
        let back = RegistrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = RegistrySnapshot::default();
        let back = RegistrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(snap.to_json(), "{\"counters\":{},\"gauges\":{},\"hists\":{}}");
    }

    #[test]
    fn u64_values_beyond_f64_precision_survive() {
        let mut snap = RegistrySnapshot::default();
        snap.counters.insert("big".into(), u64::MAX);
        snap.counters.insert("odd".into(), (1u64 << 53) + 1);
        snap.gauges.insert("low".into(), i64::MIN);
        let h = Histogram::new();
        h.record(u64::MAX);
        snap.hists.insert("h".into(), h.snapshot());
        let back = RegistrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap, "u64/i64 extremes must not pass through f64");
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = sample_registry().snapshot();
        let mut b = sample_registry().snapshot();
        b.merge(&a);
        assert_eq!(b.counters["reqs_total"], 14);
        assert_eq!(b.gauges["depth"], -6);
        assert_eq!(b.hists["lat_us"].count, 6);
        assert_eq!(b.hists["lat_us"].sum, 2 * a.hists["lat_us"].sum);
    }

    #[test]
    fn malformed_snapshots_are_typed_errors() {
        for bad in [
            "{}",
            "{\"counters\":{},\"gauges\":{}}",
            "{\"counters\":{\"c\":12},\"gauges\":{},\"hists\":{}}",
            "{\"counters\":{\"c\":\"x\"},\"gauges\":{},\"hists\":{}}",
            "{\"counters\":{},\"gauges\":{},\"hists\":{\"h\":{\"sum\":\"1\",\"count\":\"1\",\"buckets\":{\"99999\":\"1\"}}}}",
        ] {
            assert!(RegistrySnapshot::from_json(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn federated_rendering_validates_and_sums() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        let parts = vec![("0".to_string(), a), ("1".to_string(), b)];
        let text = render_federated(&parts);
        crate::validate_prometheus(&text).expect("federated exposition must validate");
        assert!(text.contains("reqs_total 14\n"), "{text}");
        assert!(text.contains("reqs_total{shard=\"0\"} 7\n"), "{text}");
        assert!(text.contains("reqs_total{shard=\"1\"} 7\n"), "{text}");
        assert!(text.contains("lat_us_count 6\n"), "{text}");
        assert!(text.contains("lat_us_count{shard=\"0\"} 3\n"), "{text}");
        assert!(text.contains("lat_us_bucket{shard=\"1\",le=\"+Inf\"} 3\n"), "{text}");
    }
}
