//! Property tests for the observability substrate: histogram quantile
//! error bounds, snapshot-merge algebra, and exposition/trace
//! round-trips through the committed validators.

use proptest::prelude::*;

use gdelt_obs::{
    chrome_trace_json, validate_chrome_trace, validate_prometheus, Histogram, HistogramSnapshot,
    Registry, SpanRecord, MAX_SPAN_ARGS,
};

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    // Any quantile of any sample set reports a value within one bucket
    // width of some recorded sample: the log-linear layout guarantees
    // error ≤ bucket width (≤ value/16) and never over-reports.
    #[test]
    fn quantile_error_is_bounded_by_bucket_width(
        values in prop::collection::vec(0u64..=1u64 << 40, 1..200),
        q_milli in 0u64..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let reported = hist_of(&values).quantile(q);
        // The report is a bucket lower bound, so some recorded sample
        // must sit in [reported, reported + width).
        let hit = values.iter().any(|&v| {
            reported <= v && v - reported <= HistogramSnapshot::max_error_at(v)
        });
        prop_assert!(hit, "quantile {q} reported {reported}, samples {values:?}");
        let max = values.iter().copied().max().unwrap_or(0);
        prop_assert!(reported <= max, "reported {reported} above max sample {max}");
    }

    // Nearest-rank agreement with an exact sorted-sample oracle for the
    // linear (exact-bucket) range, matching the retired serve ring.
    #[test]
    fn quantile_is_exact_below_linear_max(
        values in prop::collection::vec(0u64..256, 1..150),
        q_milli in 0u64..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        prop_assert_eq!(hist_of(&values).quantile(q), sorted[rank]);
    }

    // Merging per-thread snapshots is associative and commutative, so
    // any roll-up order yields the same aggregate.
    #[test]
    fn snapshot_merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..=1u64 << 30, 0..60),
        b in prop::collection::vec(0u64..=1u64 << 30, 0..60),
        c in prop::collection::vec(0u64..=1u64 << 30, 0..60),
    ) {
        let (sa, sb, sc) = (hist_of(&a).snapshot(), hist_of(&b).snapshot(), hist_of(&c).snapshot());

        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associativity");

        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert_eq!(&ab, &ba, "commutativity");

        // And the merge equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend(&b);
        let combined = hist_of(&all).snapshot();
        prop_assert_eq!(&ab, &combined, "merge vs single-histogram");
    }

    // Whatever mix of metrics lands in a registry, the rendered
    // exposition passes the committed validator.
    #[test]
    fn rendered_exposition_always_validates(
        counters in prop::collection::vec((0usize..6, 0u64..1000), 0..8),
        hist_values in prop::collection::vec(0u64..=1u64 << 35, 0..50),
    ) {
        let r = Registry::new();
        let names = ["a_total", "b_total", "c_total", "d.total", "e-total", "9total"];
        for (i, v) in &counters {
            r.counter(names[*i]).add(*v);
        }
        let h = r.histogram("lat_us");
        for &v in &hist_values {
            h.record(v);
        }
        let text = r.render_prometheus();
        prop_assert!(validate_prometheus(&text).is_ok(), "invalid exposition:\n{text}");
    }

    // Arbitrary span records export to trace JSON the validator accepts.
    #[test]
    fn exported_trace_always_validates(
        spans in prop::collection::vec((0u64..=1u64 << 45, 0u64..=1u64 << 40, 0u32..64, 0u8..=2), 0..40),
    ) {
        let names = ["run_query", "partition", "ingest.sort", "weird \"name\"\\"];
        let recs: Vec<SpanRecord> = spans
            .iter()
            .enumerate()
            .map(|(i, &(start_ns, dur_ns, tid, n_args))| SpanRecord {
                name: names[i % names.len()],
                cat: "prop",
                start_ns,
                dur_ns,
                tid,
                // Exercise both untraced (0) and >2^53 id export paths.
                trace_id: if i % 2 == 0 { 0 } else { (1u64 << 60) | i as u64 },
                span_id: i as u64,
                parent_id: i as u64 / 2,
                args: [("rows", i as u64); MAX_SPAN_ARGS],
                n_args: n_args.min(MAX_SPAN_ARGS as u8),
            })
            .collect();
        let doc = chrome_trace_json(&recs);
        prop_assert_eq!(validate_chrome_trace(&doc), Ok(recs.len()), "{}", doc);
    }
}
