//! Property tests for registry-snapshot JSON serde: the wire format
//! metrics federation rides on. The contract is *bit*-exactness —
//! serialize→parse→merge must equal the in-process merge on the
//! original snapshots, for empty registries, u64 extremes beyond f64
//! precision, and histograms with every one of their 2048 buckets
//! populated.

use proptest::prelude::*;

use gdelt_obs::metrics::NUM_BUCKETS;
use gdelt_obs::{Histogram, Registry, RegistrySnapshot};

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn registry_snapshot(
    counters: &[(usize, u64)],
    gauges: &[(usize, i64)],
    hist_values: &[u64],
) -> RegistrySnapshot {
    let r = Registry::new();
    let names = ["a_total", "b_total", "c_total", "d_total"];
    for (i, v) in counters {
        r.counter(names[*i % names.len()]).add(*v);
    }
    let gnames = ["depth", "resident"];
    for (i, v) in gauges {
        r.gauge(gnames[*i % gnames.len()]).add(*v);
    }
    if !hist_values.is_empty() {
        let h = r.histogram("lat_us");
        for &v in hist_values {
            h.record(v);
        }
    }
    r.snapshot()
}

proptest! {
    // serialize → parse is the identity, for any registry contents
    // including u64 values that do not fit in an f64 mantissa.
    #[test]
    fn snapshot_json_round_trip_is_identity(
        counters in prop::collection::vec((0usize..4, 0u64..=u64::MAX), 0..6),
        gauges in prop::collection::vec((0usize..2, -1_000_000i64..1_000_000), 0..4),
        hist_values in prop::collection::vec(0u64..=u64::MAX, 0..60),
    ) {
        let snap = registry_snapshot(&counters, &gauges, &hist_values);
        let back = RegistrySnapshot::from_json(&snap.to_json()).expect("parse");
        prop_assert_eq!(back, snap);
    }

    // Merging parsed copies is bit-identical to merging the originals
    // in process: the federation path (worker serializes, router
    // parses and merges) can never drift from a single-process merge.
    #[test]
    fn serialized_merge_matches_in_process_merge(
        a in prop::collection::vec(0u64..=u64::MAX, 0..50),
        b in prop::collection::vec(0u64..=u64::MAX, 0..50),
        ca in 0u64..=u64::MAX,
        cb in 0u64..=u64::MAX,
    ) {
        let mut sa = RegistrySnapshot::default();
        sa.counters.insert("reqs_total".into(), ca);
        sa.hists.insert("lat_us".into(), hist_of(&a).snapshot());
        let mut sb = RegistrySnapshot::default();
        sb.counters.insert("reqs_total".into(), cb);
        sb.hists.insert("lat_us".into(), hist_of(&b).snapshot());

        // In-process merge of the originals.
        let mut direct = sa.clone();
        direct.merge(&sb);

        // Wire merge: both sides serialized, parsed back, then merged.
        let mut wired = RegistrySnapshot::from_json(&sa.to_json()).expect("parse a");
        let wb = RegistrySnapshot::from_json(&sb.to_json()).expect("parse b");
        wired.merge(&wb);

        prop_assert_eq!(&wired, &direct);
        // Counter overflow semantics aside, histogram counts add.
        prop_assert_eq!(direct.hists["lat_us"].count, (a.len() + b.len()) as u64);
    }

    // Merge order never matters after a wire round-trip (the router
    // scrapes shards in arbitrary completion order).
    #[test]
    fn wire_merge_is_commutative(
        a in prop::collection::vec(0u64..=1u64 << 40, 0..40),
        b in prop::collection::vec(0u64..=1u64 << 40, 0..40),
    ) {
        let sa = RegistrySnapshot::from_json(
            &registry_snapshot(&[], &[], &a).to_json()).unwrap();
        let sb = RegistrySnapshot::from_json(
            &registry_snapshot(&[], &[], &b).to_json()).unwrap();
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }
}

#[test]
fn empty_registry_round_trips_and_merges_as_identity() {
    let empty = RegistrySnapshot::default();
    let back = RegistrySnapshot::from_json(&empty.to_json()).unwrap();
    assert_eq!(back, empty);

    let mut populated = registry_snapshot(&[(0, 5)], &[(0, -2)], &[1, 300, 1 << 30]);
    let before = populated.clone();
    populated.merge(&back);
    assert_eq!(populated, before, "merging an empty snapshot is the identity");
}

#[test]
fn fully_populated_histogram_round_trips_all_2048_buckets() {
    // One sample in every bucket: 0..256 covers the linear range
    // exactly; above it, each octave o in 8..64 has 32 sub-buckets
    // whose lower bounds are (1<<o) + (s << (o-5)).
    let h = Histogram::new();
    for v in 0u64..256 {
        h.record(v);
    }
    for octave in 8u32..64 {
        for sub in 0u64..32 {
            let lo = (1u64 << octave) + (sub << (octave - 5));
            h.record(lo);
        }
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, NUM_BUCKETS as u64, "one sample per bucket");

    let mut reg = RegistrySnapshot::default();
    reg.hists.insert("full".into(), snap.clone());
    let json = reg.to_json();
    let back = RegistrySnapshot::from_json(&json).unwrap();
    assert_eq!(back, reg, "dense 2048-bucket histogram must round-trip");

    // And the parsed copy still merges bit-identically.
    let mut doubled_wire = back.clone();
    doubled_wire.merge(&back);
    let mut doubled_direct = reg.clone();
    doubled_direct.merge(&reg);
    assert_eq!(doubled_wire, doubled_direct);
    assert_eq!(doubled_wire.hists["full"].count, 2 * NUM_BUCKETS as u64);
}
