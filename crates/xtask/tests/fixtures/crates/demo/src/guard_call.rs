//! Fixture: a Mutex guard held across a cross-crate call, plus the
//! fixed variant that drops the guard before calling out.

use std::sync::Mutex;

pub struct Hub {
    pub state: Mutex<u64>,
}

pub fn held_across(h: &Hub) {
    let mut g = h.state.lock().unwrap();
    *g += 1;
    other::notify();
}

pub fn dropped_first(h: &Hub) {
    let mut g = h.state.lock().unwrap();
    *g += 1;
    drop(g);
    other::notify();
}
