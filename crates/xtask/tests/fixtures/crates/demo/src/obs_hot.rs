//! Fixture: observability calls in a parallel closure and in a kernel
//! loop, plus a marker-justified one the rule must skip.

use rayon::prelude::*;

pub fn par_span(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            let _s = gdelt_obs::span("demo", "row");
            u64::from(*x)
        })
        .collect()
}

// analyze: no_panic
pub fn loop_flight(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for &x in v {
        gdelt_obs::flight_warn("demo", "row", String::new());
        total += u64::from(x);
    }
    total
}

pub fn justified(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            // analyze: allow(obs_hot_path): one span per partition, not per row
            let _s = gdelt_obs::span("demo", "partition");
            u64::from(*x)
        })
        .collect()
}

pub fn coarse(v: &[u32]) -> u64 {
    let _s = gdelt_obs::span("demo", "whole");
    v.iter().map(|&x| u64::from(x)).sum()
}
