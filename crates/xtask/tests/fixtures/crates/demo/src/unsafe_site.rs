//! Fixture: one unsafe block, for the baseline-ratchet tests.

pub fn spin() {
    // SAFETY: spin_loop has no preconditions.
    unsafe {
        std::hint::spin_loop();
    }
}
