//! Fixture: a panic sink two calls below a `no_panic` kernel.

// analyze: no_panic
pub fn kernel(v: &[u32]) -> u32 {
    middle(v)
}

fn middle(v: &[u32]) -> u32 {
    bottom(v)
}

fn bottom(v: &[u32]) -> u32 {
    v.first().unwrap() + 1
}
