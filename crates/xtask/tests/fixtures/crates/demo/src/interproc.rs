//! Fixture: cross-function bounds obligations — one discharged at the
//! call site, one surfacing at a `no_panic` root with its call chain.

fn pick(xs: &[u64], k: usize) -> u64 {
    xs[k]
}

// analyze: no_panic
pub fn safe_scan(xs: &[u64]) -> u64 {
    let mut acc = 0;
    for i in 0..xs.len() {
        acc += pick(xs, i);
    }
    acc
}

// analyze: no_panic
pub fn unchecked(xs: &[u64], k: usize) -> u64 {
    pick(xs, k)
}
