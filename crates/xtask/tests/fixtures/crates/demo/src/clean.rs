//! Fixture: a kernel every analysis accepts as-is.

// analyze: no_panic
pub fn sum(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for &x in v {
        total += u64::from(x);
    }
    total
}
