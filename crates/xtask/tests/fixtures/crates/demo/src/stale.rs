//! Fixture: suppression markers that no longer suppress anything.

pub fn calm(x: u64) -> u64 {
    // analyze: allow(panic_path): dead — nothing below can panic
    x + 1
}

pub fn typod(x: u64) -> u64 {
    // lint: allow(no_such_rule): rule name typo
    x + 2
}
