//! Fixture: a lock taken inside a parallel closure and an a/b vs b/a
//! lock-order inversion.

use rayon::prelude::*;
use std::sync::Mutex;

pub struct Shared {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

pub fn locked_sum(s: &Shared, v: &[u64]) {
    v.par_iter().for_each(|x| {
        let mut g = s.a.lock().unwrap();
        *g += x;
    });
}

pub fn order_ab(s: &Shared) {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    drop(gb);
    drop(ga);
}

pub fn order_ba(s: &Shared) {
    let gb = s.b.lock().unwrap();
    let ga = s.a.lock().unwrap();
    drop(ga);
    drop(gb);
}
