//! Fixture: parallel closures mutating shared state — one direct
//! captured-container write, one `static mut` reached through a call.

static mut TOTAL: u64 = 0;

fn tally(row: u64) {
    unsafe { TOTAL += row };
}

pub fn fan_out(rows: &[u64]) {
    rows.par_iter().for_each(|r| tally(*r));
}

pub fn collect_into(rows: &[u64], out: &mut Vec<u64>) {
    rows.par_iter().for_each(|r| out.push(*r));
}
