//! Fixture: allocations in a parallel closure and in a kernel loop.

use rayon::prelude::*;

pub fn par_format(v: &[u32]) -> Vec<String> {
    v.par_iter().map(|x| format!("{x}")).collect()
}

// analyze: no_panic
pub fn loop_push(v: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for &x in v {
        out.push(x * 2);
    }
    out
}
