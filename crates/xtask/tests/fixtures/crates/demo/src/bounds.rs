//! Fixture: index sites the interval prover must discharge, next to
//! seeded out-of-bounds patterns it must flag.

// analyze: no_panic
pub fn proven(xs: &[u64], k: usize) -> u64 {
    let mut acc = 0;
    for i in 0..xs.len() {
        acc += xs[i];
    }
    if k < xs.len() {
        acc += xs[k];
    }
    acc
}

// analyze: no_panic
pub fn seeded(xs: &[u64], k: usize) -> u64 {
    let mut acc = 0;
    for i in 0..xs.len() {
        acc += xs[i + 1];
    }
    acc + xs[k]
}
