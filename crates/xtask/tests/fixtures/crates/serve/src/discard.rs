//! Fixture: `Result`s from workspace calls discarded in serve code.

pub fn flush() -> Result<(), String> {
    Ok(())
}

pub fn explicit_discard() {
    let _ = flush();
}

pub fn bare_discard() {
    flush();
}

pub fn handled() -> Result<(), String> {
    flush()?;
    Ok(())
}

pub fn consumed() -> bool {
    flush().is_ok()
}
