//! Fixture: a published-generation protocol with a broken store side,
//! plus a pure `Relaxed` counter that must stay clean.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Gate {
    epoch: AtomicU64,
    hits: AtomicU64,
}

impl Gate {
    pub fn publish(&self, v: u64) {
        self.epoch.store(v, Ordering::Relaxed);
    }

    pub fn observe(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
