//! Fixture: the cross-crate callee for the guard_call fixture.

pub fn notify() {}
