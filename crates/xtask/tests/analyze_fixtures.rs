//! Golden-output tests driving `xtask::analyze` over the checked-in
//! fixture crate under `tests/fixtures/crates/demo/` — one file per
//! analysis, plus the baseline-ratchet scenarios against temp dirs.
//!
//! The fixture tree deliberately carries no `Cargo.toml`, so the
//! dependency filter stays permissive and the fixtures exercise the
//! analyses themselves rather than edge pruning (which `deps` unit
//! tests cover against the real workspace).

use std::path::{Path, PathBuf};

use xtask::analyze::{self, Analysis};
use xtask::baseline;
use xtask::diag::{to_json, Diagnostic};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn demo_files() -> Vec<PathBuf> {
    [
        "panic_path.rs",
        "hot_alloc.rs",
        "obs_hot.rs",
        "locks.rs",
        "seqcst.rs",
        "clean.rs",
        "unsafe_site.rs",
    ]
    .iter()
    .map(|f| PathBuf::from("crates/demo/src").join(f))
    .collect()
}

fn analysis() -> Analysis {
    Analysis::load(&fixtures_root(), &demo_files()).expect("fixtures parse")
}

fn rule_in<'d>(d: &'d [Diagnostic], rule: &str, file: &str) -> Vec<&'d Diagnostic> {
    d.iter()
        .filter(|d| d.rule == rule && d.path.to_string_lossy().replace('\\', "/").ends_with(file))
        .collect()
}

#[test]
fn panic_path_renders_two_hop_route_to_the_sink() {
    let d = analysis().diagnostics();
    let p = rule_in(&d, "panic_path", "panic_path.rs");
    assert_eq!(p.len(), 1, "{d:?}");
    assert_eq!(p[0].line, 13);
    assert!(p[0].message.contains("2 calls away"), "{}", p[0].message);
    assert!(p[0].message.contains("`kernel`"), "{}", p[0].message);
    assert_eq!(
        p[0].notes[0],
        "path: crates/demo/src/panic_path.rs:4 → crates/demo/src/panic_path.rs:5 → \
         crates/demo/src/panic_path.rs:9 → crates/demo/src/panic_path.rs:13"
    );
    assert!(p[0].notes[1].contains("`kernel` → `middle` → `bottom`"), "{}", p[0].notes[1]);
}

#[test]
fn hot_alloc_flags_par_closure_and_kernel_loop() {
    let d = analysis().diagnostics();
    let h = rule_in(&d, "hot_alloc", "hot_alloc.rs");
    assert_eq!(h.len(), 2, "{d:?}");
    // `format!` inside the parallel closure (the chain-terminating
    // `.collect()` at par-marker depth is exempt).
    assert_eq!(h[0].line, 6);
    assert!(h[0].message.contains("a parallel closure"), "{}", h[0].message);
    // `out.push` inside the `no_panic` kernel's per-row loop; the
    // hoisted `Vec::new()` outside the loop is not flagged.
    assert_eq!(h[1].line, 13);
    assert!(h[1].message.contains("per-row loop"), "{}", h[1].message);
}

#[test]
fn obs_hot_path_flags_par_span_and_kernel_loop_flight() {
    let d = analysis().diagnostics();
    let h = rule_in(&d, "obs_hot_path", "obs_hot.rs");
    assert_eq!(h.len(), 2, "{d:?}");
    // `span` inside the parallel closure of `par_span`; the justified
    // copy in `justified` and the whole-function span in `coarse` are
    // exempt.
    assert_eq!(h[0].line, 9);
    assert!(h[0].message.contains("`span(..)`"), "{}", h[0].message);
    assert!(h[0].message.contains("a parallel closure"), "{}", h[0].message);
    // `flight_warn` inside the `no_panic` kernel's per-row loop.
    assert_eq!(h[1].line, 19);
    assert!(h[1].message.contains("`flight_warn(..)`"), "{}", h[1].message);
    assert!(h[1].message.contains("per-row loop"), "{}", h[1].message);
}

#[test]
fn lock_par_and_lock_cycle_fire_in_locks_fixture() {
    let d = analysis().diagnostics();
    let par = rule_in(&d, "lock_par", "locks.rs");
    assert_eq!(par.len(), 1, "{d:?}");
    assert_eq!(par[0].line, 14);
    assert!(par[0].message.contains("parallel closure"), "{}", par[0].message);

    let cyc = rule_in(&d, "lock_cycle", "locks.rs");
    assert_eq!(cyc.len(), 1, "{d:?}");
    // Reported at the edge that closes the cycle: `order_ba` acquiring
    // `a` while holding `b` (line 28).
    assert_eq!(cyc[0].line, 28);
    assert!(cyc[0].message.contains("lock-order cycle"), "{}", cyc[0].message);
    assert!(cyc[0].message.contains(" → "), "{}", cyc[0].message);
}

#[test]
fn seqcst_flagged_at_the_fetch_add() {
    let d = analysis().diagnostics();
    let s = rule_in(&d, "seqcst", "seqcst.rs");
    assert_eq!(s.len(), 1, "{d:?}");
    assert_eq!(s[0].line, 6);
    assert!(s[0].message.contains("SeqCst"), "{}", s[0].message);
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let d = analysis().diagnostics();
    assert!(
        d.iter().all(|d| !d.path.to_string_lossy().contains("clean.rs")),
        "clean.rs should be finding-free: {d:?}"
    );
}

#[test]
fn json_output_carries_every_fixture_finding() {
    let d = analysis().diagnostics();
    let j = to_json("analyze", &d);
    assert!(j.starts_with("{\"tool\":\"analyze\",\"count\":"), "{j}");
    for rule in ["panic_path", "hot_alloc", "obs_hot_path", "lock_par", "lock_cycle", "seqcst"] {
        assert!(j.contains(&format!("\"rule\":\"{rule}\"")), "missing {rule} in {j}");
    }
    // The rendered call path survives JSON escaping inside notes.
    assert!(j.contains("path: crates/demo/src/panic_path.rs:4"), "{j}");
}

// ---------------------------------------------------------------------
// Baseline ratchet scenarios. Each uses a throwaway root so the real
// `analyze-baseline.toml` is never touched.
// ---------------------------------------------------------------------

fn temp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xtask-fixture-ratchet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_baseline(root: &Path, body: &str) {
    std::fs::write(root.join(analyze::BASELINE_FILE), body).unwrap();
}

#[test]
fn fixture_inventory_counts_the_demo_unsafe_site() {
    let inv = analysis().inventory();
    assert_eq!(inv.count("demo"), 1);
    assert_eq!(inv.count("model"), 0, "only the fixture crate carries unsafe");
}

#[test]
fn ratchet_rejects_new_unsafe_without_a_baseline_entry() {
    let root = temp_root("grew");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    let d = analyze::check_baseline(&root, &inv, &counts).unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "unsafe_ratchet");
    assert_eq!(d[0].path, PathBuf::from(analyze::BASELINE_FILE));
    assert!(
        d[0].message.contains("`demo` has 1 unsafe sites, baseline allows 0"),
        "{}",
        d[0].message
    );
}

#[test]
fn ratchet_rejects_stale_entries_for_vanished_unsafe() {
    let root = temp_root("stale");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    write_baseline(
        &root,
        &format!(
            "[crate.demo]\ncount = 1\ndigest = \"{}\"\nreason = \"fixture\"\n\
             [crate.ghost]\ncount = 3\ndigest = \"0000000000000000\"\nreason = \"vanished\"\n",
            inv.digest("demo")
        ),
    );
    let d = analyze::check_baseline(&root, &inv, &counts).unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(
        d[0].message.contains("`ghost` has 0 unsafe sites but the baseline still grandfathers 3"),
        "{}",
        d[0].message
    );
}

#[test]
fn ratchet_rejects_moved_unsafe_at_equal_count() {
    let root = temp_root("moved");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    write_baseline(
        &root,
        "[crate.demo]\ncount = 1\ndigest = \"ffffffffffffffff\"\nreason = \"fixture\"\n",
    );
    let d = analyze::check_baseline(&root, &inv, &counts).unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("unsafe sites moved"), "{}", d[0].message);
}

#[test]
fn ratchet_passes_on_matching_baseline_and_update_keeps_reasons() {
    let root = temp_root("match");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    write_baseline(
        &root,
        &format!(
            "[crate.demo]\ncount = 1\ndigest = \"{}\"\nreason = \"SAFETY-commented spin fixture\"\n",
            inv.digest("demo")
        ),
    );
    assert!(analyze::check_baseline(&root, &inv, &counts).unwrap().is_empty());

    // `--update-baseline` rewrites the file from the inventory and
    // carries the human reason forward.
    let path = analyze::update_baseline(&root, &inv, &counts).unwrap();
    let reparsed = baseline::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reparsed.crates["demo"].count, 1);
    assert_eq!(reparsed.crates["demo"].reason, "SAFETY-commented spin fixture");
    assert!(analyze::check_baseline(&root, &inv, &counts).unwrap().is_empty());
}

#[test]
fn test_ratchet_flags_dropped_tests_through_check_baseline() {
    let root = temp_root("tests-ratchet");
    let inv = analysis().inventory();
    write_baseline(
        &root,
        &format!(
            "[crate.demo]\ncount = 1\ndigest = \"{}\"\nreason = \"fixture\"\n\
             [tests.demo]\ncount = 4\n",
            inv.digest("demo")
        ),
    );
    // The fixture tree has no #[test] at all, so the recorded floor of
    // 4 reads as dropped tests.
    let counts = analysis().test_counts();
    assert!(counts.is_empty(), "{counts:?}");
    let d = analyze::check_baseline(&root, &inv, &counts).unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "test_ratchet");
    assert!(d[0].message.contains("tests were dropped"), "{}", d[0].message);

    // `--update-baseline` ratchets the floor back to reality.
    analyze::update_baseline(&root, &inv, &counts).unwrap();
    assert!(analyze::check_baseline(&root, &inv, &counts).unwrap().is_empty());
}

#[test]
fn malformed_baseline_is_a_hard_error_not_a_pass() {
    let root = temp_root("malformed");
    write_baseline(&root, "[crate.demo]\ncount = banana\n");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    assert!(analyze::check_baseline(&root, &inv, &counts).is_err());
}
