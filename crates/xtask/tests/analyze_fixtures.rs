//! Golden-output tests driving `xtask::analyze` over the checked-in
//! fixture crate under `tests/fixtures/crates/demo/` — one file per
//! analysis, plus the baseline-ratchet scenarios against temp dirs.
//!
//! The fixture tree deliberately carries no `Cargo.toml`, so the
//! dependency filter stays permissive and the fixtures exercise the
//! analyses themselves rather than edge pruning (which `deps` unit
//! tests cover against the real workspace).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use xtask::analyze::{self, Analysis};
use xtask::diag::{to_json, Diagnostic};
use xtask::{baseline, json, sarif};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn demo_files() -> Vec<PathBuf> {
    [
        "panic_path.rs",
        "hot_alloc.rs",
        "obs_hot.rs",
        "locks.rs",
        "seqcst.rs",
        "clean.rs",
        "unsafe_site.rs",
    ]
    .iter()
    .map(|f| PathBuf::from("crates/demo/src").join(f))
    .collect()
}

fn analysis() -> Analysis {
    Analysis::load(&fixtures_root(), &demo_files()).expect("fixtures parse")
}

fn rule_in<'d>(d: &'d [Diagnostic], rule: &str, file: &str) -> Vec<&'d Diagnostic> {
    d.iter()
        .filter(|d| d.rule == rule && d.path.to_string_lossy().replace('\\', "/").ends_with(file))
        .collect()
}

#[test]
fn panic_path_renders_two_hop_route_to_the_sink() {
    let d = analysis().diagnostics();
    let p = rule_in(&d, "panic_path", "panic_path.rs");
    assert_eq!(p.len(), 1, "{d:?}");
    assert_eq!(p[0].line, 13);
    assert!(p[0].message.contains("2 calls away"), "{}", p[0].message);
    assert!(p[0].message.contains("`kernel`"), "{}", p[0].message);
    assert_eq!(
        p[0].notes[0],
        "path: crates/demo/src/panic_path.rs:4 → crates/demo/src/panic_path.rs:5 → \
         crates/demo/src/panic_path.rs:9 → crates/demo/src/panic_path.rs:13"
    );
    assert!(p[0].notes[1].contains("`kernel` → `middle` → `bottom`"), "{}", p[0].notes[1]);
}

#[test]
fn hot_alloc_flags_par_closure_and_kernel_loop() {
    let d = analysis().diagnostics();
    let h = rule_in(&d, "hot_alloc", "hot_alloc.rs");
    assert_eq!(h.len(), 2, "{d:?}");
    // `format!` inside the parallel closure (the chain-terminating
    // `.collect()` at par-marker depth is exempt).
    assert_eq!(h[0].line, 6);
    assert!(h[0].message.contains("a parallel closure"), "{}", h[0].message);
    // `out.push` inside the `no_panic` kernel's per-row loop; the
    // hoisted `Vec::new()` outside the loop is not flagged.
    assert_eq!(h[1].line, 13);
    assert!(h[1].message.contains("per-row loop"), "{}", h[1].message);
}

#[test]
fn obs_hot_path_flags_par_span_and_kernel_loop_flight() {
    let d = analysis().diagnostics();
    let h = rule_in(&d, "obs_hot_path", "obs_hot.rs");
    assert_eq!(h.len(), 2, "{d:?}");
    // `span` inside the parallel closure of `par_span`; the justified
    // copy in `justified` and the whole-function span in `coarse` are
    // exempt.
    assert_eq!(h[0].line, 9);
    assert!(h[0].message.contains("`span(..)`"), "{}", h[0].message);
    assert!(h[0].message.contains("a parallel closure"), "{}", h[0].message);
    // `flight_warn` inside the `no_panic` kernel's per-row loop.
    assert_eq!(h[1].line, 19);
    assert!(h[1].message.contains("`flight_warn(..)`"), "{}", h[1].message);
    assert!(h[1].message.contains("per-row loop"), "{}", h[1].message);
}

#[test]
fn lock_par_and_lock_cycle_fire_in_locks_fixture() {
    let d = analysis().diagnostics();
    let par = rule_in(&d, "lock_par", "locks.rs");
    assert_eq!(par.len(), 1, "{d:?}");
    assert_eq!(par[0].line, 14);
    assert!(par[0].message.contains("parallel closure"), "{}", par[0].message);

    let cyc = rule_in(&d, "lock_cycle", "locks.rs");
    assert_eq!(cyc.len(), 1, "{d:?}");
    // Reported at the edge that closes the cycle: `order_ba` acquiring
    // `a` while holding `b` (line 28).
    assert_eq!(cyc[0].line, 28);
    assert!(cyc[0].message.contains("lock-order cycle"), "{}", cyc[0].message);
    assert!(cyc[0].message.contains(" → "), "{}", cyc[0].message);
}

#[test]
fn seqcst_downgrade_flagged_under_atomic_protocol() {
    let d = analysis().diagnostics();
    let s = rule_in(&d, "atomic_protocol", "seqcst.rs");
    assert_eq!(s.len(), 1, "{d:?}");
    assert_eq!(s[0].line, 6);
    assert!(s[0].message.contains("SeqCst"), "{}", s[0].message);
    assert!(s[0].message.contains("Relaxed"), "{}", s[0].message);
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let d = analysis().diagnostics();
    assert!(
        d.iter().all(|d| !d.path.to_string_lossy().contains("clean.rs")),
        "clean.rs should be finding-free: {d:?}"
    );
}

#[test]
fn json_output_carries_every_fixture_finding() {
    let d = analysis().diagnostics();
    let j = to_json("analyze", &d);
    assert!(j.starts_with("{\"tool\":\"analyze\",\"count\":"), "{j}");
    for rule in
        ["panic_path", "hot_alloc", "obs_hot_path", "lock_par", "lock_cycle", "atomic_protocol"]
    {
        assert!(j.contains(&format!("\"rule\":\"{rule}\"")), "missing {rule} in {j}");
    }
    // The rendered call path survives JSON escaping inside notes.
    assert!(j.contains("path: crates/demo/src/panic_path.rs:4"), "{j}");
}

// ---------------------------------------------------------------------
// Dataflow rules: index_bounds, guard_across_await_or_call,
// result_discard, plus the stale-marker audit and its fixer.
// ---------------------------------------------------------------------

fn load_fixtures(files: &[&str]) -> Analysis {
    let paths: Vec<PathBuf> = files.iter().map(PathBuf::from).collect();
    Analysis::load(&fixtures_root(), &paths).expect("fixtures parse")
}

#[test]
fn index_bounds_proves_safe_sites_and_flags_every_seeded_oob() {
    let r = load_fixtures(&["crates/demo/src/bounds.rs"]).run();
    let d = rule_in(&r.diagnostics, "index_bounds", "bounds.rs");
    // `proven` is silent: the loop-bound site (line 8) and the
    // dominating-check site (line 11) are both discharged.
    assert!(d.iter().all(|d| d.line >= 16), "{d:?}");
    // `seeded` is fully flagged: `xs[i + 1]` overruns on the last
    // iteration, `xs[k]` is unconstrained.
    let lines: Vec<usize> = d.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![20, 22], "{d:?}");
    for f in &d {
        assert!(f.message.contains("cannot prove"), "{}", f.message);
        assert!(
            f.notes.iter().any(|n| n.starts_with("unproven obligation:")),
            "obligation note missing: {f:?}"
        );
    }
}

#[test]
fn guard_across_call_flags_held_guard_with_hold_range() {
    let r = load_fixtures(&["crates/demo/src/guard_call.rs", "crates/other/src/lib.rs"]).run();
    let d = rule_in(&r.diagnostics, "guard_across_await_or_call", "guard_call.rs");
    assert_eq!(d.len(), 1, "{:?}", r.diagnostics);
    // `held_across` calls other::notify at line 13 with `g` (acquired
    // line 11) still live; `dropped_first` releases first and is clean.
    assert_eq!(d[0].line, 13);
    assert!(d[0].message.contains("guard `g` of lock `state`"), "{}", d[0].message);
    assert!(d[0].message.contains("`other::notify`"), "{}", d[0].message);
    assert!(
        d[0].notes[0].contains("acquired at line 11, still live at the call on line 13"),
        "{}",
        d[0].notes[0]
    );
}

#[test]
fn result_discard_flags_both_forms_only_in_covered_crates() {
    let r = load_fixtures(&["crates/serve/src/discard.rs"]).run();
    let d = rule_in(&r.diagnostics, "result_discard", "discard.rs");
    assert_eq!(d.len(), 2, "{:?}", r.diagnostics);
    assert_eq!(d[0].line, 8);
    assert!(d[0].message.contains("`let _ = …`"), "{}", d[0].message);
    assert_eq!(d[1].line, 12);
    assert!(d[1].message.contains("a bare statement"), "{}", d[1].message);
    for f in &d {
        assert!(f.message.contains("`flush`"), "{}", f.message);
    }
    // `handled` (`?`) and `consumed` (`.is_ok()` tail) are clean.
    assert!(d.iter().all(|f| f.line < 15), "{d:?}");
}

#[test]
fn stale_markers_flagged_and_counted_but_used_markers_are_not() {
    // obs_hot.rs carries a *used* obs_hot_path marker; stale.rs carries
    // a dead panic_path marker and an unknown-rule marker.
    let r = load_fixtures(&["crates/demo/src/stale.rs", "crates/demo/src/obs_hot.rs"]).run();
    let d = rule_in(&r.diagnostics, "stale_marker", "stale.rs");
    let lines: Vec<usize> = d.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![4, 9], "{:?}", r.diagnostics);
    assert!(d[0].message.contains("`allow(panic_path)` suppresses nothing"), "{}", d[0].message);
    assert!(d[1].message.contains("no rule is named `no_such_rule`"), "{}", d[1].message);
    assert!(
        rule_in(&r.diagnostics, "stale_marker", "obs_hot.rs").is_empty(),
        "used marker must not be stale: {:?}",
        r.diagnostics
    );
    assert_eq!(r.stale.get("demo"), Some(&2), "{:?}", r.stale);
}

#[test]
fn remove_stale_deletes_markers_and_makes_the_rerun_clean() {
    let root = temp_root("remove-stale");
    let dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&dir).unwrap();
    let fixture = fixtures_root().join("crates/demo/src/stale.rs");
    std::fs::copy(&fixture, dir.join("stale.rs")).unwrap();

    let rel = vec![PathBuf::from("crates/demo/src/stale.rs")];
    let first = Analysis::load(&root, &rel).unwrap().run();
    assert_eq!(rule_in(&first.diagnostics, "stale_marker", "stale.rs").len(), 2);

    let removed = analyze::remove_stale_markers(&root, &first.diagnostics).unwrap();
    assert_eq!(removed, 2);
    let rewritten = std::fs::read_to_string(dir.join("stale.rs")).unwrap();
    assert!(!rewritten.contains("allow("), "markers must be gone:\n{rewritten}");
    assert!(rewritten.contains("x + 1"), "code must survive:\n{rewritten}");

    let second = Analysis::load(&root, &rel).unwrap().run();
    assert!(second.diagnostics.is_empty(), "{:?}", second.diagnostics);
    assert!(second.stale.is_empty(), "{:?}", second.stale);
}

#[test]
fn diff_gating_subtracts_known_findings_by_identity() {
    let r = load_fixtures(&["crates/demo/src/bounds.rs"]).run();
    assert_eq!(r.diagnostics.len(), 2, "{:?}", r.diagnostics);

    // A baseline holding only the first finding leaves only the second.
    let dir = temp_root("diff");
    let partial = dir.join("partial.json");
    std::fs::write(&partial, to_json("analyze", &r.diagnostics[..1])).unwrap();
    let seen = analyze::load_diff_baseline(&partial).unwrap();
    let mut gated = r.diagnostics.clone();
    analyze::apply_diff(&mut gated, &seen);
    assert_eq!(gated.len(), 1, "{gated:?}");
    assert_eq!(gated[0].line, r.diagnostics[1].line);

    // A full baseline silences everything.
    let full = dir.join("full.json");
    std::fs::write(&full, to_json("analyze", &r.diagnostics)).unwrap();
    let seen = analyze::load_diff_baseline(&full).unwrap();
    let mut gated = r.diagnostics.clone();
    analyze::apply_diff(&mut gated, &seen);
    assert!(gated.is_empty(), "{gated:?}");

    // Junk input is a hard error, not an empty pass.
    let junk = dir.join("junk.json");
    std::fs::write(&junk, "{\"tool\":\"analyze\"}").unwrap();
    assert!(analyze::load_diff_baseline(&junk).is_err());
}

// ---------------------------------------------------------------------
// Summary rules: par_race (direct + transitive), atomic_protocol
// store/load pairing, and interprocedural index_bounds obligations.
// ---------------------------------------------------------------------

#[test]
fn par_race_fixture_flags_direct_capture_and_transitive_static_mut() {
    let r = load_fixtures(&["crates/demo/src/par_race.rs"]).run();
    let d = rule_in(&r.diagnostics, "par_race", "par_race.rs");
    assert_eq!(d.len(), 2, "{:?}", r.diagnostics);
    // `fan_out` calls `tally`, which writes `static mut TOTAL` — the
    // finding lands on the call and the note carries the hop chain.
    assert_eq!(d[0].line, 11);
    assert!(d[0].message.contains("call to `tally`"), "{}", d[0].message);
    assert!(d[0].message.contains("TOTAL"), "{}", d[0].message);
    assert!(
        d[0].notes[0].contains("par_race.rs:11") && d[0].notes[0].contains("par_race.rs:7"),
        "{:?}",
        d[0].notes
    );
    // `collect_into` pushes into the captured `out` directly.
    assert_eq!(d[1].line, 15);
    assert!(d[1].message.contains("captured `out`"), "{}", d[1].message);
    assert!(d[1].message.contains("map_init"), "{}", d[1].message);
}

#[test]
fn atomic_protocol_fixture_pairs_relaxed_store_with_acquire_load() {
    let r = load_fixtures(&["crates/serve/src/atomics.rs"]).run();
    let d = rule_in(&r.diagnostics, "atomic_protocol", "atomics.rs");
    assert_eq!(d.len(), 1, "{:?}", r.diagnostics);
    // The `Relaxed` store is the broken side; the message names the
    // Acquire load it fails to synchronize with.
    assert_eq!(d[0].line, 13);
    assert!(d[0].message.contains("`Relaxed` store to `epoch`"), "{}", d[0].message);
    assert!(d[0].message.contains("atomics.rs:17"), "{}", d[0].message);
    assert!(d[0].message.contains("`Release`"), "{}", d[0].message);
    // The all-Relaxed `hits` counter stays clean.
    assert!(!r.diagnostics.iter().any(|f| f.message.contains("hits")), "{:?}", r.diagnostics);
}

#[test]
fn interproc_bounds_fixture_discharges_loop_caller_and_reports_root() {
    let r = load_fixtures(&["crates/demo/src/interproc.rs"]).run();
    let d = rule_in(&r.diagnostics, "index_bounds", "interproc.rs");
    // `safe_scan` establishes `i < xs.len()` at its call site, so
    // `pick`'s obligation is discharged there; only the `unchecked`
    // root surfaces it — at the declaration, with the full chain.
    assert_eq!(d.len(), 1, "{:?}", r.diagnostics);
    assert_eq!(d[0].line, 18);
    assert!(d[0].message.contains("cannot establish precondition"), "{}", d[0].message);
    assert!(d[0].message.contains("`k < len(xs)`"), "{}", d[0].message);
    assert!(d[0].message.contains("interproc.rs:5"), "{}", d[0].message);
    assert!(d[0].message.contains("`unchecked`"), "{}", d[0].message);
    assert!(
        d[0].notes[0].contains("interproc.rs:18")
            && d[0].notes[0].contains("interproc.rs:19")
            && d[0].notes[0].contains("interproc.rs:5"),
        "{:?}",
        d[0].notes
    );
}

#[test]
fn sarif_export_of_fixture_findings_round_trips_the_validator() {
    let mut d = analysis().diagnostics();
    d.extend(load_fixtures(&["crates/demo/src/bounds.rs"]).run().diagnostics);
    d.extend(load_fixtures(&["crates/demo/src/par_race.rs"]).run().diagnostics);
    d.extend(load_fixtures(&["crates/serve/src/atomics.rs"]).run().diagnostics);
    d.extend(load_fixtures(&["crates/demo/src/interproc.rs"]).run().diagnostics);
    let log = sarif::to_sarif("analyze", &d);
    let doc = json::parse(&log).expect("SARIF output parses as JSON");
    let n = sarif::validate(&doc).expect("SARIF output satisfies the validator");
    assert_eq!(n, d.len(), "one SARIF result per diagnostic");
    for rule in ["index_bounds", "par_race", "atomic_protocol"] {
        assert!(log.contains(&format!("\"ruleId\":\"{rule}\"")), "missing {rule}: {log}");
    }
}

// ---------------------------------------------------------------------
// Baseline ratchet scenarios. Each uses a throwaway root so the real
// `analyze-baseline.toml` is never touched.
// ---------------------------------------------------------------------

fn temp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xtask-fixture-ratchet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_baseline(root: &Path, body: &str) {
    std::fs::write(root.join(analyze::BASELINE_FILE), body).unwrap();
}

#[test]
fn fixture_inventory_counts_the_demo_unsafe_site() {
    let inv = analysis().inventory();
    assert_eq!(inv.count("demo"), 1);
    assert_eq!(inv.count("model"), 0, "only the fixture crate carries unsafe");
}

#[test]
fn ratchet_rejects_new_unsafe_without_a_baseline_entry() {
    let root = temp_root("grew");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    let d = analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new(),
    )
    .unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "unsafe_ratchet");
    assert_eq!(d[0].path, PathBuf::from(analyze::BASELINE_FILE));
    assert!(
        d[0].message.contains("`demo` has 1 unsafe sites, baseline allows 0"),
        "{}",
        d[0].message
    );
}

#[test]
fn ratchet_rejects_stale_entries_for_vanished_unsafe() {
    let root = temp_root("stale");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    write_baseline(
        &root,
        &format!(
            "[crate.demo]\ncount = 1\ndigest = \"{}\"\nreason = \"fixture\"\n\
             [crate.ghost]\ncount = 3\ndigest = \"0000000000000000\"\nreason = \"vanished\"\n",
            inv.digest("demo")
        ),
    );
    let d = analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new(),
    )
    .unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(
        d[0].message.contains("`ghost` has 0 unsafe sites but the baseline still grandfathers 3"),
        "{}",
        d[0].message
    );
}

#[test]
fn ratchet_rejects_moved_unsafe_at_equal_count() {
    let root = temp_root("moved");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    write_baseline(
        &root,
        "[crate.demo]\ncount = 1\ndigest = \"ffffffffffffffff\"\nreason = \"fixture\"\n",
    );
    let d = analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new(),
    )
    .unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("unsafe sites moved"), "{}", d[0].message);
}

#[test]
fn ratchet_passes_on_matching_baseline_and_update_keeps_reasons() {
    let root = temp_root("match");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    write_baseline(
        &root,
        &format!(
            "[crate.demo]\ncount = 1\ndigest = \"{}\"\nreason = \"SAFETY-commented spin fixture\"\n",
            inv.digest("demo")
        ),
    );
    assert!(analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new()
    )
    .unwrap()
    .is_empty());

    // `--update-baseline` rewrites the file from the inventory and
    // carries the human reason forward.
    let path = analyze::update_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new(),
    )
    .unwrap();
    let reparsed = baseline::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reparsed.crates["demo"].count, 1);
    assert_eq!(reparsed.crates["demo"].reason, "SAFETY-commented spin fixture");
    assert!(analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new()
    )
    .unwrap()
    .is_empty());
}

#[test]
fn test_ratchet_flags_dropped_tests_through_check_baseline() {
    let root = temp_root("tests-ratchet");
    let inv = analysis().inventory();
    write_baseline(
        &root,
        &format!(
            "[crate.demo]\ncount = 1\ndigest = \"{}\"\nreason = \"fixture\"\n\
             [tests.demo]\ncount = 4\n",
            inv.digest("demo")
        ),
    );
    // The fixture tree has no #[test] at all, so the recorded floor of
    // 4 reads as dropped tests.
    let counts = analysis().test_counts();
    assert!(counts.is_empty(), "{counts:?}");
    let d = analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new(),
    )
    .unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "test_ratchet");
    assert!(d[0].message.contains("tests were dropped"), "{}", d[0].message);

    // `--update-baseline` ratchets the floor back to reality.
    analyze::update_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new(),
    )
    .unwrap();
    assert!(analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new()
    )
    .unwrap()
    .is_empty());
}

#[test]
fn malformed_baseline_is_a_hard_error_not_a_pass() {
    let root = temp_root("malformed");
    write_baseline(&root, "[crate.demo]\ncount = banana\n");
    let inv = analysis().inventory();
    let counts = analysis().test_counts();
    assert!(analyze::check_baseline(
        &root,
        &inv,
        &counts,
        &BTreeMap::new(),
        &BTreeMap::new(),
        &BTreeMap::new()
    )
    .is_err());
}
