//! The diagnostic type shared by `cargo xtask lint` and `cargo xtask
//! analyze`, with the two output formats and the exit-code contract.
//!
//! Both passes speak the same language so CI and editors only need one
//! consumer:
//!
//! * human format — `path:line: [rule] message`, one line per finding,
//!   followed by indented `note:` lines (the analyzer uses notes to
//!   render call paths);
//! * `--format json` — a single JSON object on stdout:
//!   `{"tool": ..., "count": N, "diagnostics": [...]}`.
//!
//! Exit codes (both subcommands): **0** clean, **1** findings reported,
//! **2** usage or internal error (unreadable file, malformed baseline).

use std::path::{Path, PathBuf};

/// One finding from either pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the finding is in (workspace-relative when walked).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// What is wrong and how to fix it.
    pub message: String,
    /// Supporting context, e.g. the call path from a `no_panic` kernel
    /// to the panic sink, one hop per note.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A note-free diagnostic (the common case for line lints).
    pub fn new(path: &Path, line: usize, rule: &'static str, message: String) -> Self {
        Diagnostic { path: path.to_path_buf(), line, rule, message, notes: Vec::new() }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.rule, self.message)?;
        for n in &self.notes {
            write!(f, "\n    note: {n}")?;
        }
        Ok(())
    }
}

/// Output format selector, parsed from `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// `path:line: [rule] message` lines.
    #[default]
    Human,
    /// One JSON object with every diagnostic.
    Json,
    /// SARIF 2.1.0 (`--format sarif`), for code-scanning uploads.
    Sarif,
}

impl Format {
    /// Parse the `--format` argument value.
    pub fn parse(value: &str) -> Result<Format, String> {
        match value {
            "human" => Ok(Format::Human),
            "json" => Ok(Format::Json),
            "sarif" => Ok(Format::Sarif),
            other => Err(format!("unknown --format {other:?} (expected human|json|sarif)")),
        }
    }
}

/// Render a batch of diagnostics to stdout in the requested format.
pub fn emit(tool: &str, diagnostics: &[Diagnostic], format: Format) {
    match format {
        Format::Human => {
            for d in diagnostics {
                println!("{d}");
            }
        }
        Format::Json => println!("{}", to_json(tool, diagnostics)),
        Format::Sarif => println!("{}", crate::sarif::to_sarif(tool, diagnostics)),
    }
}

/// The JSON document for a batch of diagnostics.
pub fn to_json(tool: &str, diagnostics: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(256 + diagnostics.len() * 128);
    out.push_str("{\"tool\":");
    json_string(tool, &mut out);
    out.push_str(&format!(",\"count\":{},\"diagnostics\":[", diagnostics.len()));
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        json_string(&d.path.display().to_string(), &mut out);
        out.push_str(&format!(",\"line\":{},\"rule\":", d.line));
        json_string(d.rule, &mut out);
        out.push_str(",\"message\":");
        json_string(&d.message, &mut out);
        out.push_str(",\"notes\":[");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_string(n, &mut out);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Append `s` as a JSON string literal (quotes + escapes).
pub(crate) fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            path: PathBuf::from("crates/engine/src/x.rs"),
            line: 7,
            rule: "panic_path",
            message: "reachable `unwrap()`".into(),
            notes: vec!["kernel `build` (x.rs:3)".into()],
        }
    }

    #[test]
    fn human_format_includes_notes() {
        let s = diag().to_string();
        assert!(s.starts_with("crates/engine/src/x.rs:7: [panic_path] "));
        assert!(s.contains("note: kernel `build`"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut d = diag();
        d.message = "quote \" backslash \\ newline \n".into();
        let j = to_json("analyze", &[d]);
        assert!(j.starts_with("{\"tool\":\"analyze\",\"count\":1,"));
        assert!(j.contains("\\\""));
        assert!(j.contains("\\\\"));
        assert!(j.contains("\\n"));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn format_parsing() {
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert_eq!(Format::parse("human").unwrap(), Format::Human);
        assert!(Format::parse("xml").is_err());
    }
}
