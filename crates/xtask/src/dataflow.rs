//! Generic forward dataflow over a [`crate::cfg::Cfg`].
//!
//! The engine is a plain worklist fixpoint: each node holds the
//! abstract state *at its entry*; an analysis supplies the initial
//! state, the join, and a per-edge transfer function. Unreachable
//! nodes stay `None` (bottom), which is what gives branch-sensitive
//! precision for free: a `continue`-only arm contributes nothing to
//! the join below it.
//!
//! Termination: the analyses in this crate generate facts only from a
//! finite syntactic universe (terms that appear in the function), and
//! joins are monotone (intersection for must-facts, union for
//! may-facts), so the fixpoint is reached in bounded steps. A hard
//! iteration cap backstops that argument; if it ever trips, the solver
//! returns all-`None` — "nothing is known", which is the sound
//! direction for a must-analysis (nothing gets proven) and merely
//! under-reports for a may-analysis.

use crate::cfg::{Cfg, EdgeKind, NodeKind};

/// An abstract state: joinable and comparable for fixpoint detection.
pub trait AbstractState: Clone + PartialEq {
    /// Least upper bound (or greatest lower, for must-facts) of two
    /// reachable states.
    fn join(&self, other: &Self) -> Self;
}

/// One dataflow analysis: initial state plus edge transfer.
pub trait Analysis {
    /// The lattice element.
    type State: AbstractState;

    /// State at the function entry.
    fn entry_state(&self) -> Self::State;

    /// State after traversing the `edge`-kind out-edge of `node`.
    fn transfer(
        &self,
        node: usize,
        kind: &NodeKind,
        edge: EdgeKind,
        state: &Self::State,
    ) -> Self::State;
}

/// Iteration cap multiplier (pops per node) before bailing out.
const MAX_VISITS_PER_NODE: usize = 64;

/// Run `analysis` to fixpoint over `cfg`; returns the entry state per
/// node (`None` = unreachable / solver bailed).
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Vec<Option<A::State>> {
    let n = cfg.nodes.len();
    let mut state: Vec<Option<A::State>> = vec![None; n];
    state[cfg.entry] = Some(analysis.entry_state());
    let mut on_queue = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(cfg.entry);
    on_queue[cfg.entry] = true;

    let cap = n.saturating_mul(MAX_VISITS_PER_NODE).max(1024);
    let mut pops = 0usize;
    while let Some(u) = queue.pop_front() {
        on_queue[u] = false;
        pops += 1;
        if pops > cap {
            // Fixpoint failsafe: claim no knowledge anywhere.
            return vec![None; n];
        }
        let Some(s) = state[u].clone() else { continue };
        for &(v, kind) in &cfg.succ[u] {
            let out = analysis.transfer(u, &cfg.nodes[u], kind, &s);
            let merged = match &state[v] {
                Some(cur) => cur.join(&out),
                None => out,
            };
            if state[v].as_ref() != Some(&merged) {
                state[v] = Some(merged);
                if !on_queue[v] {
                    on_queue[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::lex::tokenize;
    use crate::parse::parse_file;
    use crate::source::SourceFile;
    use std::collections::BTreeSet;

    /// Toy must-analysis: the set of "defined" single-letter idents at
    /// each point; a `Stmt` whose first token is an ident defines it.
    struct Defined;
    #[derive(Clone, PartialEq)]
    struct Defs(BTreeSet<String>);
    impl AbstractState for Defs {
        fn join(&self, other: &Self) -> Self {
            Defs(self.0.intersection(&other.0).cloned().collect())
        }
    }

    struct DefinedImpl<'a>(&'a [crate::lex::Token]);
    impl Analysis for DefinedImpl<'_> {
        type State = Defs;
        fn entry_state(&self) -> Defs {
            Defs(BTreeSet::new())
        }
        fn transfer(&self, _n: usize, kind: &NodeKind, _e: EdgeKind, s: &Defs) -> Defs {
            let mut out = s.clone();
            if let NodeKind::Stmt(r) = kind {
                if let Some(t) = self.0.get(r.start) {
                    if t.is("let") {
                        if let Some(name) = self.0.get(r.start + 1) {
                            out.0.insert(name.text.clone());
                        }
                    }
                }
            }
            out
        }
    }

    fn run(src: &str) -> (Vec<crate::lex::Token>, Cfg, Vec<Option<Defs>>) {
        let f = SourceFile::parse(src);
        let toks = tokenize(&f);
        let p = parse_file(&f, &toks);
        let cfg = Cfg::build(&toks, p.functions[0].body.clone(), &[]);
        let states = solve(&cfg, &DefinedImpl(&toks));
        (toks, cfg, states)
    }

    #[test]
    fn must_join_is_intersection_across_branches() {
        let (toks, cfg, states) =
            run("fn f(c: bool) { let a = 1; if c { let b = 2; } else { let d = 3; } tail(); }\n");
        let _ = Defined;
        // At the `tail()` statement only `a` is defined on all paths.
        let tail = cfg
            .nodes
            .iter()
            .position(|n| match n {
                NodeKind::Stmt(r) => r.clone().any(|i| toks[i].is("tail")),
                _ => false,
            })
            .unwrap();
        let s = states[tail].as_ref().unwrap();
        assert!(s.0.contains("a"), "{:?}", s.0);
        assert!(!s.0.contains("b"));
        assert!(!s.0.contains("d"));
    }

    #[test]
    fn diverging_branch_does_not_pollute_the_join() {
        let (toks, cfg, states) =
            run("fn f(c: bool) { loop { if c { continue; } let a = 1; tail(); break; } }\n");
        let tail = cfg
            .nodes
            .iter()
            .position(|n| match n {
                NodeKind::Stmt(r) => r.clone().any(|i| toks[i].is("tail")),
                _ => false,
            })
            .unwrap();
        // The continue arm never reaches `tail`, so `a` survives.
        let s = states[tail].as_ref().unwrap();
        assert!(s.0.contains("a"), "{:?}", s.0);
    }

    #[test]
    fn loops_reach_fixpoint() {
        let (_, cfg, states) =
            run("fn f(n: usize) { let a = 0; while cond() { let b = 1; } done(); }\n");
        // Solver terminated and the exit is reachable.
        assert!(states[cfg.exit].is_some());
    }

    #[test]
    fn unreachable_nodes_stay_none() {
        let (toks, cfg, states) = run("fn f() { return; dead(); }\n");
        let dead = cfg.nodes.iter().position(|n| match n {
            NodeKind::Stmt(r) => r.clone().any(|i| toks[i].is("dead")),
            _ => false,
        });
        if let Some(d) = dead {
            assert!(states[d].is_none(), "statement after return is unreachable");
        }
    }
}
