//! `index_bounds`: a relational bounds prover for index expressions.
//!
//! Runs the [`crate::dataflow`] engine over each function's
//! [`crate::cfg::Cfg`] with a must-facts lattice of strict/non-strict
//! order relations between small symbolic terms (`i`, `len(xs)`,
//! `s.index()`, `n*n`, each with a constant offset). Facts are
//! generated from `let x = xs.len()` bindings, `vec![_; n]`
//! constructors, range loops, `enumerate()` loops and closures,
//! `min`/`max`/`clamp`, `assert!`, and branch conditions; they are
//! killed by rebinding, mutation, and calls to non-pure methods.
//!
//! Each index site (as defined by [`crate::parse::index_sink`], so the
//! prover and `panic_path` agree on what counts) is then discharged by
//! a bounded transitive-closure proof: `i < len(xs)` holds if a chain
//! of at most two recorded bounds with compatible offsets connects the
//! index term to the length term. Sites the prover cannot discharge
//! become `index_bounds` diagnostics carrying the unproven obligation.
//!
//! The lattice is a finite powerset of syntactic facts, the join is
//! intersection, and transfers are monotone (constant gens, name-based
//! kills), so the fixpoint terminates; the solver's iteration cap is a
//! backstop only.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::cfg::{visible, Cfg, EdgeKind, NodeKind};
use crate::dataflow::{solve, AbstractState, Analysis};
use crate::lex::{TokKind, Token};
use crate::parse::{index_sink, Function};

/// A symbolic term: `base + off`. An empty base is the constant `off`.
/// Bases are canonical strings: `i`, `self.cur`, `len(xs)`, `k.index()`,
/// `n*n`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Term {
    /// Canonical symbolic base, `""` for constants.
    pub base: String,
    /// Constant offset.
    pub off: i64,
}

impl Term {
    fn new(base: impl Into<String>, off: i64) -> Term {
        Term { base: base.into(), off }
    }

    fn konst(off: i64) -> Term {
        Term { base: String::new(), off }
    }

    /// Human rendering: `i + 1`, `len(xs)`, `3`.
    pub fn show(&self) -> String {
        if self.base.is_empty() {
            self.off.to_string()
        } else if self.off == 0 {
            self.base.clone()
        } else if self.off > 0 {
            format!("{} + {}", self.base, self.off)
        } else {
            format!("{} - {}", self.base, -self.off)
        }
    }
}

/// Must-facts: strict (`lt`) and non-strict (`le`) order relations.
/// Equality is `le` both ways.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Facts {
    /// Pairs `(a, b)` with `a < b` on every path reaching this point.
    pub lt: BTreeSet<(Term, Term)>,
    /// Pairs `(a, b)` with `a <= b` on every path.
    pub le: BTreeSet<(Term, Term)>,
}

impl Facts {
    fn add_lt(&mut self, a: Term, b: Term) {
        self.lt.insert((a, b));
    }

    fn add_le(&mut self, a: Term, b: Term) {
        self.le.insert((a, b));
    }

    fn add_eq(&mut self, a: Term, b: Term) {
        self.le.insert((a.clone(), b.clone()));
        self.le.insert((b, a));
    }
}

impl AbstractState for Facts {
    fn join(&self, other: &Self) -> Self {
        Facts {
            lt: self.lt.intersection(&other.lt).cloned().collect(),
            le: self.le.intersection(&other.le).cloned().collect(),
        }
    }
}

/// Does `base` contain `name` as a whole path segment?
fn mentions(base: &str, name: &str) -> bool {
    base.split(|c: char| !c.is_ascii_alphanumeric() && c != '_').any(|seg| seg == name)
}

fn kill_name(f: &mut Facts, name: &str) {
    f.lt.retain(|(a, b)| !mentions(&a.base, name) && !mentions(&b.base, name));
    f.le.retain(|(a, b)| !mentions(&a.base, name) && !mentions(&b.base, name));
}

/// Methods that neither change a container's length nor mutate the
/// bindings our terms mention.
const PURE: &[&str] = &[
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "par_iter",
    "par_iter_mut",
    "into_iter",
    "into_par_iter",
    "enumerate",
    "get",
    "first",
    "last",
    "min",
    "max",
    "clamp",
    "clone",
    "to_vec",
    "to_owned",
    "as_slice",
    "as_ref",
    "as_bytes",
    "as_str",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search",
    "binary_search_by",
    "copied",
    "cloned",
    "rev",
    "zip",
    "take",
    "skip",
    "windows",
    "chunks",
    "chunks_exact",
    "split_at",
    "load",
    "index",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "for_each",
    "collect",
    "sum",
    "count",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "slice",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "expect",
    "abs",
    "pow",
    "to_string",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "wrapping_add",
    "wrapping_sub",
    "position",
    "find",
    "any",
    "all",
    "cmp",
    "partial_cmp",
    "eq",
    "ne",
    "hash",
    "keys",
    "values",
    "entry",
    "insert_with",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

/// Length-preserving converters allowed inside a `(lo..hi).…collect()`
/// chain or between a path and `.enumerate()`.
const ITER_PURE: &[&str] = &[
    "iter",
    "iter_mut",
    "par_iter",
    "par_iter_mut",
    "into_iter",
    "into_par_iter",
    "copied",
    "cloned",
    "rev",
    "map",
];

/// Adapter methods whose closure parameter is the chain's value.
const VALUE_METHODS: &[&str] = &[
    "map",
    "for_each",
    "flat_map",
    "filter",
    "filter_map",
    "inspect",
    "try_for_each",
    "any",
    "all",
    "position",
];

const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "as", "in", "if", "else", "while", "for", "loop", "match", "return",
    "break", "continue", "fn", "move", "self", "Self", "pub", "use", "unsafe", "where", "impl",
    "dyn", "true", "false",
];

fn is_plain_ident(t: &Token) -> bool {
    t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str())
}

fn parse_num(text: &str) -> Option<i64> {
    if text.starts_with("0x") || text.starts_with("0b") || text.contains('.') {
        return None;
    }
    let digits: String = text.chars().take_while(|c| c.is_ascii_digit() || *c == '_').collect();
    digits.replace('_', "").parse().ok()
}

/// Nesting delta over parens/brackets for top-level scans. Brace
/// regions never appear in the position lists we scan ([`visible`]
/// strips them).
fn nest_delta(kind: TokKind) -> i32 {
    match kind {
        TokKind::LParen | TokKind::LBracket => 1,
        TokKind::RParen | TokKind::RBracket => -1,
        _ => 0,
    }
}

/// Strip one layer of outer parens from a position list, repeatedly.
fn strip_parens<'a>(toks: &[Token], mut pos: &'a [usize]) -> &'a [usize] {
    loop {
        if pos.len() < 2
            || toks[pos[0]].kind != TokKind::LParen
            || toks[*pos.last().unwrap()].kind != TokKind::RParen
        {
            return pos;
        }
        // The final `)` must match the first `(`.
        let mut nest = 0i32;
        for (k, &p) in pos.iter().enumerate() {
            nest += nest_delta(toks[p].kind);
            if nest == 0 && k + 1 != pos.len() {
                return pos;
            }
        }
        pos = &pos[1..pos.len() - 1];
    }
}

/// Parse a position list as a [`Term`]. Handles paths, zero-arg method
/// calls (`x.len()` → `len(x)`, `k.index()`), `A * B` products,
/// `± const` offsets, `as` casts, and leading `&`/`mut`.
pub fn parse_term(toks: &[Token], pos: &[usize]) -> Option<Term> {
    let mut pos = pos;
    while let Some(&p) = pos.first() {
        if toks[p].text == "&" || toks[p].is("mut") {
            pos = &pos[1..];
        } else {
            break;
        }
    }
    let pos = strip_parens(toks, pos);
    // `expr as ty`: drop the cast.
    let mut nest = 0i32;
    let mut cast = None;
    for (k, &p) in pos.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        if nest == 0 && toks[p].is("as") {
            cast = Some(k);
            break;
        }
    }
    let pos = match cast {
        Some(k) if k > 0 => &pos[..k],
        Some(_) => return None,
        None => pos,
    };
    if pos.is_empty() {
        return None;
    }
    // Last top-level `+` / `-` splits an offset.
    let mut nest = 0i32;
    let mut split = None;
    for (k, &p) in pos.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        let t = &toks[p];
        if nest == 0 && k > 0 && t.kind == TokKind::Punct && (t.text == "+" || t.text == "-") {
            // Not a unary minus after another operator.
            let prev = &toks[pos[k - 1]];
            if matches!(
                prev.kind,
                TokKind::Ident | TokKind::Num | TokKind::RParen | TokKind::RBracket
            ) {
                split = Some((k, t.text == "-"));
            }
        }
    }
    if let Some((k, minus)) = split {
        let l = parse_term(toks, &pos[..k])?;
        let r = parse_term(toks, &pos[k + 1..])?;
        return match (l.base.is_empty(), r.base.is_empty()) {
            (true, true) => Some(Term::konst(if minus { l.off - r.off } else { l.off + r.off })),
            (false, true) => {
                Some(Term::new(l.base, if minus { l.off - r.off } else { l.off + r.off }))
            }
            (true, false) if !minus => Some(Term::new(r.base, r.off + l.off)),
            _ => None,
        };
    }
    // Top-level `*`: product of two offset-free terms.
    let mut nest = 0i32;
    for (k, &p) in pos.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        if nest == 0 && k > 0 && toks[p].kind == TokKind::Punct && toks[p].text == "*" {
            let l = parse_term(toks, &pos[..k])?;
            let r = parse_term(toks, &pos[k + 1..])?;
            if l.off == 0 && r.off == 0 && !l.base.is_empty() && !r.base.is_empty() {
                return Some(Term::new(format!("{}*{}", l.base, r.base), 0));
            }
            return None;
        }
    }
    // Atom: number, path, or zero-arg method call on a path.
    if pos.len() == 1 && toks[pos[0]].kind == TokKind::Num {
        return parse_num(&toks[pos[0]].text).map(Term::konst);
    }
    // Zero-arg method call tail: `. name ( )`.
    if pos.len() >= 4 {
        let n = pos.len();
        let (d, m, lp, rp) = (pos[n - 4], pos[n - 3], pos[n - 2], pos[n - 1]);
        if toks[d].text == "."
            && is_plain_ident(&toks[m])
            && toks[lp].kind == TokKind::LParen
            && toks[rp].kind == TokKind::RParen
        {
            let recv = path_text(toks, &pos[..n - 4])?;
            return Some(if toks[m].is("len") {
                Term::new(format!("len({recv})"), 0)
            } else {
                Term::new(format!("{recv}.{}()", toks[m].text), 0)
            });
        }
    }
    path_text(toks, pos).map(|p| Term::new(p, 0))
}

/// Join a position list that is exactly `ident (. ident)*` (with
/// `self` allowed) into a dotted path string.
fn path_text(toks: &[Token], pos: &[usize]) -> Option<String> {
    if pos.is_empty() {
        return None;
    }
    let mut out = String::new();
    for (k, &p) in pos.iter().enumerate() {
        let t = &toks[p];
        if k % 2 == 0 {
            if t.kind != TokKind::Ident || (KEYWORDS.contains(&t.text.as_str()) && !t.is("self")) {
                return None;
            }
            out.push_str(&t.text);
        } else {
            if t.text != "." {
                return None;
            }
            out.push('.');
        }
    }
    if pos.len().is_multiple_of(2) {
        return None;
    }
    Some(out)
}

/// The `index_bounds` dataflow analysis.
pub struct Bounds<'a> {
    toks: &'a [Token],
    children: &'a [Range<usize>],
}

impl Analysis for Bounds<'_> {
    type State = Facts;

    fn entry_state(&self) -> Facts {
        Facts::default()
    }

    fn transfer(&self, _node: usize, kind: &NodeKind, edge: EdgeKind, state: &Facts) -> Facts {
        let mut f = state.clone();
        match kind {
            NodeKind::Entry | NodeKind::Exit | NodeKind::Join => {}
            NodeKind::Stmt(r) => self.stmt(&mut f, r),
            NodeKind::Branch(r) => {
                let vis = visible(self.toks, r, self.children);
                apply_cond(self.toks, &vis, edge == EdgeKind::True, &mut f);
            }
            NodeKind::ForHead { pat, iter } => self.for_head(&mut f, pat, iter, edge),
            NodeKind::ClosureEntry { open } => self.closure(&mut f, *open),
        }
        f
    }
}

impl Bounds<'_> {
    fn stmt(&self, f: &mut Facts, r: &Range<usize>) {
        let toks = self.toks;
        let vis = visible(toks, r, self.children);
        if vis.is_empty() {
            return;
        }
        let is_let = toks[vis[0]].is("let");
        let eq_pos = top_level_assign(toks, &vis, is_let);

        // ---- kills (always before gens) ----
        if is_let {
            let stop = eq_pos.map(|(k, _)| k).unwrap_or(vis.len()).max(1);
            for &p in &vis[1..stop] {
                if is_plain_ident(&toks[p]) {
                    kill_name(f, &toks[p].text);
                }
            }
        } else if let Some((_, lhs_end)) = eq_pos {
            let lhs = &vis[..lhs_end];
            // `v[i] = x` writes an element, not the length.
            if !lhs.iter().any(|&p| toks[p].kind == TokKind::LBracket) {
                if let Some(&p) =
                    lhs.iter().find(|&&p| is_plain_ident(&toks[p]) || toks[p].is("self"))
                {
                    kill_name(f, &toks[p].text);
                }
            }
        }
        // `&mut X` escapes X.
        for w in vis.windows(3) {
            if toks[w[0]].text == "&" && toks[w[1]].is("mut") && is_plain_ident(&toks[w[2]]) {
                kill_name(f, &toks[w[2]].text);
            }
        }
        // Method calls: non-pure methods kill their receiver's facts.
        for k in 0..vis.len().saturating_sub(2) {
            if toks[vis[k]].text == "."
                && toks[vis[k + 1]].kind == TokKind::Ident
                && toks[vis[k + 2]].kind == TokKind::LParen
                && !PURE.contains(&toks[vis[k + 1]].text.as_str())
                && k > 0
                && toks[vis[k - 1]].kind == TokKind::Ident
            {
                kill_name(f, &toks[vis[k - 1]].text);
            }
        }

        // ---- gens ----
        if is_let {
            self.gen_let(f, &vis);
        }
        // `X.resize(n, _)` / `X.resize_with(n, _)`: new length is n.
        for k in 0..vis.len().saturating_sub(3) {
            if toks[vis[k]].text == "."
                && (toks[vis[k + 1]].is("resize") || toks[vis[k + 1]].is("resize_with"))
                && toks[vis[k + 2]].kind == TokKind::LParen
                && k > 0
                && toks[vis[k - 1]].kind == TokKind::Ident
            {
                let recv = recv_path(toks, &vis, k);
                let arg = first_arg(toks, &vis[k + 3..]);
                if let (Some(recv), Some(t)) = (recv, parse_term(toks, &arg)) {
                    let len = Term::new(format!("len({recv})"), 0);
                    kill_name(f, recv.rsplit('.').next().unwrap_or(&recv));
                    f.add_eq(len, t);
                }
            }
        }
        // `assert!(cond)`: the condition holds below (debug_assert! is
        // compiled out in release, so it contributes nothing).
        if vis.len() > 3
            && toks[vis[0]].is("assert")
            && toks[vis[1]].text == "!"
            && toks[vis[2]].kind == TokKind::LParen
        {
            let inner = paren_interior(toks, &vis[2..]);
            let cond = first_arg(toks, &inner);
            apply_cond(toks, &cond, true, f);
        }
    }

    /// Facts from `let [mut] X [: ty] = RHS;`.
    fn gen_let(&self, f: &mut Facts, vis: &[usize]) {
        let toks = self.toks;
        let mut k = 1;
        if toks.get(vis.get(k).copied().unwrap_or(usize::MAX)).is_some_and(|t| t.is("mut")) {
            k += 1;
        }
        let Some(&xp) = vis.get(k) else { return };
        if !is_plain_ident(&toks[xp]) {
            return;
        }
        let x = toks[xp].text.clone();
        // The next visible token must be `:` or `=` (single-ident pattern).
        match vis.get(k + 1).map(|&p| toks[p].text.as_str()) {
            Some(":") | Some("=") => {}
            _ => return,
        }
        let Some((eq, _)) = top_level_assign(toks, vis, true) else { return };
        let mut rhs = &vis[eq + 1..];
        if let Some(&last) = rhs.last() {
            if toks[last].text == ";" {
                rhs = &rhs[..rhs.len() - 1];
            }
        }
        if rhs.is_empty() {
            return;
        }
        let xt = Term::new(x.clone(), 0);
        let len_x = Term::new(format!("len({x})"), 0);

        // `vec![init; N]`
        if rhs.len() > 3 && toks[rhs[0]].is("vec") && toks[rhs[1]].text == "!" {
            if let Some(semi) = top_level_semi(toks, &rhs[3..]) {
                let close = rhs.len() - 1;
                if let Some(t) = parse_term(toks, &rhs[3 + semi + 1..close]) {
                    f.add_eq(len_x, t);
                }
            }
            return;
        }
        // `(lo..hi).<pure chain>.collect()`
        if toks[rhs[0]].kind == TokKind::LParen {
            if let Some((lo, hi, chain_ok)) = range_collect(toks, rhs) {
                if chain_ok {
                    if let (Some(l), Some(h)) = (parse_term(toks, &lo), parse_term(toks, &hi)) {
                        if l.base.is_empty() {
                            f.add_eq(len_x, Term::new(h.base, h.off - l.off));
                        }
                    }
                }
                return;
            }
        }
        // `P.to_vec()` / `P.to_owned()` / `P.clone()`: same length.
        if rhs.len() >= 4 {
            let n = rhs.len();
            if toks[rhs[n - 4]].text == "."
                && toks[rhs[n - 2]].kind == TokKind::LParen
                && toks[rhs[n - 1]].kind == TokKind::RParen
            {
                let m = toks[rhs[n - 3]].text.as_str();
                if matches!(m, "to_vec" | "to_owned" | "clone") {
                    if let Some(p) = path_text(toks, &rhs[..n - 4]) {
                        f.add_eq(len_x, Term::new(format!("len({p})"), 0));
                    }
                }
            }
        }
        // `A.min(B)` / `A.max(B)` / `A.clamp(lo, hi)`
        if let Some((m, recv, args)) = last_call(toks, rhs) {
            let rt = parse_term(toks, &recv);
            match m.as_str() {
                "min" => {
                    if let Some(r) = rt {
                        f.add_le(xt.clone(), r);
                    }
                    if let Some(a) = args.first().and_then(|a| parse_term(toks, a)) {
                        f.add_le(xt.clone(), a);
                    }
                    return;
                }
                "max" => {
                    if let Some(r) = rt {
                        f.add_le(r, xt.clone());
                    }
                    if let Some(a) = args.first().and_then(|a| parse_term(toks, a)) {
                        f.add_le(a, xt.clone());
                    }
                    return;
                }
                "clamp" => {
                    if let Some(lo) = args.first().and_then(|a| parse_term(toks, a)) {
                        f.add_le(lo, xt.clone());
                    }
                    if let Some(hi) = args.get(1).and_then(|a| parse_term(toks, a)) {
                        f.add_le(xt.clone(), hi);
                    }
                    return;
                }
                _ => {}
            }
        }
        // General: `let x = <term>` with x not recursive.
        if let Some(t) = parse_term(toks, rhs) {
            if !mentions(&t.base, &x) {
                f.add_eq(xt, t);
            }
        }
    }

    fn for_head(&self, f: &mut Facts, pat: &Range<usize>, iter: &Range<usize>, edge: EdgeKind) {
        let toks = self.toks;
        let pat_idents: Vec<String> = (pat.clone())
            .filter(|&p| is_plain_ident(&toks[p]))
            .map(|p| toks[p].text.clone())
            .collect();
        for name in &pat_idents {
            kill_name(f, name);
        }
        if edge != EdgeKind::True {
            return;
        }
        let vis = visible(toks, iter, self.children);
        let vis = strip_parens(toks, &vis);
        // `for i in lo..hi`
        let mut nest = 0i32;
        for (k, &p) in vis.iter().enumerate() {
            nest += nest_delta(toks[p].kind);
            if nest == 0 && toks[p].text == ".." {
                if pat_idents.len() != 1 {
                    return;
                }
                let i = Term::new(pat_idents[0].clone(), 0);
                let inclusive = vis.get(k + 1).is_some_and(|&q| toks[q].text == "=");
                let hi_start = if inclusive { k + 2 } else { k + 1 };
                if let Some(lo) = parse_term(toks, &vis[..k]) {
                    f.add_le(lo, i.clone());
                }
                if let Some(hi) = parse_term(toks, &vis[hi_start..]) {
                    if inclusive {
                        f.add_le(i, hi);
                    } else {
                        f.add_lt(i, hi);
                    }
                }
                return;
            }
        }
        // `for (i, x) in P.<pure chain>.enumerate()`
        if let Some(base) = enumerate_base(toks, vis) {
            let Some(i) = pat_idents.first() else { return };
            let it = Term::new(i.clone(), 0);
            f.add_le(Term::konst(0), it.clone());
            f.add_lt(it, Term::new(format!("len({base})"), 0));
        }
    }

    /// Facts visible inside a closure body, recovered by walking
    /// backward from its `{`: parameter kills, then range/enumerate
    /// facts when the closure is the argument of a chain adapter.
    fn closure(&self, f: &mut Facts, open: usize) {
        let toks = self.toks;
        if open == 0 || toks[open - 1].text != "|" {
            return;
        }
        // Opening `|` of the parameter list.
        let closing = open - 1;
        let mut q = closing;
        let mut params: Vec<String> = Vec::new();
        loop {
            if q == 0 || closing - q > 32 {
                return;
            }
            q -= 1;
            if toks[q].text == "|" {
                break;
            }
            if is_plain_ident(&toks[q]) {
                params.push(toks[q].text.clone());
            }
        }
        params.reverse();
        for p in &params {
            kill_name(f, p);
        }
        let mut at = q;
        if at > 0 && toks[at - 1].is("move") {
            at -= 1;
        }
        if at < 3 || toks[at - 1].kind != TokKind::LParen {
            return;
        }
        let m = &toks[at - 2];
        if !VALUE_METHODS.contains(&m.text.as_str()) || toks[at - 3].text != "." {
            return;
        }
        // Walk the chain backward from the `.` before the adapter.
        let mut dot = at - 3;
        let mut groups: Vec<String> = Vec::new();
        loop {
            if dot == 0 {
                return;
            }
            let b = dot - 1;
            match toks[b].kind {
                TokKind::RParen => {
                    let Some(lp) = match_back_paren(toks, b) else { return };
                    if lp >= 2 && toks[lp - 1].kind == TokKind::Ident && toks[lp - 2].text == "." {
                        groups.push(toks[lp - 1].text.clone());
                        dot = lp - 2;
                        continue;
                    }
                    if lp >= 1 && toks[lp - 1].kind == TokKind::Ident {
                        return; // `foo(..)` head: unknown producer
                    }
                    // `(lo..hi)` head.
                    let inner: Vec<usize> = (lp + 1..b).collect();
                    let mut nest = 0i32;
                    for (k, &p) in inner.iter().enumerate() {
                        nest += nest_delta(toks[p].kind);
                        if nest == 0 && toks[p].text == ".." {
                            if params.len() != 1
                                || !groups.iter().all(|g| ITER_PURE.contains(&g.as_str()))
                            {
                                return;
                            }
                            let it = Term::new(params[0].clone(), 0);
                            let inclusive = inner.get(k + 1).is_some_and(|&x| toks[x].text == "=");
                            let hs = if inclusive { k + 2 } else { k + 1 };
                            if let Some(lo) = parse_term(toks, &inner[..k]) {
                                f.add_le(lo, it.clone());
                            }
                            if let Some(hi) = parse_term(toks, &inner[hs..]) {
                                if inclusive {
                                    f.add_le(it, hi);
                                } else {
                                    f.add_lt(it, hi);
                                }
                            }
                            return;
                        }
                    }
                    return;
                }
                TokKind::Ident => {
                    // Path head: `P.<groups>.adapter(|..|`.
                    let mut s = b;
                    while s >= 2 && toks[s - 1].text == "." && toks[s - 2].kind == TokKind::Ident {
                        s -= 2;
                    }
                    let pos: Vec<usize> = (s..dot).collect();
                    let Some(base) = path_text(toks, &pos) else { return };
                    let mut saw_enum = false;
                    for g in &groups {
                        if g == "enumerate" {
                            saw_enum = true;
                        } else if !ITER_PURE.contains(&g.as_str()) {
                            return;
                        }
                    }
                    if saw_enum {
                        let Some(i) = params.first() else { return };
                        let it = Term::new(i.clone(), 0);
                        f.add_le(Term::konst(0), it.clone());
                        f.add_lt(it, Term::new(format!("len({base})"), 0));
                    }
                    return;
                }
                _ => return,
            }
        }
    }
}

/// Dotted receiver path ending just before the `.` at `vis[dot_k]`.
fn recv_path(toks: &[Token], vis: &[usize], dot_k: usize) -> Option<String> {
    if dot_k == 0 || toks[vis[dot_k - 1]].kind != TokKind::Ident {
        return None;
    }
    let mut s = dot_k - 1;
    while s >= 2 && toks[vis[s - 1]].text == "." && toks[vis[s - 2]].kind == TokKind::Ident {
        s -= 2;
    }
    path_text(toks, &vis[s..dot_k])
}

/// Matching `(` for the `)` at `close`, scanning raw tokens backward.
fn match_back_paren(toks: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        match toks[i].kind {
            TokKind::RParen => depth += 1,
            TokKind::LParen => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// First top-level assignment in `vis`: returns `(index of '=' in vis,
/// exclusive end of the LHS)`. Skips `==`, `!=`, `<=`, `>=`, `..=`
/// (`=>` is fused by the lexer) and detects compound ops. `in_let`
/// resolves the `> =` ambiguity: in `let x: Vec<u32> = …` the `>`
/// closes a generic type, not a comparison.
fn top_level_assign(toks: &[Token], vis: &[usize], in_let: bool) -> Option<(usize, usize)> {
    let mut nest = 0i32;
    for (k, &p) in vis.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        if nest != 0 || toks[p].text != "=" {
            continue;
        }
        if vis.get(k + 1).is_some_and(|&q| toks[q].text == "=") {
            return None; // `==` comparison statement
        }
        let prev = if k > 0 { toks[vis[k - 1]].text.as_str() } else { "" };
        match prev {
            "=" | "!" | ".." => return None,
            "<" | ">" => {
                // Shift-assign (`<<=`, `>>=`), a generic type close in
                // a `let`, or a stray comparison.
                if k >= 2 && toks[vis[k - 2]].text == prev {
                    return Some((k, k - 2));
                }
                if in_let {
                    return Some((k, k));
                }
                return None;
            }
            "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" => return Some((k, k - 1)),
            _ => return Some((k, k)),
        }
    }
    None
}

/// Position (relative) of the first top-level `;` in `pos`.
fn top_level_semi(toks: &[Token], pos: &[usize]) -> Option<usize> {
    let mut nest = 0i32;
    for (k, &p) in pos.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        if nest == 0 && toks[p].text == ";" {
            return Some(k);
        }
    }
    None
}

/// Interior of the paren group starting at `pos[0]` (which must be `(`).
fn paren_interior(toks: &[Token], pos: &[usize]) -> Vec<usize> {
    let mut nest = 0i32;
    let mut out = Vec::new();
    for (k, &p) in pos.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        if k == 0 {
            continue;
        }
        if nest == 0 && toks[p].kind == TokKind::RParen {
            break;
        }
        out.push(p);
    }
    out
}

/// Everything before the first top-level `,`.
fn first_arg(toks: &[Token], pos: &[usize]) -> Vec<usize> {
    let mut nest = 0i32;
    let mut out = Vec::new();
    for &p in pos {
        nest += nest_delta(toks[p].kind);
        if nest == 0 && toks[p].text == "," {
            break;
        }
        if nest < 0 {
            break;
        }
        out.push(p);
    }
    out
}

/// If `rhs` is `(lo..hi).<chain>()…`, return the lo / hi position lists
/// and whether the chain is length-preserving and ends in `collect`.
fn range_collect(toks: &[Token], rhs: &[usize]) -> Option<(Vec<usize>, Vec<usize>, bool)> {
    let mut nest = 0i32;
    let mut close = None;
    for (k, &p) in rhs.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        if nest == 0 {
            close = Some(k);
            break;
        }
    }
    let close = close?;
    let inner = &rhs[1..close];
    let mut nest = 0i32;
    let mut dd = None;
    for (k, &p) in inner.iter().enumerate() {
        nest += nest_delta(toks[p].kind);
        if nest == 0 && toks[p].text == ".." {
            dd = Some(k);
            break;
        }
    }
    let dd = dd?;
    let lo: Vec<usize> = inner[..dd].to_vec();
    let hi: Vec<usize> = inner[dd + 1..].to_vec();
    if lo.is_empty() || hi.is_empty() {
        return None;
    }
    // Walk the chain: `. ident [::<..>] ( .. )` groups.
    let mut k = close + 1;
    let mut last = String::new();
    let mut ok = true;
    while k < rhs.len() {
        if toks[rhs[k]].text != "." {
            break;
        }
        let Some(&m) = rhs.get(k + 1) else { break };
        if toks[m].kind != TokKind::Ident {
            break;
        }
        last = toks[m].text.clone();
        if !ITER_PURE.contains(&last.as_str()) && last != "collect" && last != "enumerate" {
            ok = false;
        }
        // Skip optional turbofish, then the call parens.
        let mut j = k + 2;
        while j < rhs.len() && toks[rhs[j]].kind != TokKind::LParen {
            if toks[rhs[j]].text == "." || toks[rhs[j]].text == ";" {
                return Some((lo, hi, false));
            }
            j += 1;
        }
        if j >= rhs.len() {
            break;
        }
        let mut nest = 0i32;
        while j < rhs.len() {
            nest += nest_delta(toks[rhs[j]].kind);
            j += 1;
            if nest == 0 {
                break;
            }
        }
        k = j;
    }
    Some((lo, hi, ok && last == "collect"))
}

/// If `rhs` ends with a call `recv.m(args)`, return `(m, recv, args)`.
fn last_call(toks: &[Token], rhs: &[usize]) -> Option<(String, Vec<usize>, Vec<Vec<usize>>)> {
    let n = rhs.len();
    if n < 4 || toks[rhs[n - 1]].kind != TokKind::RParen {
        return None;
    }
    // Matching `(` within the position list.
    let mut depth = 0i32;
    let mut lp = None;
    for k in (0..n).rev() {
        match toks[rhs[k]].kind {
            TokKind::RParen => depth += 1,
            TokKind::LParen => {
                depth -= 1;
                if depth == 0 {
                    lp = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }
    let lp = lp?;
    if lp < 2 || toks[rhs[lp - 1]].kind != TokKind::Ident || toks[rhs[lp - 2]].text != "." {
        return None;
    }
    let m = toks[rhs[lp - 1]].text.clone();
    let recv = rhs[..lp - 2].to_vec();
    let inner = &rhs[lp + 1..n - 1];
    let mut args = Vec::new();
    let mut cur = Vec::new();
    let mut nest = 0i32;
    for &p in inner {
        if nest == 0 && toks[p].text == "," {
            args.push(std::mem::take(&mut cur));
            continue;
        }
        nest += nest_delta(toks[p].kind);
        cur.push(p);
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    Some((m, recv, args))
}

/// If `vis` is `P.<pure chain>.enumerate()[.<pure>]`, return `P`.
fn enumerate_base(toks: &[Token], vis: &[usize]) -> Option<String> {
    // Leading path: ident, then `.`+ident pairs that are fields (not
    // calls — an ident followed by `(` starts the chain instead).
    if vis.is_empty() || toks[vis[0]].kind != TokKind::Ident {
        return None;
    }
    let mut k = 1;
    while k + 1 < vis.len()
        && toks[vis[k]].text == "."
        && is_plain_ident(&toks[vis[k + 1]])
        && !vis.get(k + 2).is_some_and(|&p| toks[p].kind == TokKind::LParen)
    {
        k += 2;
    }
    let base = path_text(toks, &vis[..k])?;
    // Chain groups.
    let mut saw_enum = false;
    while k < vis.len() {
        if toks[vis[k]].text != "." {
            return None;
        }
        let m = vis.get(k + 1)?;
        if toks[*m].kind != TokKind::Ident {
            return None;
        }
        let name = toks[*m].text.as_str();
        if name == "enumerate" {
            saw_enum = true;
        } else if !ITER_PURE.contains(&name) {
            return None;
        }
        let mut j = k + 2;
        if vis.get(j).is_none_or(|&p| toks[p].kind != TokKind::LParen) {
            return None;
        }
        let mut nest = 0i32;
        while j < vis.len() {
            nest += nest_delta(toks[vis[j]].kind);
            j += 1;
            if nest == 0 {
                break;
            }
        }
        k = j;
    }
    saw_enum.then_some(base)
}

/// Apply a branch condition's facts for the taken (`hold = true`) or
/// refuted polarity.
fn apply_cond(toks: &[Token], pos: &[usize], hold: bool, f: &mut Facts) {
    let pos = strip_parens(toks, pos);
    if pos.is_empty() {
        return;
    }
    if toks[pos[0]].text == "!" && pos.get(1).is_some_and(|&p| toks[p].kind == TokKind::LParen) {
        apply_cond(toks, &pos[1..], !hold, f);
        return;
    }
    // Split on top-level `&&` / `||`.
    let mut nest = 0i32;
    let mut ands = Vec::new();
    let mut ors = Vec::new();
    let mut k = 0;
    while k < pos.len() {
        nest += nest_delta(toks[pos[k]].kind);
        if nest == 0 && k + 1 < pos.len() {
            let (a, b) = (&toks[pos[k]].text, &toks[pos[k + 1]].text);
            if a == "&" && b == "&" {
                ands.push(k);
                k += 2;
                continue;
            }
            if a == "|" && b == "|" {
                ors.push(k);
                k += 2;
                continue;
            }
        }
        k += 1;
    }
    if !ands.is_empty() && !ors.is_empty() {
        return;
    }
    if !ands.is_empty() {
        if hold {
            let mut start = 0;
            for &cut in ands.iter().chain(std::iter::once(&pos.len())) {
                apply_cond(toks, &pos[start..cut.min(pos.len())], true, f);
                start = cut + 2;
            }
        }
        return;
    }
    if !ors.is_empty() {
        if !hold {
            let mut start = 0;
            for &cut in ors.iter().chain(std::iter::once(&pos.len())) {
                apply_cond(toks, &pos[start..cut.min(pos.len())], false, f);
                start = cut + 2;
            }
        }
        return;
    }
    // Single comparison.
    #[derive(PartialEq)]
    enum Op {
        Lt,
        Le,
        Gt,
        Ge,
        Equal,
        Ne,
    }
    let mut nest = 0i32;
    let mut found: Option<(usize, usize, Op)> = None; // (start, width, op)
    let mut k = 0;
    while k < pos.len() {
        nest += nest_delta(toks[pos[k]].kind);
        let t = toks[pos[k]].text.as_str();
        if nest == 0 && toks[pos[k]].kind == TokKind::Punct {
            // Skip turbofish generics: `::` `<` … `>`.
            if t == "::" && pos.get(k + 1).is_some_and(|&p| toks[p].text == "<") {
                let mut depth = 0i32;
                let mut j = k + 1;
                while j < pos.len() {
                    match toks[pos[j]].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = j;
                continue;
            }
            let two = pos.get(k + 1).map(|&p| toks[p].text.as_str());
            let op = match (t, two) {
                ("<", Some("=")) => Some((2, Op::Le)),
                ("<", _) => Some((1, Op::Lt)),
                (">", Some("=")) => Some((2, Op::Ge)),
                (">", _) => Some((1, Op::Gt)),
                ("=", Some("=")) => Some((2, Op::Equal)),
                ("!", Some("=")) => Some((2, Op::Ne)),
                _ => None,
            };
            if let Some((w, op)) = op {
                if found.is_some() {
                    return; // ambiguous: multiple comparisons
                }
                found = Some((k, w, op));
                k += w;
                continue;
            }
        }
        k += 1;
    }
    let Some((k, w, op)) = found else { return };
    let (Some(a), Some(b)) = (parse_term(toks, &pos[..k]), parse_term(toks, &pos[k + w..])) else {
        return;
    };
    match (op, hold) {
        (Op::Lt, true) => f.add_lt(a, b),
        (Op::Lt, false) => f.add_le(b, a),
        (Op::Le, true) => f.add_le(a, b),
        (Op::Le, false) => f.add_lt(b, a),
        (Op::Gt, true) => f.add_lt(b, a),
        (Op::Gt, false) => f.add_le(a, b),
        (Op::Ge, true) => f.add_le(b, a),
        (Op::Ge, false) => f.add_lt(a, b),
        (Op::Equal, true) | (Op::Ne, false) => f.add_eq(a, b),
        (Op::Equal, false) | (Op::Ne, true) => {}
    }
}

/// Upper bounds of `a` derivable from one recorded fact: `(m, strict)`
/// with `a <= m` (or `a < m` when strict).
fn upper_bounds(f: &Facts, a: &Term) -> Vec<(Term, bool)> {
    let mut out = Vec::new();
    for (x, y) in &f.le {
        if x.base == a.base {
            out.push((Term::new(y.base.clone(), y.off + (a.off - x.off)), false));
        }
    }
    for (x, y) in &f.lt {
        if x.base == a.base {
            out.push((Term::new(y.base.clone(), y.off + (a.off - x.off)), true));
        }
    }
    out
}

/// Does a bound `m` (strict or not) of `a` discharge the goal
/// `a < b` / `a <= b`?
fn closes(m: &Term, strict_bound: bool, b: &Term, strict_goal: bool) -> bool {
    if m.base != b.base {
        return false;
    }
    if strict_goal {
        if strict_bound {
            m.off <= b.off
        } else {
            m.off < b.off
        }
    } else if strict_bound {
        m.off <= b.off + 1
    } else {
        m.off <= b.off
    }
}

/// Prove `a < b` (`strict`) or `a <= b` from the facts, chasing at most
/// two recorded bounds.
pub fn entails(f: &Facts, a: &Term, b: &Term, strict: bool) -> bool {
    if a.base == b.base {
        if strict && a.off < b.off {
            return true;
        }
        if !strict && a.off <= b.off {
            return true;
        }
    }
    let hops = upper_bounds(f, a);
    for (m, s) in &hops {
        if closes(m, *s, b, strict) {
            return true;
        }
    }
    for (m, s1) in &hops {
        for (m2, s2) in upper_bounds(f, m) {
            if closes(&m2, *s1 || s2, b, strict) {
                return true;
            }
        }
    }
    false
}

/// One index site and the prover's verdict on it.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// 1-based line of the `[`.
    pub line: usize,
    /// Rendered site, identical to the `panic_path` sink's `what`.
    pub what: String,
    /// Every obligation discharged.
    pub proven: bool,
    /// The first unproven obligation, human-readable.
    pub note: String,
    /// The first unproven obligation in structured form, when it is a
    /// plain order goal `a < b` / `a <= b`: `(a, b, strict)`. This is
    /// what the interprocedural pass lifts to callers as a
    /// precondition; `None` means the failure is not expressible as
    /// one comparison (too-complex index, non-ident receiver) and the
    /// site can only be reported where it stands.
    pub goal: Option<(Term, Term, bool)>,
}

/// Can `goal` be stated purely over `params`? True when every
/// non-constant term base is a parameter `p` or a parameter length
/// `len(p)` — exactly the shapes a caller can substitute actuals into.
pub fn goal_liftable(goal: &(Term, Term, bool), params: &[String]) -> bool {
    let ok = |t: &Term| {
        t.base.is_empty() || params.iter().any(|p| t.base == *p || t.base == format!("len({p})"))
    };
    ok(&goal.0) && ok(&goal.1)
}

/// Substitute caller-side terms for callee parameters inside `t`.
/// `map` sends a parameter name to the term of the actual argument.
/// Returns `None` when the result is not representable (e.g. `len(p)`
/// with an offset actual — `len(x + 1)` is meaningless).
pub fn subst(t: &Term, map: &std::collections::BTreeMap<String, Term>) -> Option<Term> {
    if t.base.is_empty() {
        return Some(t.clone());
    }
    if let Some(actual) = map.get(&t.base) {
        return Some(Term::new(actual.base.clone(), actual.off + t.off));
    }
    if let Some(p) = t.base.strip_prefix("len(").and_then(|s| s.strip_suffix(')')) {
        if let Some(actual) = map.get(p) {
            if actual.off != 0 || actual.base.is_empty() {
                return None;
            }
            return Some(Term::new(format!("len({})", actual.base), t.off));
        }
    }
    // No parameter involved: a caller-independent base survives as-is.
    let involves_param = map.keys().any(|p| mentions(&t.base, p));
    if involves_param {
        None
    } else {
        Some(t.clone())
    }
}

/// Solve the bounds dataflow once over one function body and return
/// the facts holding at each wanted token position (call sites the
/// interprocedural pass wants to discharge preconditions at). A
/// position the CFG never covers, or whose node diverged, is absent —
/// callers should treat that as "no facts".
pub fn facts_at(
    toks: &[Token],
    body: Range<usize>,
    children: &[Range<usize>],
    wanted: &[usize],
) -> std::collections::BTreeMap<usize, Facts> {
    let mut out = std::collections::BTreeMap::new();
    if wanted.is_empty() {
        return out;
    }
    let cfg = Cfg::build(toks, body, children);
    let analysis = Bounds { toks, children };
    let states = solve(&cfg, &analysis);
    for (n, kind) in cfg.nodes.iter().enumerate() {
        let Some(state) = &states[n] else { continue };
        let range = match kind {
            NodeKind::Stmt(r) | NodeKind::Branch(r) => r.clone(),
            NodeKind::ForHead { iter, .. } => iter.clone(),
            _ => continue,
        };
        for &w in wanted {
            if range.contains(&w) && !out.contains_key(&w) {
                out.insert(w, state.clone());
            }
        }
    }
    out
}

/// Nested-fn body ranges inside `functions[me]`, for CFG construction.
pub fn child_ranges(functions: &[Function], me: usize) -> Vec<Range<usize>> {
    let mine = &functions[me].body;
    functions
        .iter()
        .enumerate()
        .filter(|(k, g)| *k != me && g.body.start >= mine.start && g.body.end <= mine.end)
        .map(|(_, g)| g.body.clone())
        .collect()
}

/// Run the bounds analysis over one function body and judge every
/// index site reachable from its entry.
pub fn check_function(
    toks: &[Token],
    body: Range<usize>,
    children: &[Range<usize>],
) -> Vec<IndexSite> {
    let cfg = Cfg::build(toks, body.clone(), children);
    let analysis = Bounds { toks, children };
    let states = solve(&cfg, &analysis);
    let mut out: Vec<IndexSite> = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for (n, kind) in cfg.nodes.iter().enumerate() {
        let Some(state) = &states[n] else { continue };
        let positions: Vec<usize> = match kind {
            NodeKind::Stmt(r) | NodeKind::Branch(r) => visible(toks, r, children),
            NodeKind::ForHead { iter, .. } => visible(toks, iter, children),
            _ => continue,
        };
        for &p in &positions {
            if toks[p].kind != TokKind::LBracket || !seen.insert(p) {
                continue;
            }
            let Some(sink) = index_sink(toks, p, body.end) else { continue };
            let (proven, note, goal) = prove_site(toks, p, state);
            out.push(IndexSite { line: sink.line, what: sink.what, proven, note, goal });
        }
    }
    out.sort_by(|a, b| (a.line, &a.what).cmp(&(b.line, &b.what)));
    out
}

/// Discharge the obligations of the index expression whose `[` is at
/// `p`, against the facts holding at its statement entry.
fn prove_site(toks: &[Token], p: usize, f: &Facts) -> (bool, String, Option<(Term, Term, bool)>) {
    if p == 0 || toks[p - 1].kind != TokKind::Ident {
        return (false, "receiver is not a simple binding".into(), None);
    }
    let mut s = p - 1;
    while s >= 2 && toks[s - 1].text == "." && toks[s - 2].kind == TokKind::Ident {
        s -= 2;
    }
    let recv: String = toks[s..p].iter().map(|t| t.text.as_str()).collect();
    let len_t = Term::new(format!("len({recv})"), 0);
    // Matching `]`.
    let mut depth = 0i32;
    let mut close = p;
    for (i, t) in toks.iter().enumerate().skip(p) {
        match t.kind {
            TokKind::LBracket => depth += 1,
            TokKind::RBracket => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body: Vec<usize> = (p + 1..close).collect();
    if body.is_empty() {
        return (false, "empty index".into(), None);
    }
    // Range slice `v[lo..hi]`.
    let mut nest = 0i32;
    for (k, &q) in body.iter().enumerate() {
        nest += nest_delta(toks[q].kind);
        if nest == 0 && toks[q].text == ".." {
            let inclusive = body.get(k + 1).is_some_and(|&x| toks[x].text == "=");
            let hs = if inclusive { k + 2 } else { k + 1 };
            let lo = &body[..k];
            let hi = &body[hs..];
            let ht = if hi.is_empty() {
                None
            } else {
                match parse_term(toks, hi) {
                    Some(t) => Some(t),
                    None => return (false, "slice end too complex".into(), None),
                }
            };
            if let Some(ht) = &ht {
                if !entails(f, ht, &len_t, inclusive) {
                    let rel = if inclusive { "<" } else { "<=" };
                    return (
                        false,
                        format!("cannot prove {} {rel} {}", ht.show(), len_t.show()),
                        Some((ht.clone(), len_t, inclusive)),
                    );
                }
            }
            if !lo.is_empty() {
                let Some(lt) = parse_term(toks, lo) else {
                    return (false, "slice start too complex".into(), None);
                };
                let hi_bound = ht.as_ref().unwrap_or(&len_t);
                if !entails(f, &lt, hi_bound, false) {
                    return (
                        false,
                        format!("cannot prove {} <= {}", lt.show(), hi_bound.show()),
                        Some((lt, hi_bound.clone(), false)),
                    );
                }
            }
            return (true, String::new(), None);
        }
    }
    // Row-major `m[i * n + j]` with `len(m) == n*n`.
    if body.len() == 5
        && is_plain_ident(&toks[body[0]])
        && toks[body[1]].text == "*"
        && is_plain_ident(&toks[body[2]])
        && toks[body[3]].text == "+"
        && is_plain_ident(&toks[body[4]])
    {
        let i = Term::new(toks[body[0]].text.clone(), 0);
        let n = Term::new(toks[body[2]].text.clone(), 0);
        let j = Term::new(toks[body[4]].text.clone(), 0);
        let prod = Term::new(format!("{}*{}", n.base, n.base), 0);
        if entails(f, &prod, &len_t, false)
            && entails(f, &len_t, &prod, false)
            && entails(f, &i, &n, true)
            && entails(f, &j, &n, true)
        {
            return (true, String::new(), None);
        }
        return (
            false,
            format!(
                "cannot prove {} < {} with {} == {}",
                Term::new(format!("{}*{}+{}", i.base, n.base, j.base), 0).show(),
                len_t.show(),
                len_t.show(),
                prod.show()
            ),
            None,
        );
    }
    // General single-term index.
    let Some(t) = parse_term(toks, &body) else {
        return (false, "index expression too complex".into(), None);
    };
    if !entails(f, &t, &len_t, true) {
        return (
            false,
            format!("cannot prove {} < {}", t.show(), len_t.show()),
            Some((t, len_t, true)),
        );
    }
    if t.off < 0
        && !t.base.is_empty()
        && !entails(f, &Term::konst(-t.off), &Term::new(t.base.clone(), 0), false)
    {
        return (
            false,
            format!("cannot prove {} >= {} (no-underflow)", t.base, -t.off),
            Some((Term::konst(-t.off), Term::new(t.base.clone(), 0), false)),
        );
    }
    (true, String::new(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;
    use crate::parse::parse_file;
    use crate::source::SourceFile;

    fn sites(src: &str) -> Vec<IndexSite> {
        let f = SourceFile::parse(src);
        let toks = tokenize(&f);
        let p = parse_file(&f, &toks);
        let children = child_ranges(&p.functions, 0);
        check_function(&toks, p.functions[0].body.clone(), &children)
    }

    fn all_proven(src: &str) {
        let s = sites(src);
        assert!(!s.is_empty(), "no sites found");
        for site in &s {
            assert!(site.proven, "line {}: {} — {}", site.line, site.what, site.note);
        }
    }

    fn some_unproven(src: &str) {
        let s = sites(src);
        assert!(s.iter().any(|s| !s.proven), "expected an unproven site: {s:?}");
    }

    #[test]
    fn range_loop_over_len_is_proven() {
        all_proven(
            "fn f(xs: &[u32]) -> u32 { let mut t = 0; for i in 0..xs.len() { t += xs[i]; } t }\n",
        );
    }

    #[test]
    fn len_binding_then_guard_is_proven() {
        all_proven(
            "fn f(xs: &[u32], i: usize) -> u32 { let n = xs.len(); if i < n { return xs[i]; } 0 }\n",
        );
    }

    #[test]
    fn vec_macro_and_guard_is_proven() {
        // The aggregate-kernel shape: counts sized by `domain`, index
        // guarded by `i < domain` inside a scan closure.
        all_proven(
            "fn f(keys: &[u32], domain: usize) { let mut acc = vec![0u64; domain]; \
             keys.iter().for_each(|k| { let i = k.index(); if i < domain { acc[i] += 1; } }); }\n",
        );
    }

    #[test]
    fn enumerate_slice_start_is_proven() {
        // The coreport pairing shape: `&distinct[a + 1..]`.
        all_proven(
            "fn f(distinct: &[u32]) { for (a, sa) in distinct.iter().enumerate() { \
             for sb in &distinct[a + 1..] { use_pair(sa, sb); } } }\n",
        );
    }

    #[test]
    fn row_major_collect_is_proven() {
        all_proven(
            "fn f(n: usize, i: usize, j: usize) { \
             let pairs: Vec<u32> = (0..n * n).map(|_| 0).collect(); \
             for i in 0..n { for j in 0..n { touch(pairs[i * n + j]); } } }\n",
        );
    }

    #[test]
    fn par_range_closure_offsets_are_proven() {
        // The delay-kernel shape: offsets has n + 1 slots, s ranges 0..n.
        all_proven(
            "fn f(n: usize) { let offsets = vec![0usize; n + 1]; \
             (0..n).into_par_iter().map(|s| { let lo = offsets[s]; let hi = offsets[s + 1]; hi - lo }).sum::<usize>(); }\n",
        );
    }

    #[test]
    fn resize_with_negated_guard_join_is_proven() {
        // The exec merge shape: grow self to other's length, then index
        // by the enumerate counter.
        all_proven(
            "fn f(a: &mut Vec<u32>, other: Vec<u32>) { \
             if a.len() < other.len() { a.resize(other.len(), 0); } \
             for (i, v) in other.into_iter().enumerate() { a[i] += v; } }\n",
        );
    }

    #[test]
    fn prefix_sum_back_reference_is_proven() {
        // The CSR index shape: `offsets[i - 1]` with i from 1..len.
        all_proven(
            "fn f(offsets: &mut Vec<usize>) { for i in 1..offsets.len() { \
             offsets[i] += offsets[i - 1]; } }\n",
        );
    }

    #[test]
    fn method_key_guard_is_proven() {
        // The followreport shape: `slot[s.index()]` under an if guard.
        all_proven(
            "fn f(srcs: &[K], n_sources: usize) { let mut slot = vec![0u32; n_sources]; \
             for (i, s) in srcs.iter().enumerate() { if s.index() < n_sources { \
             slot[s.index()] = i as u32; } } }\n",
        );
    }

    #[test]
    fn off_by_one_is_not_proven() {
        some_unproven("fn f(xs: &[u32]) { for i in 0..xs.len() { touch(xs[i + 1]); } }\n");
    }

    #[test]
    fn unguarded_index_is_not_proven() {
        some_unproven("fn f(xs: &[u32], k: usize) -> u32 { xs[k] }\n");
    }

    #[test]
    fn push_invalidates_length_facts() {
        some_unproven(
            "fn f(v: &mut Vec<u32>, i: usize) { let n = v.len(); if i < n { v.push(0); \
             touch(v[i]); } }\n",
        );
    }

    #[test]
    fn reassignment_kills_the_guard() {
        some_unproven(
            "fn f(v: &[u32], mut i: usize) { if i < v.len() { i = next(); touch(v[i]); } }\n",
        );
    }

    #[test]
    fn zero_start_range_needs_no_underflow_but_back_ref_does() {
        some_unproven("fn f(v: &[u32]) { for i in 0..v.len() { touch(v[i - 1]); } }\n");
    }

    #[test]
    fn else_branch_gets_negated_condition() {
        all_proven("fn f(v: &[u32], i: usize) -> u32 { if i >= v.len() { 0 } else { v[i] } }\n");
    }

    #[test]
    fn early_continue_keeps_negation() {
        all_proven(
            "fn f(v: &[u32], n: usize) { for i in 0..n { if i >= v.len() { continue; } \
             touch(v[i]); } }\n",
        );
    }

    #[test]
    fn min_binding_bounds_the_index() {
        all_proven(
            "fn f(v: &[u32], k: usize) -> u32 { if v.is_empty() { return 0; } \
             let i = k.min(v.len() - 1); v[i] }\n",
        );
    }

    #[test]
    fn assert_establishes_facts() {
        all_proven("fn f(v: &[u32], i: usize) -> u32 { assert!(i < v.len()); v[i] }\n");
    }

    #[test]
    fn debug_assert_is_ignored() {
        some_unproven("fn f(v: &[u32], i: usize) -> u32 { debug_assert!(i < v.len()); v[i] }\n");
    }

    #[test]
    fn slice_to_len_is_proven() {
        all_proven(
            "fn f(v: &[u32], k: usize) { let n = v.len(); let k = k.min(n); touch(&v[..k]); \
             touch(&v[k..]); }\n",
        );
    }

    #[test]
    fn term_parsing_handles_products_and_casts() {
        let f = SourceFile::parse("fn f() { n * n + j; }\n");
        let toks = tokenize(&f);
        let pos: Vec<usize> = (5..8).collect(); // n * n
        assert_eq!(parse_term(&toks, &pos), Some(Term::new("n*n", 0)));
        let full: Vec<usize> = (5..10).collect(); // n * n + j: mixed, unparseable
        assert_eq!(parse_term(&toks, &full), None);
    }
}
