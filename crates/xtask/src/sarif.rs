//! SARIF 2.1.0 export and a structural validator.
//!
//! `to_sarif` renders a diagnostic batch as a minimal-but-valid SARIF
//! log: one run, one driver, one `reportingDescriptor` per distinct
//! rule, one `result` per diagnostic with a physical location. Notes
//! are folded into the message text (SARIF has richer machinery for
//! related locations; the analyzer's call paths read fine as text).
//!
//! `validate` is the consumer-side contract, round-tripped in CI and in
//! the golden tests through [`crate::json`]: version pinned to 2.1.0,
//! declared rules unique, every `result.ruleId` declared, non-empty
//! artifact URIs, 1-based `startLine`s, and a known `level`. It exists
//! so a refactor of the writer cannot silently ship logs that GitHub's
//! code-scanning ingest would reject.

use crate::diag::{json_string, Diagnostic};
use crate::json::Json;

/// The SARIF 2.1.0 schema URI.
const SCHEMA: &str = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Render a SARIF 2.1.0 log for one tool run.
pub fn to_sarif(tool: &str, diagnostics: &[Diagnostic]) -> String {
    let mut rules: Vec<&str> = Vec::new();
    for d in diagnostics {
        if !rules.contains(&d.rule) {
            rules.push(d.rule);
        }
    }
    let mut out = String::with_capacity(1024 + diagnostics.len() * 256);
    out.push_str("{\"$schema\":");
    json_string(SCHEMA, &mut out);
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":");
    json_string(&format!("gdelt-xtask-{tool}"), &mut out);
    out.push_str(",\"informationUri\":\"https://github.com/gdelt-mining/gdelt-mining\"");
    out.push_str(",\"rules\":[");
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        json_string(r, &mut out);
        out.push_str(",\"shortDescription\":{\"text\":");
        json_string(r, &mut out);
        out.push_str("}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ruleId\":");
        json_string(d.rule, &mut out);
        out.push_str(",\"level\":\"error\",\"message\":{\"text\":");
        let mut text = d.message.clone();
        for n in &d.notes {
            text.push_str("; ");
            text.push_str(n);
        }
        json_string(&text, &mut out);
        out.push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
        // SARIF URIs use forward slashes regardless of platform.
        json_string(&d.path.display().to_string().replace('\\', "/"), &mut out);
        out.push_str(&format!("}},\"region\":{{\"startLine\":{}}}}}}}]}}", d.line.max(1)));
    }
    out.push_str("]}]}");
    out
}

/// Structurally validate a SARIF document. Returns the number of
/// results on success, or every violation found.
pub fn validate(doc: &Json) -> Result<usize, Vec<String>> {
    let mut errs: Vec<String> = Vec::new();
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        errs.push("version must be \"2.1.0\"".into());
    }
    let Some(runs) = doc.get("runs").and_then(Json::as_arr) else {
        errs.push("missing runs array".into());
        return Err(errs);
    };
    if runs.is_empty() {
        errs.push("runs must not be empty".into());
        return Err(errs);
    }
    let mut total = 0usize;
    for (ri, run) in runs.iter().enumerate() {
        let driver = run.get("tool").and_then(|t| t.get("driver"));
        let Some(driver) = driver else {
            errs.push(format!("runs[{ri}]: missing tool.driver"));
            continue;
        };
        if driver.get("name").and_then(Json::as_str).is_none_or(str::is_empty) {
            errs.push(format!("runs[{ri}]: driver.name missing or empty"));
        }
        let mut declared: Vec<&str> = Vec::new();
        if let Some(rules) = driver.get("rules").and_then(Json::as_arr) {
            for (i, r) in rules.iter().enumerate() {
                match r.get("id").and_then(Json::as_str) {
                    Some(id) if !id.is_empty() => {
                        if declared.contains(&id) {
                            errs.push(format!("runs[{ri}]: duplicate rule id {id:?}"));
                        }
                        declared.push(id);
                    }
                    _ => errs.push(format!("runs[{ri}].rules[{i}]: missing id")),
                }
            }
        }
        let results = run.get("results").and_then(Json::as_arr).unwrap_or(&[]);
        total += results.len();
        for (i, res) in results.iter().enumerate() {
            let at = format!("runs[{ri}].results[{i}]");
            match res.get("ruleId").and_then(Json::as_str) {
                Some(id) if declared.contains(&id) => {}
                Some(id) => errs.push(format!("{at}: ruleId {id:?} not declared")),
                None => errs.push(format!("{at}: missing ruleId")),
            }
            match res.get("level").and_then(Json::as_str) {
                Some("error" | "warning" | "note" | "none") | None => {}
                Some(other) => errs.push(format!("{at}: bad level {other:?}")),
            }
            if res
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .is_none_or(str::is_empty)
            {
                errs.push(format!("{at}: missing message.text"));
            }
            let Some(locs) = res.get("locations").and_then(Json::as_arr) else {
                errs.push(format!("{at}: missing locations"));
                continue;
            };
            for (li, loc) in locs.iter().enumerate() {
                let phys = loc.get("physicalLocation");
                let uri = phys
                    .and_then(|p| p.get("artifactLocation"))
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str);
                if uri.is_none_or(str::is_empty) {
                    errs.push(format!("{at}.locations[{li}]: missing artifact uri"));
                }
                if let Some(start) = phys
                    .and_then(|p| p.get("region"))
                    .and_then(|r| r.get("startLine"))
                    .and_then(Json::as_num)
                {
                    if start < 1.0 || start.fract() != 0.0 {
                        errs.push(format!("{at}.locations[{li}]: startLine {start} invalid"));
                    }
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(total)
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diags() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: PathBuf::from("crates/engine/src/delay.rs"),
                line: 42,
                rule: "index_bounds",
                message: "`offsets[s + 1]` not proven in bounds".into(),
                notes: vec!["cannot prove s + 1 < len(offsets)".into()],
            },
            Diagnostic {
                path: PathBuf::from("crates/serve/src/service.rs"),
                line: 7,
                rule: "result_discard",
                message: "Result of `flush` is dropped".into(),
                notes: vec![],
            },
            Diagnostic {
                path: PathBuf::from("crates/engine/src/delay.rs"),
                line: 50,
                rule: "index_bounds",
                message: "second finding, same rule".into(),
                notes: vec![],
            },
        ]
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let text = to_sarif("analyze", &diags());
        let doc = crate::json::parse(&text).expect("well-formed JSON");
        assert_eq!(validate(&doc), Ok(3));
    }

    #[test]
    fn rules_are_declared_once() {
        let text = to_sarif("analyze", &diags());
        let doc = crate::json::parse(&text).unwrap();
        let rules = doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rules.len(), 2, "two distinct rules fired");
    }

    #[test]
    fn notes_fold_into_message_text() {
        let text = to_sarif("analyze", &diags());
        assert!(text.contains("not proven in bounds; cannot prove"));
    }

    #[test]
    fn validator_rejects_undeclared_rule_and_bad_version() {
        let doc = crate::json::parse(
            r#"{"version":"2.0.0","runs":[{"tool":{"driver":{"name":"x","rules":[]}},
                "results":[{"ruleId":"ghost","message":{"text":"m"},
                "locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.rs"},
                "region":{"startLine":0}}}]}]}]}"#,
        )
        .unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("version")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("not declared")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("startLine")), "{errs:?}");
    }

    #[test]
    fn empty_batch_is_valid_sarif() {
        let text = to_sarif("analyze", &[]);
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(validate(&doc), Ok(0));
    }
}
