//! The semantic pass behind `cargo xtask analyze`.
//!
//! Builds the workspace call graph ([`crate::callgraph`]) over the
//! parsed token streams ([`crate::lex`], [`crate::parse`]) and runs
//! five analyses:
//!
//! * `panic_path` — every function annotated `// analyze: no_panic` is
//!   a root; any panic sink reachable from a root through the call
//!   graph is reported with the shortest call path rendered as
//!   `file:line → file:line → …`;
//! * `hot_alloc` — allocations inside rayon parallel closures
//!   (anywhere in crate sources) and inside loop bodies of
//!   panic-freedom kernels;
//! * `obs_hot_path` — observability recording calls (`gdelt_obs`
//!   spans, flight events, registry lookups) inside parallel closures
//!   or loop bodies of panic-freedom kernels: spans buffer a record
//!   and flight events take the ring lock, so per-row recording
//!   serializes exactly the regions the paper parallelizes;
//! * `lock_par` — `Mutex`/`RwLock` acquisition inside a parallel
//!   closure serializes the region;
//! * `lock_cycle` — the lexical lock-order graph must be acyclic.
//!
//! Two concurrency-soundness rules ride on the interprocedural effect
//! summaries ([`crate::summaries`], folded bottom-up over the SCC
//! condensation of the call graph):
//!
//! * `par_race` — mutation of captured or shared state (`&mut`
//!   captures, `Cell`/`RefCell`, `static mut`) inside a parallel
//!   closure or spawned-thread closure, directly or transitively
//!   through any call the closure makes (the finding renders the full
//!   witness chain down to the write);
//! * `atomic_protocol` — per-atomic-field pairing of store/load
//!   orderings across the whole workspace: a `Relaxed` store to a
//!   field that is `Acquire`-loaded elsewhere, a `Release` store no
//!   load ever consumes, asymmetric fences, and `SeqCst` where the
//!   workspace's publish/consume discipline needs at most
//!   `Release`/`Acquire` all become findings. Subsumes the old
//!   intra-procedural `seqcst` rule (whose marker name survives as an
//!   alias). Test code is **included**: an unsound ordering in a test
//!   masks exactly the race the test exists to catch.
//!
//! On top of those, three dataflow rules run the fixpoint engine
//! ([`crate::dataflow`]) over statement-level CFGs ([`crate::cfg`]):
//!
//! * `index_bounds` — the interval prover ([`crate::bounds`]) must
//!   discharge every `xs[i]` site reachable from a `no_panic` kernel;
//!   it owns the `SinkKind::Index` sinks `panic_path` used to report.
//!   Obligations the prover cannot close locally but can state over
//!   the function's parameters **lift to callers as preconditions**:
//!   each call site substitutes its actual arguments and retries the
//!   proof with the caller's facts; obligations still open at a
//!   `no_panic` root are reported there with the full call chain;
//! * `guard_across_await_or_call` — a `Mutex`/`RwLock` guard live
//!   across a call into another workspace crate ([`crate::guard`]);
//! * `result_discard` — a `Result` from a workspace call dropped on
//!   the floor in serve/engine hot paths ([`crate::discard`]).
//!
//! A final audit flags **stale markers**: suppression comments that no
//! longer suppress anything (the line lints are replayed first so
//! their marker usage counts too). `--remove-stale` deletes them.
//!
//! Plus the ratcheting unsafe inventory against `analyze-baseline.toml`
//! ([`crate::baseline`]), which also records per-crate dataflow
//! suppression counts (`[dataflow.*]`) and stale-marker counts
//! (`[stale.*]`). Findings are suppressed per-line with
//! `// analyze: allow(<rule>): <reason>` (the legacy `lint:` markers
//! `no_panic` / `par_index` also silence sinks they already justify).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::baseline::{self, Baseline, Inventory};
use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lex::{tokenize, TokKind, Token};
use crate::parse::{parse_file, AtomicKind, ParsedFile, SinkKind};
use crate::source::SourceFile;
use crate::{bounds, discard, guard, json, lint, summaries, walk};

/// The baseline file name, at the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.toml";

/// A loaded, parsed workspace ready for analysis.
pub struct Analysis {
    /// Per-file: workspace-relative path, line model, token stream,
    /// parsed facts, in-test-tree flag.
    files: Vec<(PathBuf, SourceFile, Vec<Token>, ParsedFile, bool)>,
    /// The call graph over every file.
    graph: CallGraph,
}

/// Everything one full pass produces: the findings plus the per-crate
/// counts the `[dataflow.*]` / `[stale.*]` baseline tables ratchet.
pub struct RunResult {
    /// All findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Marker-suppressed dataflow findings per crate.
    pub dataflow: BTreeMap<String, usize>,
    /// Stale suppression markers per crate.
    pub stale: BTreeMap<String, usize>,
    /// Marker-suppressed summary-rule findings (`par_race`,
    /// `atomic_protocol`) per crate.
    pub summary: BTreeMap<String, usize>,
}

/// Is this workspace-relative path in a tree whose functions are only
/// callable from their own file (integration tests, benches, examples)?
fn in_test_tree(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("tests/")
        || s.starts_with("examples/")
        || s.contains("/tests/")
        || s.contains("/benches/")
        || s.contains("/examples/")
}

/// Is this path a crate `src/` file (scope of the `hot_alloc` rule)?
fn in_crate_src(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("crates/") && s.contains("/src/")
}

impl Analysis {
    /// Parse `paths` (workspace-relative to `root`) and build the graph.
    pub fn load(root: &Path, paths: &[PathBuf]) -> Result<Analysis, String> {
        let mut files = Vec::new();
        for p in paths {
            let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
            let src = std::fs::read_to_string(&abs)
                .map_err(|e| format!("reading {}: {e}", abs.display()))?;
            let rel = abs.strip_prefix(root).unwrap_or(p).to_path_buf();
            let file = SourceFile::parse(&src);
            let tokens = tokenize(&file);
            let parsed = parse_file(&file, &tokens);
            let test_tree = in_test_tree(&rel);
            files.push((rel, file, tokens, parsed, test_tree));
        }
        let graph_input: Vec<(PathBuf, ParsedFile, bool)> = files
            .iter()
            .map(|(rel, _, _, parsed, tt)| (rel.clone(), parsed.clone(), *tt))
            .collect();
        let deps = crate::deps::CrateDeps::load(root)
            .map_err(|e| format!("reading workspace manifests: {e}"))?;
        let graph = CallGraph::build_filtered(&graph_input, Some(&deps));
        Ok(Analysis { files, graph })
    }

    /// Load every workspace file.
    pub fn load_workspace(root: &Path) -> Result<Analysis, String> {
        let paths =
            walk::workspace_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
        Analysis::load(root, &paths)
    }

    /// Run every analysis; diagnostics are sorted by (path, line, rule).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.run().diagnostics
    }

    /// Run every analysis and collect the baseline count maps. The
    /// stale-marker audit runs last so every rule has consulted its
    /// markers first.
    pub fn run(&self) -> RunResult {
        let mut out = Vec::new();
        let mut dataflow: BTreeMap<String, usize> = BTreeMap::new();
        let mut summary: BTreeMap<String, usize> = BTreeMap::new();
        self.panic_paths(&mut out);
        self.hot_allocs(&mut out);
        self.obs_hot_paths(&mut out);
        self.lock_discipline(&mut out);
        self.lock_cycles(&mut out);
        let sums = summaries::compute(&self.graph);
        self.par_races(&sums, &mut out, &mut summary);
        self.atomic_protocol(&mut out, &mut summary);
        self.index_bounds(&mut out, &mut dataflow);
        self.guard_across_calls(&mut out, &mut dataflow);
        self.result_discards(&mut out, &mut dataflow);
        let stale = self.stale_markers(&mut out);
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        RunResult { diagnostics: out, dataflow, stale, summary }
    }

    /// The unsafe inventory for the baseline ratchet.
    pub fn inventory(&self) -> Inventory {
        let mut inv = Inventory::default();
        for (rel, _, _, parsed, _) in &self.files {
            let krate = walk::crate_of(rel);
            let rel_s = rel.to_string_lossy().replace('\\', "/");
            inv.record(&krate, &rel_s, parsed.unsafe_lines.len());
        }
        inv
    }

    /// Per-crate `#[test]` counts for the test-count ratchet. Counted
    /// on comment-stripped code lines so a commented-out attribute does
    /// not register; top-level `tests/` files bucket under `tests`.
    pub fn test_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (rel, src, _, _, _) in &self.files {
            let krate = walk::crate_of(rel);
            let n = src.lines.iter().filter(|l| l.code.trim() == "#[test]").count();
            if n > 0 {
                *counts.entry(krate).or_default() += n;
            }
        }
        counts
    }

    /// The `SourceFile` backing a graph node's file.
    fn source_of(&self, file_idx: usize) -> &SourceFile {
        &self.files[file_idx].1
    }

    /// Functions on a `no_panic` root's reachable set (roots included).
    fn hot_set(&self) -> Vec<bool> {
        let mut hot = vec![false; self.graph.nodes.len()];
        for (i, n) in self.graph.nodes.iter().enumerate() {
            if n.func.no_panic && !n.func.is_test {
                for (j, p) in self.graph.shortest_paths(i).iter().enumerate() {
                    if p.is_some() {
                        hot[j] = true;
                    }
                }
            }
        }
        hot
    }

    /// `panic_path`: BFS from each `no_panic` root; report each
    /// unsuppressed sink in every reachable function once, with the
    /// shortest path from the nearest root.
    fn panic_paths(&self, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = self
            .graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.func.no_panic && !n.func.is_test)
            .map(|(i, _)| i)
            .collect();
        // node -> best (hops, root, path) over all roots.
        let mut best: BTreeMap<usize, (usize, usize, Vec<crate::callgraph::PathHop>)> =
            BTreeMap::new();
        for &root in &roots {
            let paths = self.graph.shortest_paths(root);
            for (node, path) in paths.into_iter().enumerate() {
                let Some(path) = path else { continue };
                let hops = path.len() - 1;
                let better = best.get(&node).map(|(h, _, _)| hops < *h).unwrap_or(true);
                if better {
                    best.insert(node, (hops, root, path));
                }
            }
        }
        for (&node, (hops, root, path)) in &best {
            let n = &self.graph.nodes[node];
            let src = self.source_of(n.file_idx);
            let root_n = &self.graph.nodes[*root];
            for sink in &n.func.sinks {
                // Index sinks belong to the `index_bounds` prover now:
                // proven sites are silent, unproven ones carry their
                // obligation instead of a bare "panic sink" report.
                if sink.kind == SinkKind::Index {
                    continue;
                }
                // `analyze: allow(panic_path)` plus the legacy line-lint
                // marker silence a sink.
                if src.allowed(sink.line, "panic_path") || src.allowed(sink.line, "no_panic") {
                    continue;
                }
                let message = if *hops == 0 {
                    format!(
                        "panic sink {} inside `no_panic` kernel `{}`",
                        sink.what,
                        root_n.func.display()
                    )
                } else {
                    format!(
                        "panic sink {} reachable from `no_panic` kernel `{}` ({} call{} away)",
                        sink.what,
                        root_n.func.display(),
                        hops,
                        if *hops == 1 { "" } else { "s" }
                    )
                };
                let mut d = Diagnostic::new(&n.path, sink.line, "panic_path", message);
                d.notes.push(render_path(&self.graph, path, &n.path, sink.line));
                if *hops > 0 {
                    let chain: Vec<String> = path
                        .iter()
                        .map(|h| format!("`{}`", self.graph.nodes[h.node].func.display()))
                        .collect();
                    d.notes.push(format!("call chain: {}", chain.join(" → ")));
                }
                out.push(d);
            }
        }
    }

    /// `hot_alloc`: allocations inside parallel closures (crate `src/`
    /// scope) and loop-body allocations in panic-freedom kernels.
    fn hot_allocs(&self, out: &mut Vec<Diagnostic>) {
        // Functions on a no_panic root's reachable set count as kernels
        // for the loop rule.
        let hot = self.hot_set();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for a in &n.func.allocs {
                let flagged = a.in_par || (a.in_loop && hot[id]);
                if !flagged || src.allowed(a.line, "hot_alloc") {
                    continue;
                }
                let ctx = if a.in_par {
                    "a parallel closure"
                } else {
                    "a per-row loop of a `no_panic` kernel"
                };
                out.push(Diagnostic::new(
                    &n.path,
                    a.line,
                    "hot_alloc",
                    format!(
                        "allocation {} inside {ctx} in `{}`; hoist it out of the hot \
                         region or justify with `// analyze: allow(hot_alloc): <reason>`",
                        a.what,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `obs_hot_path`: `gdelt_obs` recording calls inside parallel
    /// closures (crate `src/` scope) or loop bodies of panic-freedom
    /// kernels. One span per partition is the intended grain; one per
    /// row buys nothing and costs a sink append (or, for flight
    /// events, the ring lock) per element.
    fn obs_hot_paths(&self, out: &mut Vec<Diagnostic>) {
        /// Recording entry points plus the registry lookups — the
        /// lookups take the registry lock, so a hot loop must resolve
        /// its handle once outside (see `engine::query::kernel_metrics`).
        const OBS_CALLS: [&str; 9] = [
            "span",
            "span_args",
            "flight",
            "flight_info",
            "flight_warn",
            "flight_error",
            "counter",
            "gauge",
            "histogram",
        ];
        let hot = self.hot_set();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for c in &n.func.calls {
                let flagged =
                    OBS_CALLS.contains(&c.name.as_str()) && (c.in_par || (c.in_loop && hot[id]));
                if !flagged || src.allowed(c.line, "obs_hot_path") {
                    continue;
                }
                let ctx = if c.in_par {
                    "a parallel closure"
                } else {
                    "a per-row loop of a `no_panic` kernel"
                };
                out.push(Diagnostic::new(
                    &n.path,
                    c.line,
                    "obs_hot_path",
                    format!(
                        "observability call `{}(..)` inside {ctx} in `{}`; record once \
                         per partition (resolve registry handles outside the loop) or \
                         justify with `// analyze: allow(obs_hot_path): <reason>`",
                        c.name,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `lock_par`: lock acquisition inside a parallel closure.
    fn lock_discipline(&self, out: &mut Vec<Diagnostic>) {
        for n in &self.graph.nodes {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for l in &n.func.locks {
                if !l.in_par || src.allowed(l.line, "lock_par") {
                    continue;
                }
                out.push(Diagnostic::new(
                    &n.path,
                    l.line,
                    "lock_par",
                    format!(
                        "lock `{}` acquired inside a parallel closure in `{}`; \
                         contention serializes the region — use per-worker state \
                         and merge, or justify the lock",
                        l.name,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `par_race`: mutation of captured or shared state inside a
    /// parallel closure or spawned-thread closure — directly, or
    /// transitively through any call the closure makes, witnessed by
    /// the effect summaries with a rendered chain to the write.
    fn par_races(
        &self,
        sums: &[summaries::Summary],
        out: &mut Vec<Diagnostic>,
        summary: &mut BTreeMap<String, usize>,
    ) {
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            let krate = walk::crate_of(&n.path);
            // Direct: writes to captured bindings / interior-mutable
            // cells / `static mut` recorded inside the region itself.
            for w in &n.func.par_writes {
                if summary_allowed_any(src, w.line, &krate, &["par_race"], summary) {
                    continue;
                }
                out.push(Diagnostic::new(
                    &n.path,
                    w.line,
                    "par_race",
                    format!(
                        "data race: {} inside a parallel closure in `{}`; every worker \
                         shares this binding — use per-worker state (`map_init`) or a \
                         reduction, or justify with `// analyze: allow(par_race): <reason>`",
                        w.what,
                        n.func.display()
                    ),
                ));
            }
            // Transitive: a call made inside the region whose callee
            // summary reaches a shared-state write.
            let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
            for c in &n.func.calls {
                if !c.in_par && !c.in_spawn {
                    continue;
                }
                for e in &self.graph.out[id] {
                    if e.line != c.line || e.to == id {
                        continue;
                    }
                    let callee = &self.graph.nodes[e.to];
                    if callee.func.name != c.name {
                        continue;
                    }
                    for w in &sums[e.to].shared_mut {
                        if !seen.insert((c.line, w.what.clone())) {
                            continue;
                        }
                        if summary_allowed_any(src, c.line, &krate, &["par_race"], summary) {
                            continue;
                        }
                        let mut chain = vec![summaries::Hop { node: id, line: c.line }];
                        chain.extend(w.chain.iter().cloned());
                        let mut d = Diagnostic::new(
                            &n.path,
                            c.line,
                            "par_race",
                            format!(
                                "data race: call to `{}` inside a parallel closure in `{}` \
                                 reaches {}; synchronize the write or justify with \
                                 `// analyze: allow(par_race): <reason>`",
                                callee.func.display(),
                                n.func.display(),
                                w.what
                            ),
                        );
                        d.notes.push(format!(
                            "path: {}",
                            summaries::render_chain(&self.graph, &chain)
                        ));
                        out.push(d);
                    }
                }
            }
        }
    }

    /// `atomic_protocol`: per-field pairing of store/load orderings
    /// across the workspace. Fields are grouped by `(crate, name)` —
    /// the same name-based over-approximation the lock rules use.
    /// Test code is included (`in_test` ops are facts too): an unsound
    /// ordering in a test masks the race the test exists to catch.
    fn atomic_protocol(&self, out: &mut Vec<Diagnostic>, summary: &mut BTreeMap<String, usize>) {
        struct Site {
            node: usize,
            line: usize,
            kind: AtomicKind,
            ordering: String,
        }
        let mut groups: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            for a in &n.func.atomics {
                groups.entry((walk::crate_of(&n.path), a.field.clone())).or_default().push(Site {
                    node: id,
                    line: a.line,
                    kind: a.kind,
                    ordering: a.ordering.clone(),
                });
            }
        }
        let push = |out: &mut Vec<Diagnostic>,
                    summary: &mut BTreeMap<String, usize>,
                    site: &Site,
                    krate: &str,
                    message: String,
                    note: Option<String>| {
            let n = &self.graph.nodes[site.node];
            let src = self.source_of(n.file_idx);
            if summary_allowed_any(src, site.line, krate, &["atomic_protocol", "seqcst"], summary) {
                return;
            }
            let mut d = Diagnostic::new(&n.path, site.line, "atomic_protocol", message);
            if let Some(note) = note {
                d.notes.push(note);
            }
            out.push(d);
        };
        let release = |o: &str| matches!(o, "Release" | "AcqRel" | "SeqCst");
        let acquire = |o: &str| matches!(o, "Acquire" | "AcqRel" | "SeqCst");
        for ((krate, field), sites) in &groups {
            if field == "<fence>" {
                // Fences pair Release-side with Acquire-side; a crate
                // with fences of only one side synchronizes nothing.
                let rel = sites.iter().any(|s| release(&s.ordering));
                let acq = sites.iter().any(|s| acquire(&s.ordering));
                if rel != acq {
                    let (have, miss) =
                        if rel { ("Release", "Acquire") } else { ("Acquire", "Release") };
                    for s in sites {
                        push(
                            out,
                            summary,
                            s,
                            krate,
                            format!(
                                "asymmetric fence: `fence({})` with no {miss}-side fence \
                                 in crate `{krate}` — it synchronizes with nothing",
                                s.ordering
                            ),
                            Some(format!("every fence in this crate is {have}-side")),
                        );
                    }
                }
                continue;
            }
            let stores: Vec<&Site> = sites
                .iter()
                .filter(|s| matches!(s.kind, AtomicKind::Store | AtomicKind::Rmw))
                .collect();
            let loads: Vec<&Site> = sites
                .iter()
                .filter(|s| matches!(s.kind, AtomicKind::Load | AtomicKind::Rmw))
                .collect();
            let acq_load = loads.iter().find(|s| acquire(&s.ordering));
            let rel_store = stores.iter().find(|s| release(&s.ordering));
            // SeqCst: the workspace's protocols are all publish/consume
            // pairs — `Release`/`Acquire` (or `Relaxed` for counters)
            // always suffices; a total order is never required.
            for s in sites {
                if s.ordering == "SeqCst" {
                    let suggest = match s.kind {
                        AtomicKind::Store => "`Release` (or `Relaxed` for a pure counter)",
                        AtomicKind::Load => "`Acquire` (or `Relaxed` for a pure counter)",
                        AtomicKind::Rmw => "`AcqRel` (or `Relaxed` for a pure counter)",
                        AtomicKind::Fence => "`Release`/`Acquire`",
                    };
                    push(
                        out,
                        summary,
                        s,
                        krate,
                        format!(
                            "`SeqCst` on `{field}`: no access of this field requires a \
                             total order — {suggest} suffices, or justify with \
                             `// analyze: allow(atomic_protocol): <reason>`"
                        ),
                        None,
                    );
                }
            }
            // A Relaxed store to a field somebody Acquire-loads: the
            // load synchronizes-with nothing.
            if let Some(al) = acq_load {
                for s in &stores {
                    if s.ordering == "Relaxed" {
                        let fix = if s.kind == AtomicKind::Rmw { "AcqRel" } else { "Release" };
                        push(
                            out,
                            summary,
                            s,
                            krate,
                            format!(
                                "`Relaxed` store to `{field}`, which is Acquire-loaded at \
                                 {}:{} — the load synchronizes-with nothing; use `{fix}` \
                                 or downgrade the load",
                                self.graph.nodes[al.node].path.display(),
                                al.line
                            ),
                            None,
                        );
                    }
                }
            }
            // A Release store nothing consumes: the publication fence
            // is paid but every load is Relaxed.
            if acq_load.is_none() && !loads.is_empty() {
                if let Some(rs) = rel_store {
                    if rs.ordering == "Release" {
                        push(
                            out,
                            summary,
                            rs,
                            krate,
                            format!(
                                "`Release` store to `{field}` but every load of it is \
                                 `Relaxed` — nothing consumes the publication; upgrade a \
                                 load to `Acquire` or downgrade the store"
                            ),
                            Some(format!("{} load site(s) of `{field}`, all Relaxed", loads.len())),
                        );
                    }
                }
            }
        }
    }

    /// `lock_cycle`: the union of every function's lexical lock-order
    /// edges must be acyclic.
    fn lock_cycles(&self, out: &mut Vec<Diagnostic>) {
        // name -> [(successor, node id, line)]
        let mut adj: BTreeMap<&str, Vec<(&str, usize, usize)>> = BTreeMap::new();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for e in &n.func.lock_edges {
                if src.allowed(e.line, "lock_cycle") {
                    continue;
                }
                adj.entry(e.held.as_str()).or_default().push((e.then.as_str(), id, e.line));
            }
        }
        // DFS with an explicit stack of lock names; a back edge into the
        // current path is a cycle.
        let names: Vec<&str> = adj.keys().copied().collect();
        let mut done: Vec<&str> = Vec::new();
        for &start in &names {
            if done.contains(&start) {
                continue;
            }
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            while let Some(top) = stack.len().checked_sub(1) {
                let (name, next) = stack[top];
                let edges = adj.get(name).map(|v| v.as_slice()).unwrap_or(&[]);
                if next >= edges.len() {
                    stack.pop();
                    path.pop();
                    if !done.contains(&name) {
                        done.push(name);
                    }
                    continue;
                }
                let (succ, node_id, line) = edges[next];
                stack[top].1 += 1;
                if let Some(pos) = path.iter().position(|&p| p == succ) {
                    // Cycle: path[pos..] + succ.
                    let mut cycle: Vec<&str> = path[pos..].to_vec();
                    cycle.push(succ);
                    let n = &self.graph.nodes[node_id];
                    out.push(Diagnostic::new(
                        &n.path,
                        line,
                        "lock_cycle",
                        format!(
                            "lock-order cycle: {} — acquiring `{}` while holding `{}` \
                             inverts an order established elsewhere; pick one global order",
                            cycle.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>().join(" → "),
                            succ,
                            name,
                        ),
                    ));
                    continue;
                }
                if !done.contains(&succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                }
            }
        }
    }

    /// `index_bounds`: run the interval prover over every function on a
    /// `no_panic` root's reachable set. Index sites it discharges are
    /// silent — their legacy `panic_path`/`par_index` markers go stale
    /// and the audit flags them for deletion; the rest are findings
    /// carrying the exact unproven obligation.
    fn index_bounds(&self, out: &mut Vec<Diagnostic>, dataflow: &mut BTreeMap<String, usize>) {
        let hot = self.hot_set();
        // Obligations lifted out of each node, final once the node's
        // SCC has been processed (bottom-up order).
        let mut obligs: Vec<Vec<Obligation>> = vec![Vec::new(); self.graph.nodes.len()];
        // Origin sites that must be reported where they stand (not
        // liftable, or the lifting machinery hit a cap).
        let mut at_site: Vec<(usize, bounds::IndexSite)> = Vec::new();
        // Origin sites already accounted for by a surfaced report,
        // keyed by (node, line, what) — one diagnostic per site.
        let mut surfaced: BTreeSet<(usize, usize, String)> = BTreeSet::new();
        let comps = self.graph.sccs();
        let mut comp_of = vec![0usize; self.graph.nodes.len()];
        for (ci, comp) in comps.iter().enumerate() {
            for &v in comp {
                comp_of[v] = ci;
            }
        }
        for (ci, comp) in comps.iter().enumerate() {
            // Recursion widens to ⊤: members of a non-trivial SCC keep
            // their own sites at-site and do not accept lifted
            // preconditions through recursive edges.
            let recursive =
                comp.len() > 1 || comp.iter().any(|&v| self.graph.out[v].iter().any(|e| e.to == v));
            for &v in comp {
                let n = &self.graph.nodes[v];
                if !hot[v] || n.func.is_test {
                    continue;
                }
                let (_, _, toks, parsed, _) = &self.files[n.file_idx];
                let children = bounds::child_ranges(&parsed.functions, n.fn_idx);
                // Own verdicts. A root reports its own failures at the
                // site (there is no caller to discharge them); helpers
                // lift parameter-shaped goals instead.
                let sites = bounds::check_function(toks, n.func.body.clone(), &children);
                self.report_uncovered_sinks(v, &sites, out, dataflow);
                for site in sites {
                    if site.proven {
                        continue;
                    }
                    let liftable = !n.func.no_panic
                        && !recursive
                        && site
                            .goal
                            .as_ref()
                            .is_some_and(|g| bounds::goal_liftable(g, &n.func.params));
                    if liftable && obligs[v].len() < MAX_OBLIGATIONS {
                        let goal = site.goal.clone().unwrap();
                        obligs[v].push(Obligation {
                            goal,
                            origin: (v, site.line, site.what.clone()),
                            note: site.note.clone(),
                            chain: Vec::new(),
                        });
                    } else {
                        at_site.push((v, site));
                    }
                }
                // Absorb callee obligations: substitute actuals into
                // the precondition and retry the proof with this
                // function's facts at the call site.
                let mut wanted: Vec<usize> = Vec::new();
                for e in &self.graph.out[v] {
                    if comp_of[e.to] == ci || obligs[e.to].is_empty() {
                        continue;
                    }
                    if let Some(c) = self.call_record(v, e) {
                        wanted.push(c.at);
                    }
                }
                wanted.sort_unstable();
                wanted.dedup();
                let facts = bounds::facts_at(toks, n.func.body.clone(), &children, &wanted);
                let empty = bounds::Facts::default();
                for e in &self.graph.out[v] {
                    if comp_of[e.to] == ci || obligs[e.to].is_empty() {
                        continue;
                    }
                    let callee_obligs = std::mem::take(&mut obligs[e.to]);
                    let Some(c) = self.call_record(v, e) else {
                        // No parsable call record: every obligation of
                        // the callee falls back to its origin site.
                        for o in &callee_obligs {
                            self.surface_or_fallback(o, None, out, dataflow, &mut surfaced);
                        }
                        obligs[e.to] = callee_obligs;
                        continue;
                    };
                    let args = self.call_args(v, c.at);
                    let callee = &self.graph.nodes[e.to];
                    for o in &callee_obligs {
                        let subst = args
                            .as_ref()
                            .and_then(|args| substitute_goal(&o.goal, &callee.func.params, args));
                        let Some(goal) = subst else {
                            self.surface_or_fallback(o, None, out, dataflow, &mut surfaced);
                            continue;
                        };
                        let f = facts.get(&c.at).unwrap_or(&empty);
                        if bounds::entails(f, &goal.0, &goal.1, goal.2) {
                            continue; // precondition established here
                        }
                        let mut chain = vec![summaries::Hop { node: v, line: e.line }];
                        chain.extend(o.chain.iter().cloned());
                        let lifted = Obligation {
                            goal,
                            origin: o.origin.clone(),
                            note: o.note.clone(),
                            chain,
                        };
                        let liftable = !n.func.no_panic
                            && !recursive
                            && bounds::goal_liftable(&lifted.goal, &n.func.params)
                            && lifted.chain.len() < summaries::MAX_CHAIN
                            && obligs[v].len() < MAX_OBLIGATIONS;
                        if liftable {
                            obligs[v].push(lifted);
                        } else {
                            // Undischarged at a root (or unliftable
                            // further): report with the full chain.
                            self.surface_or_fallback(
                                &lifted,
                                Some(v),
                                out,
                                dataflow,
                                &mut surfaced,
                            );
                        }
                    }
                    obligs[e.to] = callee_obligs;
                }
            }
        }
        // Obligations still parked at non-root functions whose callers
        // all discharged them are proven; anything that surfaced was
        // reported above. What remains is the at-site list.
        for (v, site) in at_site {
            let n = &self.graph.nodes[v];
            if surfaced.contains(&(v, site.line, site.what.clone())) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            let krate = walk::crate_of(&n.path);
            if index_allowed(src, site.line, &krate, dataflow) {
                continue;
            }
            let mut d = Diagnostic::new(
                &n.path,
                site.line,
                "index_bounds",
                format!("cannot prove {} in bounds in `{}`", site.what, n.func.display()),
            );
            if !site.note.is_empty() {
                d.notes.push(format!("unproven obligation: {}", site.note));
            }
            d.notes.push(
                "add a dominating bound check the prover can see, or justify with \
                 `// analyze: allow(index_bounds): <reason>`"
                    .into(),
            );
            out.push(d);
        }
    }

    /// Find the parsed `Call` record behind a call-graph edge, for
    /// argument parsing at the call site.
    fn call_record(&self, v: usize, e: &crate::callgraph::Edge) -> Option<&crate::parse::Call> {
        let n = &self.graph.nodes[v];
        let callee = &self.graph.nodes[e.to];
        n.func.calls.iter().find(|c| c.line == e.line && c.name == callee.func.name)
    }

    /// Parse the actual-argument terms of the call whose name token is
    /// at `at` in node `v`'s file. Returns one `Option<Term>` per
    /// argument (`None` for arguments too complex to represent).
    fn call_args(&self, v: usize, at: usize) -> Option<Vec<Option<bounds::Term>>> {
        let n = &self.graph.nodes[v];
        let toks = &self.files[n.file_idx].2;
        if toks.get(at + 1).map(|t| t.kind) != Some(TokKind::LParen) {
            return None;
        }
        let mut args: Vec<Vec<usize>> = vec![Vec::new()];
        let mut depth = 0i32;
        let mut i = at + 1;
        loop {
            let t = toks.get(i)?;
            match t.kind {
                TokKind::LParen | TokKind::LBracket | TokKind::LBrace => {
                    depth += 1;
                    if depth > 1 {
                        args.last_mut().unwrap().push(i);
                    }
                }
                TokKind::RParen | TokKind::RBracket | TokKind::RBrace => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    args.last_mut().unwrap().push(i);
                }
                TokKind::Punct if t.text == "," && depth == 1 => args.push(Vec::new()),
                _ => args.last_mut().unwrap().push(i),
            }
            i += 1;
        }
        if args.len() == 1 && args[0].is_empty() {
            return Some(Vec::new());
        }
        Some(
            args.into_iter()
                .map(|mut pos| {
                    // Strip leading `&` / `&mut` — references don't
                    // change the value a term names.
                    while pos.first().is_some_and(|&p| toks[p].text == "&" || toks[p].is("mut")) {
                        pos.remove(0);
                    }
                    bounds::parse_term(toks, &pos)
                })
                .collect(),
        )
    }

    /// Report a lifted obligation: at the function it surfaced in
    /// (`root`, with the full call chain) when given, else at its
    /// origin site. The origin site's marker is consulted first — a
    /// justified site stays suppressed no matter where the obligation
    /// traveled.
    fn surface_or_fallback(
        &self,
        o: &Obligation,
        root: Option<usize>,
        out: &mut Vec<Diagnostic>,
        dataflow: &mut BTreeMap<String, usize>,
        surfaced: &mut BTreeSet<(usize, usize, String)>,
    ) {
        let (onode, oline, owhat) = (o.origin.0, o.origin.1, o.origin.2.clone());
        if !surfaced.insert((onode, oline, owhat.clone())) {
            return;
        }
        let origin = &self.graph.nodes[onode];
        let osrc = self.source_of(origin.file_idx);
        let okrate = walk::crate_of(&origin.path);
        if index_allowed(osrc, oline, &okrate, dataflow) {
            return;
        }
        let Some(root) = root else {
            // Fallback: report at the origin site, like a local miss.
            let mut d = Diagnostic::new(
                &origin.path,
                oline,
                "index_bounds",
                format!("cannot prove {owhat} in bounds in `{}`", origin.func.display()),
            );
            if !o.note.is_empty() {
                d.notes.push(format!("unproven obligation: {}", o.note));
            }
            d.notes.push(
                "add a dominating bound check the prover can see, or justify with \
                 `// analyze: allow(index_bounds): <reason>`"
                    .into(),
            );
            out.push(d);
            return;
        };
        let rn = &self.graph.nodes[root];
        let rsrc = self.source_of(rn.file_idx);
        let rkrate = walk::crate_of(&rn.path);
        if index_allowed(rsrc, rn.func.decl_line, &rkrate, dataflow) {
            return;
        }
        let mut d = Diagnostic::new(
            &rn.path,
            rn.func.decl_line,
            "index_bounds",
            format!(
                "cannot establish precondition `{}` required for {owhat} \
                 ({}:{}) on any proof path from `{}`",
                show_goal(&o.goal),
                origin.path.display(),
                oline,
                rn.func.display()
            ),
        );
        let mut chain = vec![summaries::Hop { node: root, line: rn.func.decl_line }];
        chain.extend(o.chain.iter().cloned());
        chain.push(summaries::Hop { node: onode, line: oline });
        d.notes.push(format!("path: {}", summaries::render_chain(&self.graph, &chain)));
        d.notes.push(
            "establish the bound at a call site the prover can see, or justify with \
             `// analyze: allow(index_bounds): <reason>` at the index site"
                .into(),
        );
        out.push(d);
    }

    /// The legacy uncovered-sink sweep of `index_bounds`, factored out
    /// of the main loop.
    fn report_uncovered_sinks(
        &self,
        v: usize,
        sites: &[bounds::IndexSite],
        out: &mut Vec<Diagnostic>,
        dataflow: &mut BTreeMap<String, usize>,
    ) {
        let n = &self.graph.nodes[v];
        let src = self.source_of(n.file_idx);
        let krate = walk::crate_of(&n.path);
        let covered: BTreeSet<(usize, String)> =
            sites.iter().map(|s| (s.line, s.what.clone())).collect();
        // Index sinks the statement-level CFG never lowered (e.g.
        // inside a braced closure body) stay unproven obligations —
        // the prover must not silently narrow `panic_path` coverage.
        for sink in &n.func.sinks {
            if sink.kind != SinkKind::Index
                || covered.contains(&(sink.line, sink.what.clone()))
                || index_allowed(src, sink.line, &krate, dataflow)
            {
                continue;
            }
            let mut d = Diagnostic::new(
                &n.path,
                sink.line,
                "index_bounds",
                format!("cannot prove {} in bounds in `{}`", sink.what, n.func.display()),
            );
            d.notes.push("unproven obligation: site is outside the dataflow region".into());
            d.notes.push(
                "add a dominating bound check the prover can see, or justify with \
                     `// analyze: allow(index_bounds): <reason>`"
                    .into(),
            );
            out.push(d);
        }
    }

    /// `guard_across_await_or_call`: a lock guard live across a call
    /// into another workspace crate, with the exact hold range.
    fn guard_across_calls(
        &self,
        out: &mut Vec<Diagnostic>,
        dataflow: &mut BTreeMap<String, usize>,
    ) {
        let node_crate: Vec<String> =
            self.graph.nodes.iter().map(|n| walk::crate_of(&n.path)).collect();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let (_, src, toks, parsed, _) = &self.files[n.file_idx];
            if parsed.lock_names.is_empty() {
                continue;
            }
            let cross: Vec<guard::CrossCall> = self.graph.out[id]
                .iter()
                .filter(|e| node_crate[e.to] != node_crate[id])
                .map(|e| {
                    (e.line, self.graph.nodes[e.to].func.name.clone(), node_crate[e.to].clone())
                })
                .collect();
            if cross.is_empty() {
                continue;
            }
            let children = bounds::child_ranges(&parsed.functions, n.fn_idx);
            let found = guard::check_function(
                toks,
                n.func.body.clone(),
                &children,
                &parsed.lock_names,
                &cross,
            );
            for f in found {
                if src.allowed(f.line, "guard_across_await_or_call") {
                    *dataflow.entry(node_crate[id].clone()).or_default() += 1;
                    continue;
                }
                let mut d = Diagnostic::new(
                    &n.path,
                    f.line,
                    "guard_across_await_or_call",
                    format!(
                        "guard `{}` of lock `{}` held across call to `{}` in `{}`",
                        f.binding,
                        f.lock,
                        f.callee,
                        n.func.display()
                    ),
                );
                d.notes.push(format!(
                    "hold range: acquired at line {}, still live at the call on line {} — \
                     drop the guard first, or justify with \
                     `// analyze: allow(guard_across_await_or_call): <reason>`",
                    f.acquired, f.line
                ));
                out.push(d);
            }
        }
    }

    /// `result_discard`: a `Result` from a workspace call dropped on
    /// the floor (`let _ = …;` or a bare call statement) in serve or
    /// engine `src/` code.
    fn result_discards(&self, out: &mut Vec<Diagnostic>, dataflow: &mut BTreeMap<String, usize>) {
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let krate = walk::crate_of(&n.path);
            if !DISCARD_CRATES.contains(&krate.as_str()) {
                continue;
            }
            let candidates: BTreeSet<discard::ResultCall> = self.graph.out[id]
                .iter()
                .filter(|e| self.graph.nodes[e.to].func.returns_result)
                .map(|e| (e.line, self.graph.nodes[e.to].func.name.clone()))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let (_, src, toks, parsed, _) = &self.files[n.file_idx];
            let children = bounds::child_ranges(&parsed.functions, n.fn_idx);
            for f in discard::check_function(toks, n.func.body.clone(), &children, &candidates) {
                if src.allowed(f.line, "result_discard") {
                    *dataflow.entry(krate.clone()).or_default() += 1;
                    continue;
                }
                let how = if f.explicit { "`let _ = …`" } else { "a bare statement" };
                let mut d = Diagnostic::new(
                    &n.path,
                    f.line,
                    "result_discard",
                    format!(
                        "`Result` of workspace call `{}` discarded via {how} in `{}`",
                        f.callee,
                        n.func.display()
                    ),
                );
                d.notes.push(
                    "handle the error (`?`, match, or log it) or justify with \
                     `// analyze: allow(result_discard): <reason>`"
                        .into(),
                );
                out.push(d);
            }
        }
    }

    /// Flag suppression markers that no longer suppress anything. The
    /// line lints replay first so markers they consult count as used;
    /// every analyze rule has already recorded its lookups by the time
    /// this runs (it must be the last pass in [`Analysis::run`]).
    fn stale_markers(&self, out: &mut Vec<Diagnostic>) -> BTreeMap<String, usize> {
        for (rel, src, _, _, _) in &self.files {
            let _ = lint::lint_file(rel, src);
        }
        let mut stale: BTreeMap<String, usize> = BTreeMap::new();
        for (rel, src, _, _, _) in &self.files {
            let used = src.used_markers();
            for (line, rule) in src.markers() {
                let known = MARKER_RULES.contains(&rule.as_str());
                if known && used.contains(&(line, rule.clone())) {
                    continue;
                }
                *stale.entry(walk::crate_of(rel)).or_default() += 1;
                let message = if known {
                    format!(
                        "stale marker: `allow({rule})` suppresses nothing on this line — \
                         delete it or run `cargo xtask analyze --remove-stale`"
                    )
                } else {
                    format!(
                        "stale marker: no rule is named `{rule}` — delete it or run \
                         `cargo xtask analyze --remove-stale`"
                    )
                };
                out.push(Diagnostic::new(rel, line, "stale_marker", message));
            }
        }
        stale
    }
}

/// Crates whose `src/` statements the `result_discard` rule covers —
/// the serve/engine hot paths where a swallowed error loses data.
const DISCARD_CRATES: &[&str] = &["engine", "serve"];

/// Every rule a suppression marker can legitimately name.
const MARKER_RULES: &[&str] = &[
    // line lints
    "no_panic",
    "id_cast",
    "par_index",
    "safety_comment",
    // analyze rules
    "panic_path",
    "hot_alloc",
    "obs_hot_path",
    "lock_par",
    "lock_cycle",
    // summary rules (`seqcst` is the legacy alias for
    // `atomic_protocol`, kept so existing markers keep resolving)
    "par_race",
    "atomic_protocol",
    "seqcst",
    // dataflow rules
    "index_bounds",
    "guard_across_await_or_call",
    "result_discard",
];

/// Consult the given summary-rule marker spellings; a hit counts into
/// the `[summary.*]` suppression table.
fn summary_allowed_any(
    src: &SourceFile,
    line: usize,
    krate: &str,
    rules: &[&str],
    summary: &mut BTreeMap<String, usize>,
) -> bool {
    for rule in rules {
        if src.allowed(line, rule) {
            *summary.entry(krate.to_string()).or_default() += 1;
            return true;
        }
    }
    false
}

/// Cap on obligations lifted per function; overflow falls back to an
/// at-site report (conservative, never silent).
const MAX_OBLIGATIONS: usize = 24;

/// An unproven bounds obligation travelling up the call graph as a
/// precondition.
#[derive(Debug, Clone)]
struct Obligation {
    /// `(a, b, strict)`: prove `a < b` (strict) or `a <= b`, stated
    /// over the current holder's parameters after substitution.
    goal: (bounds::Term, bounds::Term, bool),
    /// The index site that raised it: `(node, line, what)`.
    origin: (usize, usize, String),
    /// The original prover note at the site.
    note: String,
    /// Call hops from the current holder down to the origin function
    /// (`chain[0]` is in the holder's body).
    chain: Vec<summaries::Hop>,
}

/// Render a structured goal as `i + 1 < len(xs)`.
fn show_goal(goal: &(bounds::Term, bounds::Term, bool)) -> String {
    format!("{} {} {}", goal.0.show(), if goal.2 { "<" } else { "<=" }, goal.1.show())
}

/// Substitute actual-argument terms for callee parameters inside a
/// goal. `args[i]` is the term of the `i`-th actual; `None` entries
/// poison any goal that mentions the matching parameter.
fn substitute_goal(
    goal: &(bounds::Term, bounds::Term, bool),
    params: &[String],
    args: &[Option<bounds::Term>],
) -> Option<(bounds::Term, bounds::Term, bool)> {
    if params.len() != args.len() {
        return None;
    }
    let mut map = BTreeMap::new();
    for (p, a) in params.iter().zip(args) {
        if let Some(a) = a {
            map.insert(p.clone(), a.clone());
        }
    }
    // A goal mentioning a parameter with no parsed actual cannot be
    // substituted — `subst` returns None for it because the parameter
    // is absent from the map only if the base survives; guard that.
    let relevant = |t: &bounds::Term| {
        params
            .iter()
            .enumerate()
            .any(|(i, p)| args[i].is_none() && (t.base == *p || t.base == format!("len({p})")))
    };
    if relevant(&goal.0) || relevant(&goal.1) {
        return None;
    }
    let a = bounds::subst(&goal.0, &map)?;
    let b = bounds::subst(&goal.1, &map)?;
    Some((a, b, goal.2))
}

/// Consult the `index_bounds` marker plus the legacy spellings; a hit
/// counts into the `[dataflow.*]` suppression table.
fn index_allowed(
    src: &SourceFile,
    line: usize,
    krate: &str,
    dataflow: &mut BTreeMap<String, usize>,
) -> bool {
    for rule in ["index_bounds", "panic_path", "par_index"] {
        if src.allowed(line, rule) {
            *dataflow.entry(krate.to_string()).or_default() += 1;
            return true;
        }
    }
    false
}

/// Render a call path plus the sink as `file:line → file:line → …`.
///
/// Hop 0 is the kernel's declaration; each later hop is the call site
/// (in the caller's file); the final element is the sink itself.
fn render_path(
    graph: &CallGraph,
    path: &[crate::callgraph::PathHop],
    sink_path: &Path,
    sink_line: usize,
) -> String {
    let mut parts = Vec::new();
    let root = &graph.nodes[path[0].node];
    parts.push(format!("{}:{}", root.path.display(), root.func.decl_line));
    for i in 1..path.len() {
        let caller = &graph.nodes[path[i - 1].node];
        parts.push(format!("{}:{}", caller.path.display(), path[i].via_line));
    }
    parts.push(format!("{}:{}", sink_path.display(), sink_line));
    format!("path: {}", parts.join(" → "))
}

/// Check the measured inventory against the committed baseline,
/// rendering ratchet violations as diagnostics against the baseline
/// file.
pub fn check_baseline(
    root: &Path,
    inventory: &Inventory,
    test_counts: &BTreeMap<String, usize>,
    dataflow: &BTreeMap<String, usize>,
    stale: &BTreeMap<String, usize>,
    summary: &BTreeMap<String, usize>,
) -> Result<Vec<Diagnostic>, String> {
    let base = baseline::load(&root.join(BASELINE_FILE))?;
    let at = |rule: &'static str| {
        move |e: baseline::RatchetError| {
            Diagnostic::new(Path::new(BASELINE_FILE), 1, rule, e.to_string())
        }
    };
    let unsafe_errs = baseline::check(&base, inventory).into_iter().map(at("unsafe_ratchet"));
    let test_errs = baseline::check_tests(&base, test_counts).into_iter().map(at("test_ratchet"));
    let df_errs = baseline::check_dataflow(&base, dataflow).into_iter().map(at("dataflow_ratchet"));
    let stale_errs = baseline::check_stale(&base, stale).into_iter().map(at("stale_ratchet"));
    let sum_errs = baseline::check_summary(&base, summary).into_iter().map(at("summary_ratchet"));
    Ok(unsafe_errs.chain(test_errs).chain(df_errs).chain(stale_errs).chain(sum_errs).collect())
}

/// Rewrite the baseline from the current inventory and count maps,
/// carrying forward existing reasons. Returns the written path.
pub fn update_baseline(
    root: &Path,
    inventory: &Inventory,
    test_counts: &BTreeMap<String, usize>,
    dataflow: &BTreeMap<String, usize>,
    stale: &BTreeMap<String, usize>,
    summary: &BTreeMap<String, usize>,
) -> Result<PathBuf, String> {
    let path = root.join(BASELINE_FILE);
    let prev = baseline::load(&path).unwrap_or_else(|_| Baseline::default());
    let next = baseline::from_inventory(inventory, test_counts, dataflow, stale, summary, &prev);
    std::fs::write(&path, baseline::serialize(&next))
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

/// Delete the markers behind `stale_marker` diagnostics. A line whose
/// code part is blank (marker-only line) is removed whole; a trailing
/// marker is cut at its `//`. Returns the number of markers removed.
pub fn remove_stale_markers(root: &Path, diagnostics: &[Diagnostic]) -> Result<usize, String> {
    let mut by_file: BTreeMap<&Path, Vec<usize>> = BTreeMap::new();
    for d in diagnostics {
        if d.rule == "stale_marker" {
            by_file.entry(d.path.as_path()).or_default().push(d.line);
        }
    }
    let mut removed = 0usize;
    for (rel, mut lines) in by_file {
        let abs = root.join(rel);
        let text =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let had_final_newline = text.ends_with('\n');
        let mut out: Vec<String> = text.lines().map(str::to_string).collect();
        lines.sort_unstable();
        lines.dedup();
        for &lineno in lines.iter().rev() {
            let Some(raw) = out.get(lineno - 1) else { continue };
            let cut =
                ["// lint: allow(", "// analyze: allow("].iter().filter_map(|p| raw.find(p)).min();
            let Some(cut) = cut else { continue };
            if raw[..cut].trim().is_empty() {
                out.remove(lineno - 1);
            } else {
                let trimmed = raw[..cut].trim_end().to_string();
                out[lineno - 1] = trimmed;
            }
            removed += 1;
        }
        let mut body = out.join("\n");
        if had_final_newline {
            body.push('\n');
        }
        std::fs::write(&abs, body).map_err(|e| format!("writing {}: {e}", abs.display()))?;
    }
    Ok(removed)
}

/// Load a prior `--format json` report for `--diff` gating: the
/// returned set of (path, rule, message) identities is subtracted from
/// the current run, leaving only new findings.
pub fn load_diff_baseline(path: &Path) -> Result<BTreeSet<(String, String, String)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: not JSON: {e}", path.display()))?;
    let Some(diags) = doc.get("diagnostics").and_then(|d| d.as_arr()) else {
        return Err(format!(
            "{}: not an analyze report (missing `diagnostics` array)",
            path.display()
        ));
    };
    let mut seen = BTreeSet::new();
    for d in diags {
        let field = |k: &str| d.get(k).and_then(|v| v.as_str()).map(str::to_string);
        match (field("path"), field("rule"), field("message")) {
            (Some(p), Some(r), Some(m)) => {
                seen.insert((p, r, m));
            }
            _ => {
                return Err(format!(
                    "{}: malformed diagnostic entry (need path/rule/message strings)",
                    path.display()
                ));
            }
        }
    }
    Ok(seen)
}

/// Subtract a `--diff` baseline from `diagnostics`, in place.
pub fn apply_diff(diagnostics: &mut Vec<Diagnostic>, seen: &BTreeSet<(String, String, String)>) {
    diagnostics.retain(|d| {
        let key =
            (d.path.to_string_lossy().replace('\\', "/"), d.rule.to_string(), d.message.clone());
        !seen.contains(&key)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an `Analysis` from in-memory sources by writing them to a
    /// temp dir (the loader wants real files).
    fn analysis(srcs: &[(&str, &str)]) -> Analysis {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("xtask-analyze-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut paths = Vec::new();
        for (rel, src) in srcs {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(&p, src).unwrap();
            paths.push(PathBuf::from(rel));
        }
        Analysis::load(&dir, &paths).unwrap()
    }

    #[test]
    fn panic_path_reports_shortest_route() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u32 {
    middle(v)
}
fn middle(v: &[u32]) -> u32 {
    bottom(v)
}
fn bottom(v: &[u32]) -> u32 {
    v.first().unwrap() + 1
}
",
        )]);
        let d = a.diagnostics();
        let p: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "panic_path").collect();
        assert_eq!(p.len(), 1, "{d:?}");
        assert_eq!(p[0].line, 9);
        assert!(p[0].message.contains("2 calls away"), "{}", p[0].message);
        assert_eq!(
            p[0].notes[0],
            "path: crates/a/src/lib.rs:2 → crates/a/src/lib.rs:3 → \
             crates/a/src/lib.rs:6 → crates/a/src/lib.rs:9"
        );
        assert!(p[0].notes[1].contains("`kernel` → `middle` → `bottom`"));
    }

    #[test]
    fn marker_silences_panic_path() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u32 {
    // analyze: allow(panic_path): v is non-empty by construction
    v.first().unwrap() + 1
}
",
        )]);
        assert!(a.diagnostics().iter().all(|d| d.rule != "panic_path"));
    }

    #[test]
    fn hot_alloc_flags_par_closures_only_above_marker_depth() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
pub fn f(v: &[u32]) -> Vec<String> {
    v.par_iter()
        .map(|x| format!(\"{x}\"))
        .collect()
}
",
        )]);
        let d = a.diagnostics();
        let h: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "hot_alloc").collect();
        assert_eq!(h.len(), 1, "{d:?}");
        assert_eq!(h[0].line, 3, "format! flagged, terminator collect not");
    }

    #[test]
    fn obs_hot_path_flags_par_spans_and_kernel_loop_flights() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in v {
        gdelt_obs::flight_warn(\"a\", \"row\", String::new());
        total += u64::from(*x);
    }
    total
}
pub fn par(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            let _s = gdelt_obs::span(\"a\", \"row\");
            u64::from(*x)
        })
        .collect()
}
pub fn fine(v: &[u32]) -> u64 {
    let _s = gdelt_obs::span(\"a\", \"whole\");
    v.iter().map(|x| u64::from(*x)).sum()
}
",
        )]);
        let d = a.diagnostics();
        let h: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "obs_hot_path").collect();
        assert_eq!(h.len(), 2, "{d:?}");
        assert_eq!(h[0].line, 5, "flight event in the kernel loop");
        assert!(h[0].message.contains("per-row loop"), "{}", h[0].message);
        assert_eq!(h[1].line, 13, "span in the parallel closure");
        assert!(h[1].message.contains("parallel closure"), "{}", h[1].message);
    }

    #[test]
    fn obs_hot_path_marker_and_plain_loops_are_silent() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
pub fn par(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            // analyze: allow(obs_hot_path): coarse partitions, not rows
            let _s = gdelt_obs::span(\"a\", \"part\");
            u64::from(*x)
        })
        .collect()
}
pub fn warm(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in v {
        gdelt_obs::flight_warn(\"a\", \"row\", String::new());
        total += u64::from(*x);
    }
    total
}
",
        )]);
        let d = a.diagnostics();
        // The marker silences the par span; the loop flight event sits
        // in a function no `no_panic` root reaches, so it is not hot.
        assert!(d.iter().all(|d| d.rule != "obs_hot_path"), "{d:?}");
    }

    #[test]
    fn lock_par_and_cycle_fire() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
pub fn f(s: &S, v: &[u32]) {
    v.par_iter().for_each(|_| {
        let g = s.a.lock().unwrap();
        drop(g);
    });
}
pub fn order_ab(s: &S) {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    drop(gb);
    drop(ga);
}
pub fn order_ba(s: &S) {
    let gb = s.b.lock().unwrap();
    let ga = s.a.lock().unwrap();
    drop(ga);
    drop(gb);
}
",
        )]);
        let d = a.diagnostics();
        assert!(d.iter().any(|d| d.rule == "lock_par" && d.line == 5), "{d:?}");
        assert!(d.iter().any(|d| d.rule == "lock_cycle"), "{d:?}");
    }

    #[test]
    fn seqcst_flagged_under_atomic_protocol_and_legacy_marker_suppresses() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::atomic::{AtomicU32, Ordering};
pub fn bump(c: &AtomicU32) {
    c.fetch_add(1, Ordering::SeqCst);
}
pub fn bump_justified(d: &AtomicU32) {
    // analyze: allow(seqcst): total order needed for the epoch handshake
    d.fetch_add(1, Ordering::SeqCst);
}
",
        )]);
        let run = a.run();
        let s: Vec<&Diagnostic> =
            run.diagnostics.iter().filter(|d| d.rule == "atomic_protocol").collect();
        assert_eq!(s.len(), 1, "{:?}", run.diagnostics);
        assert_eq!(s[0].line, 3);
        assert!(s[0].message.contains("SeqCst"), "{}", s[0].message);
        // The legacy `seqcst` marker suppressed the second site, is
        // counted in the [summary.*] table, and is not stale.
        assert_eq!(run.summary.get("a"), Some(&1));
        assert!(!run.diagnostics.iter().any(|d| d.rule == "stale_marker"), "{:?}", run.diagnostics);
    }

    #[test]
    fn atomic_protocol_pairs_stores_and_loads_across_functions() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::atomic::{AtomicU64, Ordering};
pub fn publish(g: &AtomicU64) {
    g.store(1, Ordering::Relaxed);
}
pub fn consume(g: &AtomicU64) -> u64 {
    g.load(Ordering::Acquire)
}
pub fn counter_ok(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
}
pub fn counter_read(hits: &AtomicU64) -> u64 {
    hits.load(Ordering::Relaxed)
}
",
        )]);
        let d = a.diagnostics();
        let s: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "atomic_protocol").collect();
        assert_eq!(s.len(), 1, "{d:?}");
        assert_eq!(s[0].line, 3, "the Relaxed store to the Acquire-loaded field");
        assert!(s[0].message.contains("synchronizes-with nothing"), "{}", s[0].message);
        assert!(!d.iter().any(|x| x.line >= 8), "all-Relaxed counters are clean: {d:?}");
    }

    #[test]
    fn atomic_protocol_flags_unconsumed_release_store() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::atomic::{AtomicU64, Ordering};
pub fn publish(g: &AtomicU64) {
    g.store(1, Ordering::Release);
}
pub fn peek(g: &AtomicU64) -> u64 {
    g.load(Ordering::Relaxed)
}
",
        )]);
        let d = a.diagnostics();
        let s: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "atomic_protocol").collect();
        assert_eq!(s.len(), 1, "{d:?}");
        assert_eq!(s[0].line, 3);
        assert!(s[0].message.contains("nothing consumes"), "{}", s[0].message);
    }

    #[test]
    fn atomic_protocol_sees_test_code() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::atomic::{AtomicU32, Ordering};
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let c = std::sync::atomic::AtomicU32::new(0);
        c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}
",
        )]);
        let d = a.diagnostics();
        assert!(
            d.iter().any(|d| d.rule == "atomic_protocol" && d.line == 7),
            "test-code orderings are findings too: {d:?}"
        );
    }

    #[test]
    fn par_race_direct_and_transitive() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
static mut TOTAL: u64 = 0;
pub fn direct(xs: &[u32], out: &mut Vec<u32>) {
    xs.par_iter().for_each(|x| {
        out.push(*x);
    });
}
pub fn transitive(xs: &[u32]) {
    xs.par_iter().for_each(|x| {
        bump(*x as u64);
    });
}
fn bump(n: u64) {
    unsafe { TOTAL += n };
}
",
        )]);
        let d = a.diagnostics();
        let races: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "par_race").collect();
        assert!(races.iter().any(|d| d.line == 4 && d.message.contains("`out`")), "{races:?}");
        let t = races
            .iter()
            .find(|d| d.line == 9 && d.message.contains("`bump`"))
            .unwrap_or_else(|| panic!("transitive race missing: {races:?}"));
        assert!(t.message.contains("TOTAL"), "{}", t.message);
        assert!(
            t.notes.iter().any(|n| n.starts_with("path: ") && n.contains(":13")),
            "witness chain reaches the write: {:?}",
            t.notes
        );
    }

    #[test]
    fn par_race_marker_suppresses_and_counts() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
pub fn f(xs: &[u32], out: &mut Vec<u32>) {
    xs.par_iter().for_each(|x| {
        // analyze: allow(par_race): single consumer joins before reads
        out.push(*x);
    });
}
",
        )]);
        let run = a.run();
        assert!(!run.diagnostics.iter().any(|d| d.rule == "par_race"), "{:?}", run.diagnostics);
        assert_eq!(run.summary.get("a"), Some(&1));
    }

    #[test]
    fn interproc_bounds_discharges_via_call_site_facts() {
        // `helper` cannot prove `i < len(xs)` locally; both callers
        // establish it, so the obligation discharges and nothing is
        // reported — with no marker needed at the site.
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(xs: &[u32]) -> u32 {
    let mut t = 0;
    for i in 0..xs.len() {
        t += helper(xs, i);
    }
    t
}
fn helper(xs: &[u32], i: usize) -> u32 {
    xs[i]
}
",
        )]);
        let d = a.diagnostics();
        assert!(!d.iter().any(|x| x.rule == "index_bounds"), "{d:?}");
    }

    #[test]
    fn interproc_bounds_reports_undischarged_at_root_with_chain() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(xs: &[u32], k: usize) -> u32 {
    helper(xs, k)
}
fn helper(xs: &[u32], i: usize) -> u32 {
    xs[i]
}
",
        )]);
        let d = a.diagnostics();
        let s: Vec<&Diagnostic> = d.iter().filter(|x| x.rule == "index_bounds").collect();
        assert_eq!(s.len(), 1, "{d:?}");
        assert_eq!(s[0].line, 2, "reported at the no_panic root");
        assert!(s[0].message.contains("precondition"), "{}", s[0].message);
        assert!(s[0].message.contains("k < len(xs)"), "{}", s[0].message);
        assert!(
            s[0].notes.iter().any(|n| n.starts_with("path: ") && n.contains(":6")),
            "chain reaches the index site: {:?}",
            s[0].notes
        );
    }

    #[test]
    fn interproc_bounds_origin_marker_still_suppresses() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(xs: &[u32], k: usize) -> u32 {
    helper(xs, k)
}
fn helper(xs: &[u32], i: usize) -> u32 {
    // analyze: allow(index_bounds): caller guarantees i < xs.len()
    xs[i]
}
",
        )]);
        let run = a.run();
        assert!(!run.diagnostics.iter().any(|x| x.rule == "index_bounds"), "{:?}", run.diagnostics);
        assert_eq!(run.dataflow.get("a"), Some(&1), "suppression counted at the origin");
        assert!(
            !run.diagnostics.iter().any(|d| d.rule == "stale_marker"),
            "consulted marker is not stale: {:?}",
            run.diagnostics
        );
    }

    #[test]
    fn inventory_counts_unsafe_per_crate() {
        let a = analysis(&[
            (
                "crates/a/src/lib.rs",
                "pub fn f() {\n    // SAFETY: test\n    unsafe { std::hint::spin_loop() }\n}\n",
            ),
            ("crates/b/src/lib.rs", "pub fn g() {}\n"),
        ]);
        let inv = a.inventory();
        assert_eq!(inv.count("a"), 1);
        assert_eq!(inv.count("b"), 0);
    }
}
