//! The semantic pass behind `cargo xtask analyze`.
//!
//! Builds the workspace call graph ([`crate::callgraph`]) over the
//! parsed token streams ([`crate::lex`], [`crate::parse`]) and runs
//! five analyses:
//!
//! * `panic_path` — every function annotated `// analyze: no_panic` is
//!   a root; any panic sink reachable from a root through the call
//!   graph is reported with the shortest call path rendered as
//!   `file:line → file:line → …`;
//! * `hot_alloc` — allocations inside rayon parallel closures
//!   (anywhere in crate sources) and inside loop bodies of
//!   panic-freedom kernels;
//! * `obs_hot_path` — observability recording calls (`gdelt_obs`
//!   spans, flight events, registry lookups) inside parallel closures
//!   or loop bodies of panic-freedom kernels: spans buffer a record
//!   and flight events take the ring lock, so per-row recording
//!   serializes exactly the regions the paper parallelizes;
//! * `lock_par` — `Mutex`/`RwLock` acquisition inside a parallel
//!   closure serializes the region;
//! * `seqcst` — `Ordering::SeqCst` where the workspace's counters
//!   never participate in a synchronizes-with edge; `Relaxed` (with an
//!   invariant comment) or a justified marker is required;
//! * `lock_cycle` — the lexical lock-order graph must be acyclic.
//!
//! Plus the ratcheting unsafe inventory against `analyze-baseline.toml`
//! ([`crate::baseline`]). Findings are suppressed per-line with
//! `// analyze: allow(<rule>): <reason>` (the legacy `lint:` markers
//! `no_panic` / `par_index` also silence sinks they already justify).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::baseline::{self, Baseline, Inventory};
use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lex::tokenize;
use crate::parse::{parse_file, ParsedFile, SinkKind};
use crate::source::SourceFile;
use crate::walk;

/// The baseline file name, at the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.toml";

/// A loaded, parsed workspace ready for analysis.
pub struct Analysis {
    /// Per-file: workspace-relative path, line model, parsed facts,
    /// in-test-tree flag.
    files: Vec<(PathBuf, SourceFile, ParsedFile, bool)>,
    /// The call graph over every file.
    graph: CallGraph,
}

/// Is this workspace-relative path in a tree whose functions are only
/// callable from their own file (integration tests, benches, examples)?
fn in_test_tree(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("tests/")
        || s.starts_with("examples/")
        || s.contains("/tests/")
        || s.contains("/benches/")
        || s.contains("/examples/")
}

/// Is this path a crate `src/` file (scope of the `hot_alloc` rule)?
fn in_crate_src(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("crates/") && s.contains("/src/")
}

impl Analysis {
    /// Parse `paths` (workspace-relative to `root`) and build the graph.
    pub fn load(root: &Path, paths: &[PathBuf]) -> Result<Analysis, String> {
        let mut files = Vec::new();
        for p in paths {
            let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
            let src = std::fs::read_to_string(&abs)
                .map_err(|e| format!("reading {}: {e}", abs.display()))?;
            let rel = abs.strip_prefix(root).unwrap_or(p).to_path_buf();
            let file = SourceFile::parse(&src);
            let tokens = tokenize(&file);
            let parsed = parse_file(&file, &tokens);
            let test_tree = in_test_tree(&rel);
            files.push((rel, file, parsed, test_tree));
        }
        let graph_input: Vec<(PathBuf, ParsedFile, bool)> =
            files.iter().map(|(rel, _, parsed, tt)| (rel.clone(), parsed.clone(), *tt)).collect();
        let deps = crate::deps::CrateDeps::load(root)
            .map_err(|e| format!("reading workspace manifests: {e}"))?;
        let graph = CallGraph::build_filtered(&graph_input, Some(&deps));
        Ok(Analysis { files, graph })
    }

    /// Load every workspace file.
    pub fn load_workspace(root: &Path) -> Result<Analysis, String> {
        let paths =
            walk::workspace_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
        Analysis::load(root, &paths)
    }

    /// Run every analysis; diagnostics are sorted by (path, line, rule).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.panic_paths(&mut out);
        self.hot_allocs(&mut out);
        self.obs_hot_paths(&mut out);
        self.lock_discipline(&mut out);
        self.seqcst(&mut out);
        self.lock_cycles(&mut out);
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        out
    }

    /// The unsafe inventory for the baseline ratchet.
    pub fn inventory(&self) -> Inventory {
        let mut inv = Inventory::default();
        for (rel, _, parsed, _) in &self.files {
            let krate = walk::crate_of(rel);
            let rel_s = rel.to_string_lossy().replace('\\', "/");
            inv.record(&krate, &rel_s, parsed.unsafe_lines.len());
        }
        inv
    }

    /// Per-crate `#[test]` counts for the test-count ratchet. Counted
    /// on comment-stripped code lines so a commented-out attribute does
    /// not register; top-level `tests/` files bucket under `tests`.
    pub fn test_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (rel, src, _, _) in &self.files {
            let krate = walk::crate_of(rel);
            let n = src.lines.iter().filter(|l| l.code.trim() == "#[test]").count();
            if n > 0 {
                *counts.entry(krate).or_default() += n;
            }
        }
        counts
    }

    /// The `SourceFile` backing a graph node's file.
    fn source_of(&self, file_idx: usize) -> &SourceFile {
        &self.files[file_idx].1
    }

    /// `panic_path`: BFS from each `no_panic` root; report each
    /// unsuppressed sink in every reachable function once, with the
    /// shortest path from the nearest root.
    fn panic_paths(&self, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = self
            .graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.func.no_panic && !n.func.is_test)
            .map(|(i, _)| i)
            .collect();
        // node -> best (hops, root, path) over all roots.
        let mut best: BTreeMap<usize, (usize, usize, Vec<crate::callgraph::PathHop>)> =
            BTreeMap::new();
        for &root in &roots {
            let paths = self.graph.shortest_paths(root);
            for (node, path) in paths.into_iter().enumerate() {
                let Some(path) = path else { continue };
                let hops = path.len() - 1;
                let better = best.get(&node).map(|(h, _, _)| hops < *h).unwrap_or(true);
                if better {
                    best.insert(node, (hops, root, path));
                }
            }
        }
        for (&node, (hops, root, path)) in &best {
            let n = &self.graph.nodes[node];
            let src = self.source_of(n.file_idx);
            let root_n = &self.graph.nodes[*root];
            for sink in &n.func.sinks {
                // `analyze: allow(panic_path)` plus the legacy line-lint
                // markers silence a sink.
                let legacy = match sink.kind {
                    SinkKind::Call => "no_panic",
                    SinkKind::Index => "par_index",
                };
                if src.allowed(sink.line, "panic_path") || src.allowed(sink.line, legacy) {
                    continue;
                }
                let message = if *hops == 0 {
                    format!(
                        "panic sink {} inside `no_panic` kernel `{}`",
                        sink.what,
                        root_n.func.display()
                    )
                } else {
                    format!(
                        "panic sink {} reachable from `no_panic` kernel `{}` ({} call{} away)",
                        sink.what,
                        root_n.func.display(),
                        hops,
                        if *hops == 1 { "" } else { "s" }
                    )
                };
                let mut d = Diagnostic::new(&n.path, sink.line, "panic_path", message);
                d.notes.push(render_path(&self.graph, path, &n.path, sink.line));
                if *hops > 0 {
                    let chain: Vec<String> = path
                        .iter()
                        .map(|h| format!("`{}`", self.graph.nodes[h.node].func.display()))
                        .collect();
                    d.notes.push(format!("call chain: {}", chain.join(" → ")));
                }
                out.push(d);
            }
        }
    }

    /// `hot_alloc`: allocations inside parallel closures (crate `src/`
    /// scope) and loop-body allocations in panic-freedom kernels.
    fn hot_allocs(&self, out: &mut Vec<Diagnostic>) {
        // Functions on a no_panic root's reachable set count as kernels
        // for the loop rule.
        let mut hot = vec![false; self.graph.nodes.len()];
        for (i, n) in self.graph.nodes.iter().enumerate() {
            if n.func.no_panic && !n.func.is_test {
                for (j, p) in self.graph.shortest_paths(i).iter().enumerate() {
                    if p.is_some() {
                        hot[j] = true;
                    }
                }
            }
        }
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for a in &n.func.allocs {
                let flagged = a.in_par || (a.in_loop && hot[id]);
                if !flagged || src.allowed(a.line, "hot_alloc") {
                    continue;
                }
                let ctx = if a.in_par {
                    "a parallel closure"
                } else {
                    "a per-row loop of a `no_panic` kernel"
                };
                out.push(Diagnostic::new(
                    &n.path,
                    a.line,
                    "hot_alloc",
                    format!(
                        "allocation {} inside {ctx} in `{}`; hoist it out of the hot \
                         region or justify with `// analyze: allow(hot_alloc): <reason>`",
                        a.what,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `obs_hot_path`: `gdelt_obs` recording calls inside parallel
    /// closures (crate `src/` scope) or loop bodies of panic-freedom
    /// kernels. One span per partition is the intended grain; one per
    /// row buys nothing and costs a sink append (or, for flight
    /// events, the ring lock) per element.
    fn obs_hot_paths(&self, out: &mut Vec<Diagnostic>) {
        /// Recording entry points plus the registry lookups — the
        /// lookups take the registry lock, so a hot loop must resolve
        /// its handle once outside (see `engine::query::kernel_metrics`).
        const OBS_CALLS: [&str; 9] = [
            "span",
            "span_args",
            "flight",
            "flight_info",
            "flight_warn",
            "flight_error",
            "counter",
            "gauge",
            "histogram",
        ];
        let mut hot = vec![false; self.graph.nodes.len()];
        for (i, n) in self.graph.nodes.iter().enumerate() {
            if n.func.no_panic && !n.func.is_test {
                for (j, p) in self.graph.shortest_paths(i).iter().enumerate() {
                    if p.is_some() {
                        hot[j] = true;
                    }
                }
            }
        }
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for c in &n.func.calls {
                let flagged =
                    OBS_CALLS.contains(&c.name.as_str()) && (c.in_par || (c.in_loop && hot[id]));
                if !flagged || src.allowed(c.line, "obs_hot_path") {
                    continue;
                }
                let ctx = if c.in_par {
                    "a parallel closure"
                } else {
                    "a per-row loop of a `no_panic` kernel"
                };
                out.push(Diagnostic::new(
                    &n.path,
                    c.line,
                    "obs_hot_path",
                    format!(
                        "observability call `{}(..)` inside {ctx} in `{}`; record once \
                         per partition (resolve registry handles outside the loop) or \
                         justify with `// analyze: allow(obs_hot_path): <reason>`",
                        c.name,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `lock_par`: lock acquisition inside a parallel closure.
    fn lock_discipline(&self, out: &mut Vec<Diagnostic>) {
        for n in &self.graph.nodes {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for l in &n.func.locks {
                if !l.in_par || src.allowed(l.line, "lock_par") {
                    continue;
                }
                out.push(Diagnostic::new(
                    &n.path,
                    l.line,
                    "lock_par",
                    format!(
                        "lock `{}` acquired inside a parallel closure in `{}`; \
                         contention serializes the region — use per-worker state \
                         and merge, or justify the lock",
                        l.name,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `seqcst`: flag `Ordering::SeqCst` — the workspace's atomics are
    /// counters merged after `join`, which never need a total order.
    fn seqcst(&self, out: &mut Vec<Diagnostic>) {
        for n in &self.graph.nodes {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for &line in &n.func.seqcst {
                if src.allowed(line, "seqcst") {
                    continue;
                }
                out.push(Diagnostic::new(
                    &n.path,
                    line,
                    "seqcst",
                    format!(
                        "`Ordering::SeqCst` in `{}`: workspace counters never \
                         synchronize-with another access — use `Relaxed` with an \
                         invariant comment, or justify the total order",
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `lock_cycle`: the union of every function's lexical lock-order
    /// edges must be acyclic.
    fn lock_cycles(&self, out: &mut Vec<Diagnostic>) {
        // name -> [(successor, node id, line)]
        let mut adj: BTreeMap<&str, Vec<(&str, usize, usize)>> = BTreeMap::new();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for e in &n.func.lock_edges {
                if src.allowed(e.line, "lock_cycle") {
                    continue;
                }
                adj.entry(e.held.as_str()).or_default().push((e.then.as_str(), id, e.line));
            }
        }
        // DFS with an explicit stack of lock names; a back edge into the
        // current path is a cycle.
        let names: Vec<&str> = adj.keys().copied().collect();
        let mut done: Vec<&str> = Vec::new();
        for &start in &names {
            if done.contains(&start) {
                continue;
            }
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            while let Some(top) = stack.len().checked_sub(1) {
                let (name, next) = stack[top];
                let edges = adj.get(name).map(|v| v.as_slice()).unwrap_or(&[]);
                if next >= edges.len() {
                    stack.pop();
                    path.pop();
                    if !done.contains(&name) {
                        done.push(name);
                    }
                    continue;
                }
                let (succ, node_id, line) = edges[next];
                stack[top].1 += 1;
                if let Some(pos) = path.iter().position(|&p| p == succ) {
                    // Cycle: path[pos..] + succ.
                    let mut cycle: Vec<&str> = path[pos..].to_vec();
                    cycle.push(succ);
                    let n = &self.graph.nodes[node_id];
                    out.push(Diagnostic::new(
                        &n.path,
                        line,
                        "lock_cycle",
                        format!(
                            "lock-order cycle: {} — acquiring `{}` while holding `{}` \
                             inverts an order established elsewhere; pick one global order",
                            cycle.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>().join(" → "),
                            succ,
                            name,
                        ),
                    ));
                    continue;
                }
                if !done.contains(&succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                }
            }
        }
    }
}

/// Render a call path plus the sink as `file:line → file:line → …`.
///
/// Hop 0 is the kernel's declaration; each later hop is the call site
/// (in the caller's file); the final element is the sink itself.
fn render_path(
    graph: &CallGraph,
    path: &[crate::callgraph::PathHop],
    sink_path: &Path,
    sink_line: usize,
) -> String {
    let mut parts = Vec::new();
    let root = &graph.nodes[path[0].node];
    parts.push(format!("{}:{}", root.path.display(), root.func.decl_line));
    for i in 1..path.len() {
        let caller = &graph.nodes[path[i - 1].node];
        parts.push(format!("{}:{}", caller.path.display(), path[i].via_line));
    }
    parts.push(format!("{}:{}", sink_path.display(), sink_line));
    format!("path: {}", parts.join(" → "))
}

/// Check the measured inventory against the committed baseline,
/// rendering ratchet violations as diagnostics against the baseline
/// file.
pub fn check_baseline(
    root: &Path,
    inventory: &Inventory,
    test_counts: &BTreeMap<String, usize>,
) -> Result<Vec<Diagnostic>, String> {
    let base = baseline::load(&root.join(BASELINE_FILE))?;
    let unsafe_errs = baseline::check(&base, inventory)
        .into_iter()
        .map(|e| Diagnostic::new(Path::new(BASELINE_FILE), 1, "unsafe_ratchet", e.to_string()));
    let test_errs = baseline::check_tests(&base, test_counts)
        .into_iter()
        .map(|e| Diagnostic::new(Path::new(BASELINE_FILE), 1, "test_ratchet", e.to_string()));
    Ok(unsafe_errs.chain(test_errs).collect())
}

/// Rewrite the baseline from the current inventory and test counts,
/// carrying forward existing reasons. Returns the written path.
pub fn update_baseline(
    root: &Path,
    inventory: &Inventory,
    test_counts: &BTreeMap<String, usize>,
) -> Result<PathBuf, String> {
    let path = root.join(BASELINE_FILE);
    let prev = baseline::load(&path).unwrap_or_else(|_| Baseline::default());
    let next = baseline::from_inventory(inventory, test_counts, &prev);
    std::fs::write(&path, baseline::serialize(&next))
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an `Analysis` from in-memory sources by writing them to a
    /// temp dir (the loader wants real files).
    fn analysis(srcs: &[(&str, &str)]) -> Analysis {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("xtask-analyze-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut paths = Vec::new();
        for (rel, src) in srcs {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(&p, src).unwrap();
            paths.push(PathBuf::from(rel));
        }
        Analysis::load(&dir, &paths).unwrap()
    }

    #[test]
    fn panic_path_reports_shortest_route() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u32 {
    middle(v)
}
fn middle(v: &[u32]) -> u32 {
    bottom(v)
}
fn bottom(v: &[u32]) -> u32 {
    v.first().unwrap() + 1
}
",
        )]);
        let d = a.diagnostics();
        let p: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "panic_path").collect();
        assert_eq!(p.len(), 1, "{d:?}");
        assert_eq!(p[0].line, 9);
        assert!(p[0].message.contains("2 calls away"), "{}", p[0].message);
        assert_eq!(
            p[0].notes[0],
            "path: crates/a/src/lib.rs:2 → crates/a/src/lib.rs:3 → \
             crates/a/src/lib.rs:6 → crates/a/src/lib.rs:9"
        );
        assert!(p[0].notes[1].contains("`kernel` → `middle` → `bottom`"));
    }

    #[test]
    fn marker_silences_panic_path() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u32 {
    // analyze: allow(panic_path): v is non-empty by construction
    v.first().unwrap() + 1
}
",
        )]);
        assert!(a.diagnostics().iter().all(|d| d.rule != "panic_path"));
    }

    #[test]
    fn hot_alloc_flags_par_closures_only_above_marker_depth() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
pub fn f(v: &[u32]) -> Vec<String> {
    v.par_iter()
        .map(|x| format!(\"{x}\"))
        .collect()
}
",
        )]);
        let d = a.diagnostics();
        let h: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "hot_alloc").collect();
        assert_eq!(h.len(), 1, "{d:?}");
        assert_eq!(h[0].line, 3, "format! flagged, terminator collect not");
    }

    #[test]
    fn obs_hot_path_flags_par_spans_and_kernel_loop_flights() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in v {
        gdelt_obs::flight_warn(\"a\", \"row\", String::new());
        total += u64::from(*x);
    }
    total
}
pub fn par(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            let _s = gdelt_obs::span(\"a\", \"row\");
            u64::from(*x)
        })
        .collect()
}
pub fn fine(v: &[u32]) -> u64 {
    let _s = gdelt_obs::span(\"a\", \"whole\");
    v.iter().map(|x| u64::from(*x)).sum()
}
",
        )]);
        let d = a.diagnostics();
        let h: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "obs_hot_path").collect();
        assert_eq!(h.len(), 2, "{d:?}");
        assert_eq!(h[0].line, 5, "flight event in the kernel loop");
        assert!(h[0].message.contains("per-row loop"), "{}", h[0].message);
        assert_eq!(h[1].line, 13, "span in the parallel closure");
        assert!(h[1].message.contains("parallel closure"), "{}", h[1].message);
    }

    #[test]
    fn obs_hot_path_marker_and_plain_loops_are_silent() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
pub fn par(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            // analyze: allow(obs_hot_path): coarse partitions, not rows
            let _s = gdelt_obs::span(\"a\", \"part\");
            u64::from(*x)
        })
        .collect()
}
pub fn warm(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in v {
        gdelt_obs::flight_warn(\"a\", \"row\", String::new());
        total += u64::from(*x);
    }
    total
}
",
        )]);
        let d = a.diagnostics();
        // The marker silences the par span; the loop flight event sits
        // in a function no `no_panic` root reaches, so it is not hot.
        assert!(d.iter().all(|d| d.rule != "obs_hot_path"), "{d:?}");
    }

    #[test]
    fn lock_par_and_cycle_fire() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
pub fn f(s: &S, v: &[u32]) {
    v.par_iter().for_each(|_| {
        let g = s.a.lock().unwrap();
        drop(g);
    });
}
pub fn order_ab(s: &S) {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    drop(gb);
    drop(ga);
}
pub fn order_ba(s: &S) {
    let gb = s.b.lock().unwrap();
    let ga = s.a.lock().unwrap();
    drop(ga);
    drop(gb);
}
",
        )]);
        let d = a.diagnostics();
        assert!(d.iter().any(|d| d.rule == "lock_par" && d.line == 5), "{d:?}");
        assert!(d.iter().any(|d| d.rule == "lock_cycle"), "{d:?}");
    }

    #[test]
    fn seqcst_flagged_and_suppressible() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::atomic::{AtomicU32, Ordering};
pub fn bump(c: &AtomicU32) {
    c.fetch_add(1, Ordering::SeqCst);
}
pub fn bump_justified(c: &AtomicU32) {
    // analyze: allow(seqcst): total order needed for the epoch handshake
    c.fetch_add(1, Ordering::SeqCst);
}
",
        )]);
        let d = a.diagnostics();
        let s: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "seqcst").collect();
        assert_eq!(s.len(), 1, "{d:?}");
        assert_eq!(s[0].line, 3);
    }

    #[test]
    fn inventory_counts_unsafe_per_crate() {
        let a = analysis(&[
            (
                "crates/a/src/lib.rs",
                "pub fn f() {\n    // SAFETY: test\n    unsafe { std::hint::spin_loop() }\n}\n",
            ),
            ("crates/b/src/lib.rs", "pub fn g() {}\n"),
        ]);
        let inv = a.inventory();
        assert_eq!(inv.count("a"), 1);
        assert_eq!(inv.count("b"), 0);
    }
}
