//! The semantic pass behind `cargo xtask analyze`.
//!
//! Builds the workspace call graph ([`crate::callgraph`]) over the
//! parsed token streams ([`crate::lex`], [`crate::parse`]) and runs
//! five analyses:
//!
//! * `panic_path` — every function annotated `// analyze: no_panic` is
//!   a root; any panic sink reachable from a root through the call
//!   graph is reported with the shortest call path rendered as
//!   `file:line → file:line → …`;
//! * `hot_alloc` — allocations inside rayon parallel closures
//!   (anywhere in crate sources) and inside loop bodies of
//!   panic-freedom kernels;
//! * `obs_hot_path` — observability recording calls (`gdelt_obs`
//!   spans, flight events, registry lookups) inside parallel closures
//!   or loop bodies of panic-freedom kernels: spans buffer a record
//!   and flight events take the ring lock, so per-row recording
//!   serializes exactly the regions the paper parallelizes;
//! * `lock_par` — `Mutex`/`RwLock` acquisition inside a parallel
//!   closure serializes the region;
//! * `seqcst` — `Ordering::SeqCst` where the workspace's counters
//!   never participate in a synchronizes-with edge; `Relaxed` (with an
//!   invariant comment) or a justified marker is required;
//! * `lock_cycle` — the lexical lock-order graph must be acyclic.
//!
//! On top of those, three dataflow rules run the fixpoint engine
//! ([`crate::dataflow`]) over statement-level CFGs ([`crate::cfg`]):
//!
//! * `index_bounds` — the interval prover ([`crate::bounds`]) must
//!   discharge every `xs[i]` site reachable from a `no_panic` kernel;
//!   it owns the `SinkKind::Index` sinks `panic_path` used to report;
//! * `guard_across_await_or_call` — a `Mutex`/`RwLock` guard live
//!   across a call into another workspace crate ([`crate::guard`]);
//! * `result_discard` — a `Result` from a workspace call dropped on
//!   the floor in serve/engine hot paths ([`crate::discard`]).
//!
//! A final audit flags **stale markers**: suppression comments that no
//! longer suppress anything (the line lints are replayed first so
//! their marker usage counts too). `--remove-stale` deletes them.
//!
//! Plus the ratcheting unsafe inventory against `analyze-baseline.toml`
//! ([`crate::baseline`]), which also records per-crate dataflow
//! suppression counts (`[dataflow.*]`) and stale-marker counts
//! (`[stale.*]`). Findings are suppressed per-line with
//! `// analyze: allow(<rule>): <reason>` (the legacy `lint:` markers
//! `no_panic` / `par_index` also silence sinks they already justify).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::baseline::{self, Baseline, Inventory};
use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lex::{tokenize, Token};
use crate::parse::{parse_file, ParsedFile, SinkKind};
use crate::source::SourceFile;
use crate::{bounds, discard, guard, json, lint, walk};

/// The baseline file name, at the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.toml";

/// A loaded, parsed workspace ready for analysis.
pub struct Analysis {
    /// Per-file: workspace-relative path, line model, token stream,
    /// parsed facts, in-test-tree flag.
    files: Vec<(PathBuf, SourceFile, Vec<Token>, ParsedFile, bool)>,
    /// The call graph over every file.
    graph: CallGraph,
}

/// Everything one full pass produces: the findings plus the per-crate
/// counts the `[dataflow.*]` / `[stale.*]` baseline tables ratchet.
pub struct RunResult {
    /// All findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Marker-suppressed dataflow findings per crate.
    pub dataflow: BTreeMap<String, usize>,
    /// Stale suppression markers per crate.
    pub stale: BTreeMap<String, usize>,
}

/// Is this workspace-relative path in a tree whose functions are only
/// callable from their own file (integration tests, benches, examples)?
fn in_test_tree(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("tests/")
        || s.starts_with("examples/")
        || s.contains("/tests/")
        || s.contains("/benches/")
        || s.contains("/examples/")
}

/// Is this path a crate `src/` file (scope of the `hot_alloc` rule)?
fn in_crate_src(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("crates/") && s.contains("/src/")
}

impl Analysis {
    /// Parse `paths` (workspace-relative to `root`) and build the graph.
    pub fn load(root: &Path, paths: &[PathBuf]) -> Result<Analysis, String> {
        let mut files = Vec::new();
        for p in paths {
            let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
            let src = std::fs::read_to_string(&abs)
                .map_err(|e| format!("reading {}: {e}", abs.display()))?;
            let rel = abs.strip_prefix(root).unwrap_or(p).to_path_buf();
            let file = SourceFile::parse(&src);
            let tokens = tokenize(&file);
            let parsed = parse_file(&file, &tokens);
            let test_tree = in_test_tree(&rel);
            files.push((rel, file, tokens, parsed, test_tree));
        }
        let graph_input: Vec<(PathBuf, ParsedFile, bool)> = files
            .iter()
            .map(|(rel, _, _, parsed, tt)| (rel.clone(), parsed.clone(), *tt))
            .collect();
        let deps = crate::deps::CrateDeps::load(root)
            .map_err(|e| format!("reading workspace manifests: {e}"))?;
        let graph = CallGraph::build_filtered(&graph_input, Some(&deps));
        Ok(Analysis { files, graph })
    }

    /// Load every workspace file.
    pub fn load_workspace(root: &Path) -> Result<Analysis, String> {
        let paths =
            walk::workspace_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
        Analysis::load(root, &paths)
    }

    /// Run every analysis; diagnostics are sorted by (path, line, rule).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.run().diagnostics
    }

    /// Run every analysis and collect the baseline count maps. The
    /// stale-marker audit runs last so every rule has consulted its
    /// markers first.
    pub fn run(&self) -> RunResult {
        let mut out = Vec::new();
        let mut dataflow: BTreeMap<String, usize> = BTreeMap::new();
        self.panic_paths(&mut out);
        self.hot_allocs(&mut out);
        self.obs_hot_paths(&mut out);
        self.lock_discipline(&mut out);
        self.seqcst(&mut out);
        self.lock_cycles(&mut out);
        self.index_bounds(&mut out, &mut dataflow);
        self.guard_across_calls(&mut out, &mut dataflow);
        self.result_discards(&mut out, &mut dataflow);
        let stale = self.stale_markers(&mut out);
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        RunResult { diagnostics: out, dataflow, stale }
    }

    /// The unsafe inventory for the baseline ratchet.
    pub fn inventory(&self) -> Inventory {
        let mut inv = Inventory::default();
        for (rel, _, _, parsed, _) in &self.files {
            let krate = walk::crate_of(rel);
            let rel_s = rel.to_string_lossy().replace('\\', "/");
            inv.record(&krate, &rel_s, parsed.unsafe_lines.len());
        }
        inv
    }

    /// Per-crate `#[test]` counts for the test-count ratchet. Counted
    /// on comment-stripped code lines so a commented-out attribute does
    /// not register; top-level `tests/` files bucket under `tests`.
    pub fn test_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (rel, src, _, _, _) in &self.files {
            let krate = walk::crate_of(rel);
            let n = src.lines.iter().filter(|l| l.code.trim() == "#[test]").count();
            if n > 0 {
                *counts.entry(krate).or_default() += n;
            }
        }
        counts
    }

    /// The `SourceFile` backing a graph node's file.
    fn source_of(&self, file_idx: usize) -> &SourceFile {
        &self.files[file_idx].1
    }

    /// Functions on a `no_panic` root's reachable set (roots included).
    fn hot_set(&self) -> Vec<bool> {
        let mut hot = vec![false; self.graph.nodes.len()];
        for (i, n) in self.graph.nodes.iter().enumerate() {
            if n.func.no_panic && !n.func.is_test {
                for (j, p) in self.graph.shortest_paths(i).iter().enumerate() {
                    if p.is_some() {
                        hot[j] = true;
                    }
                }
            }
        }
        hot
    }

    /// `panic_path`: BFS from each `no_panic` root; report each
    /// unsuppressed sink in every reachable function once, with the
    /// shortest path from the nearest root.
    fn panic_paths(&self, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = self
            .graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.func.no_panic && !n.func.is_test)
            .map(|(i, _)| i)
            .collect();
        // node -> best (hops, root, path) over all roots.
        let mut best: BTreeMap<usize, (usize, usize, Vec<crate::callgraph::PathHop>)> =
            BTreeMap::new();
        for &root in &roots {
            let paths = self.graph.shortest_paths(root);
            for (node, path) in paths.into_iter().enumerate() {
                let Some(path) = path else { continue };
                let hops = path.len() - 1;
                let better = best.get(&node).map(|(h, _, _)| hops < *h).unwrap_or(true);
                if better {
                    best.insert(node, (hops, root, path));
                }
            }
        }
        for (&node, (hops, root, path)) in &best {
            let n = &self.graph.nodes[node];
            let src = self.source_of(n.file_idx);
            let root_n = &self.graph.nodes[*root];
            for sink in &n.func.sinks {
                // Index sinks belong to the `index_bounds` prover now:
                // proven sites are silent, unproven ones carry their
                // obligation instead of a bare "panic sink" report.
                if sink.kind == SinkKind::Index {
                    continue;
                }
                // `analyze: allow(panic_path)` plus the legacy line-lint
                // marker silence a sink.
                if src.allowed(sink.line, "panic_path") || src.allowed(sink.line, "no_panic") {
                    continue;
                }
                let message = if *hops == 0 {
                    format!(
                        "panic sink {} inside `no_panic` kernel `{}`",
                        sink.what,
                        root_n.func.display()
                    )
                } else {
                    format!(
                        "panic sink {} reachable from `no_panic` kernel `{}` ({} call{} away)",
                        sink.what,
                        root_n.func.display(),
                        hops,
                        if *hops == 1 { "" } else { "s" }
                    )
                };
                let mut d = Diagnostic::new(&n.path, sink.line, "panic_path", message);
                d.notes.push(render_path(&self.graph, path, &n.path, sink.line));
                if *hops > 0 {
                    let chain: Vec<String> = path
                        .iter()
                        .map(|h| format!("`{}`", self.graph.nodes[h.node].func.display()))
                        .collect();
                    d.notes.push(format!("call chain: {}", chain.join(" → ")));
                }
                out.push(d);
            }
        }
    }

    /// `hot_alloc`: allocations inside parallel closures (crate `src/`
    /// scope) and loop-body allocations in panic-freedom kernels.
    fn hot_allocs(&self, out: &mut Vec<Diagnostic>) {
        // Functions on a no_panic root's reachable set count as kernels
        // for the loop rule.
        let hot = self.hot_set();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for a in &n.func.allocs {
                let flagged = a.in_par || (a.in_loop && hot[id]);
                if !flagged || src.allowed(a.line, "hot_alloc") {
                    continue;
                }
                let ctx = if a.in_par {
                    "a parallel closure"
                } else {
                    "a per-row loop of a `no_panic` kernel"
                };
                out.push(Diagnostic::new(
                    &n.path,
                    a.line,
                    "hot_alloc",
                    format!(
                        "allocation {} inside {ctx} in `{}`; hoist it out of the hot \
                         region or justify with `// analyze: allow(hot_alloc): <reason>`",
                        a.what,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `obs_hot_path`: `gdelt_obs` recording calls inside parallel
    /// closures (crate `src/` scope) or loop bodies of panic-freedom
    /// kernels. One span per partition is the intended grain; one per
    /// row buys nothing and costs a sink append (or, for flight
    /// events, the ring lock) per element.
    fn obs_hot_paths(&self, out: &mut Vec<Diagnostic>) {
        /// Recording entry points plus the registry lookups — the
        /// lookups take the registry lock, so a hot loop must resolve
        /// its handle once outside (see `engine::query::kernel_metrics`).
        const OBS_CALLS: [&str; 9] = [
            "span",
            "span_args",
            "flight",
            "flight_info",
            "flight_warn",
            "flight_error",
            "counter",
            "gauge",
            "histogram",
        ];
        let hot = self.hot_set();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for c in &n.func.calls {
                let flagged =
                    OBS_CALLS.contains(&c.name.as_str()) && (c.in_par || (c.in_loop && hot[id]));
                if !flagged || src.allowed(c.line, "obs_hot_path") {
                    continue;
                }
                let ctx = if c.in_par {
                    "a parallel closure"
                } else {
                    "a per-row loop of a `no_panic` kernel"
                };
                out.push(Diagnostic::new(
                    &n.path,
                    c.line,
                    "obs_hot_path",
                    format!(
                        "observability call `{}(..)` inside {ctx} in `{}`; record once \
                         per partition (resolve registry handles outside the loop) or \
                         justify with `// analyze: allow(obs_hot_path): <reason>`",
                        c.name,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `lock_par`: lock acquisition inside a parallel closure.
    fn lock_discipline(&self, out: &mut Vec<Diagnostic>) {
        for n in &self.graph.nodes {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for l in &n.func.locks {
                if !l.in_par || src.allowed(l.line, "lock_par") {
                    continue;
                }
                out.push(Diagnostic::new(
                    &n.path,
                    l.line,
                    "lock_par",
                    format!(
                        "lock `{}` acquired inside a parallel closure in `{}`; \
                         contention serializes the region — use per-worker state \
                         and merge, or justify the lock",
                        l.name,
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `seqcst`: flag `Ordering::SeqCst` — the workspace's atomics are
    /// counters merged after `join`, which never need a total order.
    fn seqcst(&self, out: &mut Vec<Diagnostic>) {
        for n in &self.graph.nodes {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for &line in &n.func.seqcst {
                if src.allowed(line, "seqcst") {
                    continue;
                }
                out.push(Diagnostic::new(
                    &n.path,
                    line,
                    "seqcst",
                    format!(
                        "`Ordering::SeqCst` in `{}`: workspace counters never \
                         synchronize-with another access — use `Relaxed` with an \
                         invariant comment, or justify the total order",
                        n.func.display()
                    ),
                ));
            }
        }
    }

    /// `lock_cycle`: the union of every function's lexical lock-order
    /// edges must be acyclic.
    fn lock_cycles(&self, out: &mut Vec<Diagnostic>) {
        // name -> [(successor, node id, line)]
        let mut adj: BTreeMap<&str, Vec<(&str, usize, usize)>> = BTreeMap::new();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test {
                continue;
            }
            let src = self.source_of(n.file_idx);
            for e in &n.func.lock_edges {
                if src.allowed(e.line, "lock_cycle") {
                    continue;
                }
                adj.entry(e.held.as_str()).or_default().push((e.then.as_str(), id, e.line));
            }
        }
        // DFS with an explicit stack of lock names; a back edge into the
        // current path is a cycle.
        let names: Vec<&str> = adj.keys().copied().collect();
        let mut done: Vec<&str> = Vec::new();
        for &start in &names {
            if done.contains(&start) {
                continue;
            }
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            while let Some(top) = stack.len().checked_sub(1) {
                let (name, next) = stack[top];
                let edges = adj.get(name).map(|v| v.as_slice()).unwrap_or(&[]);
                if next >= edges.len() {
                    stack.pop();
                    path.pop();
                    if !done.contains(&name) {
                        done.push(name);
                    }
                    continue;
                }
                let (succ, node_id, line) = edges[next];
                stack[top].1 += 1;
                if let Some(pos) = path.iter().position(|&p| p == succ) {
                    // Cycle: path[pos..] + succ.
                    let mut cycle: Vec<&str> = path[pos..].to_vec();
                    cycle.push(succ);
                    let n = &self.graph.nodes[node_id];
                    out.push(Diagnostic::new(
                        &n.path,
                        line,
                        "lock_cycle",
                        format!(
                            "lock-order cycle: {} — acquiring `{}` while holding `{}` \
                             inverts an order established elsewhere; pick one global order",
                            cycle.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>().join(" → "),
                            succ,
                            name,
                        ),
                    ));
                    continue;
                }
                if !done.contains(&succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                }
            }
        }
    }

    /// `index_bounds`: run the interval prover over every function on a
    /// `no_panic` root's reachable set. Index sites it discharges are
    /// silent — their legacy `panic_path`/`par_index` markers go stale
    /// and the audit flags them for deletion; the rest are findings
    /// carrying the exact unproven obligation.
    fn index_bounds(&self, out: &mut Vec<Diagnostic>, dataflow: &mut BTreeMap<String, usize>) {
        let hot = self.hot_set();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if !hot[id] || n.func.is_test {
                continue;
            }
            let (_, src, toks, parsed, _) = &self.files[n.file_idx];
            let krate = walk::crate_of(&n.path);
            let children = bounds::child_ranges(&parsed.functions, n.fn_idx);
            let sites = bounds::check_function(toks, n.func.body.clone(), &children);
            let covered: BTreeSet<(usize, String)> =
                sites.iter().map(|s| (s.line, s.what.clone())).collect();
            for site in &sites {
                if site.proven || index_allowed(src, site.line, &krate, dataflow) {
                    continue;
                }
                let mut d = Diagnostic::new(
                    &n.path,
                    site.line,
                    "index_bounds",
                    format!("cannot prove {} in bounds in `{}`", site.what, n.func.display()),
                );
                if !site.note.is_empty() {
                    d.notes.push(format!("unproven obligation: {}", site.note));
                }
                d.notes.push(
                    "add a dominating bound check the prover can see, or justify with \
                     `// analyze: allow(index_bounds): <reason>`"
                        .into(),
                );
                out.push(d);
            }
            // Index sinks the statement-level CFG never lowered (e.g.
            // inside a braced closure body) stay unproven obligations —
            // the prover must not silently narrow `panic_path` coverage.
            for sink in &n.func.sinks {
                if sink.kind != SinkKind::Index
                    || covered.contains(&(sink.line, sink.what.clone()))
                    || index_allowed(src, sink.line, &krate, dataflow)
                {
                    continue;
                }
                let mut d = Diagnostic::new(
                    &n.path,
                    sink.line,
                    "index_bounds",
                    format!("cannot prove {} in bounds in `{}`", sink.what, n.func.display()),
                );
                d.notes.push("unproven obligation: site is outside the dataflow region".into());
                d.notes.push(
                    "add a dominating bound check the prover can see, or justify with \
                     `// analyze: allow(index_bounds): <reason>`"
                        .into(),
                );
                out.push(d);
            }
        }
    }

    /// `guard_across_await_or_call`: a lock guard live across a call
    /// into another workspace crate, with the exact hold range.
    fn guard_across_calls(
        &self,
        out: &mut Vec<Diagnostic>,
        dataflow: &mut BTreeMap<String, usize>,
    ) {
        let node_crate: Vec<String> =
            self.graph.nodes.iter().map(|n| walk::crate_of(&n.path)).collect();
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let (_, src, toks, parsed, _) = &self.files[n.file_idx];
            if parsed.lock_names.is_empty() {
                continue;
            }
            let cross: Vec<guard::CrossCall> = self.graph.out[id]
                .iter()
                .filter(|e| node_crate[e.to] != node_crate[id])
                .map(|e| {
                    (e.line, self.graph.nodes[e.to].func.name.clone(), node_crate[e.to].clone())
                })
                .collect();
            if cross.is_empty() {
                continue;
            }
            let children = bounds::child_ranges(&parsed.functions, n.fn_idx);
            let found = guard::check_function(
                toks,
                n.func.body.clone(),
                &children,
                &parsed.lock_names,
                &cross,
            );
            for f in found {
                if src.allowed(f.line, "guard_across_await_or_call") {
                    *dataflow.entry(node_crate[id].clone()).or_default() += 1;
                    continue;
                }
                let mut d = Diagnostic::new(
                    &n.path,
                    f.line,
                    "guard_across_await_or_call",
                    format!(
                        "guard `{}` of lock `{}` held across call to `{}` in `{}`",
                        f.binding,
                        f.lock,
                        f.callee,
                        n.func.display()
                    ),
                );
                d.notes.push(format!(
                    "hold range: acquired at line {}, still live at the call on line {} — \
                     drop the guard first, or justify with \
                     `// analyze: allow(guard_across_await_or_call): <reason>`",
                    f.acquired, f.line
                ));
                out.push(d);
            }
        }
    }

    /// `result_discard`: a `Result` from a workspace call dropped on
    /// the floor (`let _ = …;` or a bare call statement) in serve or
    /// engine `src/` code.
    fn result_discards(&self, out: &mut Vec<Diagnostic>, dataflow: &mut BTreeMap<String, usize>) {
        for (id, n) in self.graph.nodes.iter().enumerate() {
            if n.func.is_test || !in_crate_src(&n.path) {
                continue;
            }
            let krate = walk::crate_of(&n.path);
            if !DISCARD_CRATES.contains(&krate.as_str()) {
                continue;
            }
            let candidates: BTreeSet<discard::ResultCall> = self.graph.out[id]
                .iter()
                .filter(|e| self.graph.nodes[e.to].func.returns_result)
                .map(|e| (e.line, self.graph.nodes[e.to].func.name.clone()))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let (_, src, toks, parsed, _) = &self.files[n.file_idx];
            let children = bounds::child_ranges(&parsed.functions, n.fn_idx);
            for f in discard::check_function(toks, n.func.body.clone(), &children, &candidates) {
                if src.allowed(f.line, "result_discard") {
                    *dataflow.entry(krate.clone()).or_default() += 1;
                    continue;
                }
                let how = if f.explicit { "`let _ = …`" } else { "a bare statement" };
                let mut d = Diagnostic::new(
                    &n.path,
                    f.line,
                    "result_discard",
                    format!(
                        "`Result` of workspace call `{}` discarded via {how} in `{}`",
                        f.callee,
                        n.func.display()
                    ),
                );
                d.notes.push(
                    "handle the error (`?`, match, or log it) or justify with \
                     `// analyze: allow(result_discard): <reason>`"
                        .into(),
                );
                out.push(d);
            }
        }
    }

    /// Flag suppression markers that no longer suppress anything. The
    /// line lints replay first so markers they consult count as used;
    /// every analyze rule has already recorded its lookups by the time
    /// this runs (it must be the last pass in [`Analysis::run`]).
    fn stale_markers(&self, out: &mut Vec<Diagnostic>) -> BTreeMap<String, usize> {
        for (rel, src, _, _, _) in &self.files {
            let _ = lint::lint_file(rel, src);
        }
        let mut stale: BTreeMap<String, usize> = BTreeMap::new();
        for (rel, src, _, _, _) in &self.files {
            let used = src.used_markers();
            for (line, rule) in src.markers() {
                let known = MARKER_RULES.contains(&rule.as_str());
                if known && used.contains(&(line, rule.clone())) {
                    continue;
                }
                *stale.entry(walk::crate_of(rel)).or_default() += 1;
                let message = if known {
                    format!(
                        "stale marker: `allow({rule})` suppresses nothing on this line — \
                         delete it or run `cargo xtask analyze --remove-stale`"
                    )
                } else {
                    format!(
                        "stale marker: no rule is named `{rule}` — delete it or run \
                         `cargo xtask analyze --remove-stale`"
                    )
                };
                out.push(Diagnostic::new(rel, line, "stale_marker", message));
            }
        }
        stale
    }
}

/// Crates whose `src/` statements the `result_discard` rule covers —
/// the serve/engine hot paths where a swallowed error loses data.
const DISCARD_CRATES: &[&str] = &["engine", "serve"];

/// Every rule a suppression marker can legitimately name.
const MARKER_RULES: &[&str] = &[
    // line lints
    "no_panic",
    "id_cast",
    "par_index",
    "safety_comment",
    // analyze rules
    "panic_path",
    "hot_alloc",
    "obs_hot_path",
    "lock_par",
    "seqcst",
    "lock_cycle",
    // dataflow rules
    "index_bounds",
    "guard_across_await_or_call",
    "result_discard",
];

/// Consult the `index_bounds` marker plus the legacy spellings; a hit
/// counts into the `[dataflow.*]` suppression table.
fn index_allowed(
    src: &SourceFile,
    line: usize,
    krate: &str,
    dataflow: &mut BTreeMap<String, usize>,
) -> bool {
    for rule in ["index_bounds", "panic_path", "par_index"] {
        if src.allowed(line, rule) {
            *dataflow.entry(krate.to_string()).or_default() += 1;
            return true;
        }
    }
    false
}

/// Render a call path plus the sink as `file:line → file:line → …`.
///
/// Hop 0 is the kernel's declaration; each later hop is the call site
/// (in the caller's file); the final element is the sink itself.
fn render_path(
    graph: &CallGraph,
    path: &[crate::callgraph::PathHop],
    sink_path: &Path,
    sink_line: usize,
) -> String {
    let mut parts = Vec::new();
    let root = &graph.nodes[path[0].node];
    parts.push(format!("{}:{}", root.path.display(), root.func.decl_line));
    for i in 1..path.len() {
        let caller = &graph.nodes[path[i - 1].node];
        parts.push(format!("{}:{}", caller.path.display(), path[i].via_line));
    }
    parts.push(format!("{}:{}", sink_path.display(), sink_line));
    format!("path: {}", parts.join(" → "))
}

/// Check the measured inventory against the committed baseline,
/// rendering ratchet violations as diagnostics against the baseline
/// file.
pub fn check_baseline(
    root: &Path,
    inventory: &Inventory,
    test_counts: &BTreeMap<String, usize>,
    dataflow: &BTreeMap<String, usize>,
    stale: &BTreeMap<String, usize>,
) -> Result<Vec<Diagnostic>, String> {
    let base = baseline::load(&root.join(BASELINE_FILE))?;
    let at = |rule: &'static str| {
        move |e: baseline::RatchetError| {
            Diagnostic::new(Path::new(BASELINE_FILE), 1, rule, e.to_string())
        }
    };
    let unsafe_errs = baseline::check(&base, inventory).into_iter().map(at("unsafe_ratchet"));
    let test_errs = baseline::check_tests(&base, test_counts).into_iter().map(at("test_ratchet"));
    let df_errs = baseline::check_dataflow(&base, dataflow).into_iter().map(at("dataflow_ratchet"));
    let stale_errs = baseline::check_stale(&base, stale).into_iter().map(at("stale_ratchet"));
    Ok(unsafe_errs.chain(test_errs).chain(df_errs).chain(stale_errs).collect())
}

/// Rewrite the baseline from the current inventory and count maps,
/// carrying forward existing reasons. Returns the written path.
pub fn update_baseline(
    root: &Path,
    inventory: &Inventory,
    test_counts: &BTreeMap<String, usize>,
    dataflow: &BTreeMap<String, usize>,
    stale: &BTreeMap<String, usize>,
) -> Result<PathBuf, String> {
    let path = root.join(BASELINE_FILE);
    let prev = baseline::load(&path).unwrap_or_else(|_| Baseline::default());
    let next = baseline::from_inventory(inventory, test_counts, dataflow, stale, &prev);
    std::fs::write(&path, baseline::serialize(&next))
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

/// Delete the markers behind `stale_marker` diagnostics. A line whose
/// code part is blank (marker-only line) is removed whole; a trailing
/// marker is cut at its `//`. Returns the number of markers removed.
pub fn remove_stale_markers(root: &Path, diagnostics: &[Diagnostic]) -> Result<usize, String> {
    let mut by_file: BTreeMap<&Path, Vec<usize>> = BTreeMap::new();
    for d in diagnostics {
        if d.rule == "stale_marker" {
            by_file.entry(d.path.as_path()).or_default().push(d.line);
        }
    }
    let mut removed = 0usize;
    for (rel, mut lines) in by_file {
        let abs = root.join(rel);
        let text =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let had_final_newline = text.ends_with('\n');
        let mut out: Vec<String> = text.lines().map(str::to_string).collect();
        lines.sort_unstable();
        lines.dedup();
        for &lineno in lines.iter().rev() {
            let Some(raw) = out.get(lineno - 1) else { continue };
            let cut =
                ["// lint: allow(", "// analyze: allow("].iter().filter_map(|p| raw.find(p)).min();
            let Some(cut) = cut else { continue };
            if raw[..cut].trim().is_empty() {
                out.remove(lineno - 1);
            } else {
                let trimmed = raw[..cut].trim_end().to_string();
                out[lineno - 1] = trimmed;
            }
            removed += 1;
        }
        let mut body = out.join("\n");
        if had_final_newline {
            body.push('\n');
        }
        std::fs::write(&abs, body).map_err(|e| format!("writing {}: {e}", abs.display()))?;
    }
    Ok(removed)
}

/// Load a prior `--format json` report for `--diff` gating: the
/// returned set of (path, rule, message) identities is subtracted from
/// the current run, leaving only new findings.
pub fn load_diff_baseline(path: &Path) -> Result<BTreeSet<(String, String, String)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: not JSON: {e}", path.display()))?;
    let Some(diags) = doc.get("diagnostics").and_then(|d| d.as_arr()) else {
        return Err(format!(
            "{}: not an analyze report (missing `diagnostics` array)",
            path.display()
        ));
    };
    let mut seen = BTreeSet::new();
    for d in diags {
        let field = |k: &str| d.get(k).and_then(|v| v.as_str()).map(str::to_string);
        match (field("path"), field("rule"), field("message")) {
            (Some(p), Some(r), Some(m)) => {
                seen.insert((p, r, m));
            }
            _ => {
                return Err(format!(
                    "{}: malformed diagnostic entry (need path/rule/message strings)",
                    path.display()
                ));
            }
        }
    }
    Ok(seen)
}

/// Subtract a `--diff` baseline from `diagnostics`, in place.
pub fn apply_diff(diagnostics: &mut Vec<Diagnostic>, seen: &BTreeSet<(String, String, String)>) {
    diagnostics.retain(|d| {
        let key =
            (d.path.to_string_lossy().replace('\\', "/"), d.rule.to_string(), d.message.clone());
        !seen.contains(&key)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an `Analysis` from in-memory sources by writing them to a
    /// temp dir (the loader wants real files).
    fn analysis(srcs: &[(&str, &str)]) -> Analysis {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("xtask-analyze-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut paths = Vec::new();
        for (rel, src) in srcs {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(&p, src).unwrap();
            paths.push(PathBuf::from(rel));
        }
        Analysis::load(&dir, &paths).unwrap()
    }

    #[test]
    fn panic_path_reports_shortest_route() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u32 {
    middle(v)
}
fn middle(v: &[u32]) -> u32 {
    bottom(v)
}
fn bottom(v: &[u32]) -> u32 {
    v.first().unwrap() + 1
}
",
        )]);
        let d = a.diagnostics();
        let p: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "panic_path").collect();
        assert_eq!(p.len(), 1, "{d:?}");
        assert_eq!(p[0].line, 9);
        assert!(p[0].message.contains("2 calls away"), "{}", p[0].message);
        assert_eq!(
            p[0].notes[0],
            "path: crates/a/src/lib.rs:2 → crates/a/src/lib.rs:3 → \
             crates/a/src/lib.rs:6 → crates/a/src/lib.rs:9"
        );
        assert!(p[0].notes[1].contains("`kernel` → `middle` → `bottom`"));
    }

    #[test]
    fn marker_silences_panic_path() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u32 {
    // analyze: allow(panic_path): v is non-empty by construction
    v.first().unwrap() + 1
}
",
        )]);
        assert!(a.diagnostics().iter().all(|d| d.rule != "panic_path"));
    }

    #[test]
    fn hot_alloc_flags_par_closures_only_above_marker_depth() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
pub fn f(v: &[u32]) -> Vec<String> {
    v.par_iter()
        .map(|x| format!(\"{x}\"))
        .collect()
}
",
        )]);
        let d = a.diagnostics();
        let h: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "hot_alloc").collect();
        assert_eq!(h.len(), 1, "{d:?}");
        assert_eq!(h[0].line, 3, "format! flagged, terminator collect not");
    }

    #[test]
    fn obs_hot_path_flags_par_spans_and_kernel_loop_flights() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
// analyze: no_panic
pub fn kernel(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in v {
        gdelt_obs::flight_warn(\"a\", \"row\", String::new());
        total += u64::from(*x);
    }
    total
}
pub fn par(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            let _s = gdelt_obs::span(\"a\", \"row\");
            u64::from(*x)
        })
        .collect()
}
pub fn fine(v: &[u32]) -> u64 {
    let _s = gdelt_obs::span(\"a\", \"whole\");
    v.iter().map(|x| u64::from(*x)).sum()
}
",
        )]);
        let d = a.diagnostics();
        let h: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "obs_hot_path").collect();
        assert_eq!(h.len(), 2, "{d:?}");
        assert_eq!(h[0].line, 5, "flight event in the kernel loop");
        assert!(h[0].message.contains("per-row loop"), "{}", h[0].message);
        assert_eq!(h[1].line, 13, "span in the parallel closure");
        assert!(h[1].message.contains("parallel closure"), "{}", h[1].message);
    }

    #[test]
    fn obs_hot_path_marker_and_plain_loops_are_silent() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
pub fn par(v: &[u32]) -> Vec<u64> {
    v.par_iter()
        .map(|x| {
            // analyze: allow(obs_hot_path): coarse partitions, not rows
            let _s = gdelt_obs::span(\"a\", \"part\");
            u64::from(*x)
        })
        .collect()
}
pub fn warm(v: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in v {
        gdelt_obs::flight_warn(\"a\", \"row\", String::new());
        total += u64::from(*x);
    }
    total
}
",
        )]);
        let d = a.diagnostics();
        // The marker silences the par span; the loop flight event sits
        // in a function no `no_panic` root reaches, so it is not hot.
        assert!(d.iter().all(|d| d.rule != "obs_hot_path"), "{d:?}");
    }

    #[test]
    fn lock_par_and_cycle_fire() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
pub fn f(s: &S, v: &[u32]) {
    v.par_iter().for_each(|_| {
        let g = s.a.lock().unwrap();
        drop(g);
    });
}
pub fn order_ab(s: &S) {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    drop(gb);
    drop(ga);
}
pub fn order_ba(s: &S) {
    let gb = s.b.lock().unwrap();
    let ga = s.a.lock().unwrap();
    drop(ga);
    drop(gb);
}
",
        )]);
        let d = a.diagnostics();
        assert!(d.iter().any(|d| d.rule == "lock_par" && d.line == 5), "{d:?}");
        assert!(d.iter().any(|d| d.rule == "lock_cycle"), "{d:?}");
    }

    #[test]
    fn seqcst_flagged_and_suppressible() {
        let a = analysis(&[(
            "crates/a/src/lib.rs",
            "\
use std::sync::atomic::{AtomicU32, Ordering};
pub fn bump(c: &AtomicU32) {
    c.fetch_add(1, Ordering::SeqCst);
}
pub fn bump_justified(c: &AtomicU32) {
    // analyze: allow(seqcst): total order needed for the epoch handshake
    c.fetch_add(1, Ordering::SeqCst);
}
",
        )]);
        let d = a.diagnostics();
        let s: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "seqcst").collect();
        assert_eq!(s.len(), 1, "{d:?}");
        assert_eq!(s[0].line, 3);
    }

    #[test]
    fn inventory_counts_unsafe_per_crate() {
        let a = analysis(&[
            (
                "crates/a/src/lib.rs",
                "pub fn f() {\n    // SAFETY: test\n    unsafe { std::hint::spin_loop() }\n}\n",
            ),
            ("crates/b/src/lib.rs", "pub fn g() {}\n"),
        ]);
        let inv = a.inventory();
        assert_eq!(inv.count("a"), 1);
        assert_eq!(inv.count("b"), 0);
    }
}
