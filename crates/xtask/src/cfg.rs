//! Statement-level control-flow graphs over one function's token range.
//!
//! `Cfg::build` parses the body tokens of a [`crate::parse::Function`]
//! into a graph of statement nodes connected by control edges, ready
//! for the fixpoint engine in [`crate::dataflow`]. The parse is
//! structured recursive descent over the token stream: blocks,
//! `if`/`else if`/`else`, `while`, `loop`, `for`, `match`, and early
//! `return`/`break`/`continue` all lower to explicit edges.
//!
//! Design points (soundness caveats are documented in DESIGN.md):
//!
//! * A *simple* statement containing embedded `{..}` regions (closure
//!   bodies, block expressions, match-as-expression arms) hangs each
//!   region off a [`NodeKind::ClosureEntry`] side branch fed by the
//!   pre-statement state. The branch dead-ends: facts established
//!   inside a closure never leak back out, and the outer statement's
//!   own transfer sees only its top-level tokens.
//! * An `if` whose branch diverges (`return`/`break`/`continue`) does
//!   not reach the join, so the fall-through keeps the negated
//!   condition — `if i >= n { continue; }` proves `i < n` below it.
//! * `match` lowers to alternative paths into one join; arm patterns
//!   and guards contribute no facts.
//! * Labeled `break`/`continue` target the innermost loop. For a
//!   must-analysis (intersection join) the extra predecessor can only
//!   remove facts; for a may-analysis it only adds — sound both ways.

use std::ops::Range;

use crate::lex::{TokKind, Token};

/// Edge classification: which way control left the source node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Unconditional fall-through.
    Seq,
    /// Condition held (`if`/`while` true edge, `for` entered the body).
    True,
    /// Condition failed (else edge, loop exhausted).
    False,
}

/// One CFG node.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// Function entry.
    Entry,
    /// Function exit (every `return` and the final fall-through).
    Exit,
    /// A simple statement: its token range (embedded brace regions are
    /// side branches; walkers skip them via [`visible`]).
    Stmt(Range<usize>),
    /// An `if`/`while` condition; out-edges carry `True`/`False`.
    Branch(Range<usize>),
    /// A `for` head: pattern and iterator token ranges.
    ForHead {
        /// Pattern tokens between `for` and `in`.
        pat: Range<usize>,
        /// Iterator tokens between `in` and the body `{`.
        iter: Range<usize>,
    },
    /// Start of an embedded block; `open` is the token index of its
    /// `{`, for backward inspection of closure params and chains.
    ClosureEntry {
        /// Token index of the block's opening brace.
        open: usize,
    },
    /// Structural no-op: joins and loop heads.
    Join,
}

/// The control-flow graph of one function body.
#[derive(Debug)]
pub struct Cfg {
    /// Node table.
    pub nodes: Vec<NodeKind>,
    /// Out-edges per node.
    pub succ: Vec<Vec<(usize, EdgeKind)>>,
    /// Entry node id.
    pub entry: usize,
    /// Exit node id.
    pub exit: usize,
}

impl Cfg {
    /// Build the CFG for the body token range of one function.
    /// `children` are nested-fn body ranges to skip (they get their own
    /// CFG when their `Function` is analyzed).
    pub fn build(tokens: &[Token], body: Range<usize>, children: &[Range<usize>]) -> Cfg {
        let mut b = Builder {
            toks: tokens,
            children,
            nodes: vec![NodeKind::Entry, NodeKind::Exit],
            succ: vec![Vec::new(), Vec::new()],
            loops: Vec::new(),
        };
        let end = b.block(body, 0);
        b.edge(end, 1, EdgeKind::Seq);
        Cfg { nodes: b.nodes, succ: b.succ, entry: 0, exit: 1 }
    }
}

/// Token indices of `range` that are *top-level* for a simple
/// statement: embedded brace regions and nested-fn bodies removed.
pub fn visible(tokens: &[Token], range: &Range<usize>, children: &[Range<usize>]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut brace = 0i32;
    let mut i = range.start;
    while i < range.end {
        if let Some(r) = children.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        match tokens[i].kind {
            TokKind::LBrace => brace += 1,
            TokKind::RBrace => brace -= 1,
            _ if brace == 0 => out.push(i),
            _ => {}
        }
        i += 1;
    }
    out
}

struct Builder<'a> {
    toks: &'a [Token],
    children: &'a [Range<usize>],
    nodes: Vec<NodeKind>,
    succ: Vec<Vec<(usize, EdgeKind)>>,
    /// (continue target, break target) per open loop.
    loops: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn node(&mut self, k: NodeKind) -> usize {
        self.nodes.push(k);
        self.succ.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        self.succ[from].push((to, kind));
    }

    /// A fresh node with no in-edges: control diverged.
    fn dead(&mut self) -> usize {
        self.node(NodeKind::Join)
    }

    /// Matching `}` for the `{` at `open` (bounded by `limit`).
    fn close_brace(&self, open: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        for i in open..limit {
            match self.toks[i].kind {
                TokKind::LBrace => depth += 1,
                TokKind::RBrace => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        limit.saturating_sub(1).max(open)
    }

    /// First `{` at paren/bracket nesting zero, scanning from `from`.
    fn find_open(&self, from: usize, limit: usize) -> Option<usize> {
        let mut nest = 0i32;
        for i in from..limit {
            match self.toks[i].kind {
                TokKind::LParen | TokKind::LBracket => nest += 1,
                TokKind::RParen | TokKind::RBracket => nest -= 1,
                TokKind::LBrace if nest == 0 => return Some(i),
                _ => {}
            }
        }
        None
    }

    /// Exclusive end of a simple statement starting at `from`: past the
    /// terminating `;` at nesting zero, or at `limit` (tail expr).
    fn stmt_end(&self, from: usize, limit: usize) -> usize {
        let mut nest = 0i32;
        for i in from..limit {
            match self.toks[i].kind {
                TokKind::LParen | TokKind::LBracket | TokKind::LBrace => nest += 1,
                TokKind::RParen | TokKind::RBracket | TokKind::RBrace => nest -= 1,
                TokKind::Punct if self.toks[i].text == ";" && nest == 0 => return i + 1,
                _ => {}
            }
        }
        limit
    }

    /// Lower the statements of `range` sequentially from node `cur`;
    /// return the node holding the state after the last statement.
    fn block(&mut self, range: Range<usize>, mut cur: usize) -> usize {
        let mut i = range.start;
        while i < range.end {
            if let Some(r) = self.children.iter().find(|r| r.contains(&i)).cloned() {
                i = r.end;
                continue;
            }
            let t = &self.toks[i];
            match t.kind {
                TokKind::Punct if t.text == ";" => i += 1,
                // Loop label: `'name: loop`.
                TokKind::Punct if t.text == "'" => {
                    i += 1;
                    if self.toks.get(i + 1).is_some_and(|t| t.text == ":") {
                        i += 2;
                    }
                }
                TokKind::RBrace => i += 1, // tolerate sloppy ranges
                TokKind::LBrace => {
                    // Plain block: inline (facts flow through scoping).
                    let close = self.close_brace(i, range.end);
                    cur = self.block(i + 1..close, cur);
                    i = close + 1;
                }
                TokKind::Ident => {
                    let text = t.text.as_str();
                    match text {
                        "if" => {
                            let (after, ni) = self.lower_if(i, cur, range.end);
                            cur = after;
                            i = ni;
                        }
                        "while" => {
                            let open = self.find_open(i + 1, range.end).unwrap_or(range.end - 1);
                            let close = self.close_brace(open, range.end);
                            let head = self.node(NodeKind::Branch(i + 1..open));
                            self.edge(cur, head, EdgeKind::Seq);
                            let after = self.node(NodeKind::Join);
                            let entry = self.node(NodeKind::Join);
                            self.edge(head, entry, EdgeKind::True);
                            self.edge(head, after, EdgeKind::False);
                            self.loops.push((head, after));
                            let bend = self.block(open + 1..close, entry);
                            self.loops.pop();
                            self.edge(bend, head, EdgeKind::Seq);
                            cur = after;
                            i = close + 1;
                        }
                        "loop" => {
                            let open = self.find_open(i + 1, range.end).unwrap_or(range.end - 1);
                            let close = self.close_brace(open, range.end);
                            let head = self.node(NodeKind::Join);
                            self.edge(cur, head, EdgeKind::Seq);
                            let after = self.node(NodeKind::Join);
                            self.loops.push((head, after));
                            let bend = self.block(open + 1..close, head);
                            self.loops.pop();
                            self.edge(bend, head, EdgeKind::Seq);
                            cur = after;
                            i = close + 1;
                        }
                        "for" => {
                            let open = self.find_open(i + 1, range.end).unwrap_or(range.end - 1);
                            let close = self.close_brace(open, range.end);
                            // `in` at paren/bracket nesting zero splits
                            // pattern from iterator.
                            let mut nest = 0i32;
                            let mut in_pos = open;
                            for j in i + 1..open {
                                match self.toks[j].kind {
                                    TokKind::LParen | TokKind::LBracket => nest += 1,
                                    TokKind::RParen | TokKind::RBracket => nest -= 1,
                                    TokKind::Ident if nest == 0 && self.toks[j].text == "in" => {
                                        in_pos = j;
                                        break;
                                    }
                                    _ => {}
                                }
                            }
                            let head = self.node(NodeKind::ForHead {
                                pat: i + 1..in_pos,
                                iter: in_pos + 1..open,
                            });
                            self.edge(cur, head, EdgeKind::Seq);
                            let after = self.node(NodeKind::Join);
                            let entry = self.node(NodeKind::Join);
                            self.edge(head, entry, EdgeKind::True);
                            self.edge(head, after, EdgeKind::False);
                            self.loops.push((head, after));
                            let bend = self.block(open + 1..close, entry);
                            self.loops.pop();
                            self.edge(bend, head, EdgeKind::Seq);
                            cur = after;
                            i = close + 1;
                        }
                        "match" => {
                            let open = self.find_open(i + 1, range.end).unwrap_or(range.end - 1);
                            let close = self.close_brace(open, range.end);
                            let head = self.node(NodeKind::Stmt(i + 1..open));
                            self.edge(cur, head, EdgeKind::Seq);
                            let join = self.node(NodeKind::Join);
                            self.lower_match_arms(open + 1..close, head, join);
                            cur = join;
                            i = close + 1;
                            // Consume a trailing `;` (match-as-statement).
                            if self
                                .toks
                                .get(i)
                                .is_some_and(|t| t.kind == TokKind::Punct && t.text == ";")
                            {
                                i += 1;
                            }
                        }
                        "return" => {
                            let e = self.stmt_end(i, range.end);
                            let n = self.node(NodeKind::Stmt(i + 1..e));
                            self.edge(cur, n, EdgeKind::Seq);
                            self.edge(n, 1, EdgeKind::Seq); // exit
                            cur = self.dead();
                            i = e;
                        }
                        "break" | "continue" => {
                            let e = self.stmt_end(i, range.end);
                            let target = match self.loops.last() {
                                Some(&(head, after)) => {
                                    if text == "break" {
                                        after
                                    } else {
                                        head
                                    }
                                }
                                None => 1, // stray: route to exit
                            };
                            self.edge(cur, target, EdgeKind::Seq);
                            cur = self.dead();
                            i = e;
                        }
                        "fn" => {
                            // Nested item: skip its header + body whole.
                            match self.find_open(i + 1, range.end) {
                                Some(open) => i = self.close_brace(open, range.end) + 1,
                                None => i = self.stmt_end(i, range.end),
                            }
                        }
                        "unsafe"
                            if self.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::LBrace) =>
                        {
                            i += 1; // `unsafe { .. }`: inline the block
                        }
                        _ => {
                            let (after, ni) = self.lower_simple(i, cur, range.end);
                            cur = after;
                            i = ni;
                        }
                    }
                }
                _ => {
                    let (after, ni) = self.lower_simple(i, cur, range.end);
                    cur = after;
                    i = ni;
                }
            }
        }
        cur
    }

    /// Lower `if .. { .. } [else if .. | else { .. }]` starting at the
    /// `if` token. Returns (join node, next token index).
    fn lower_if(&mut self, at: usize, cur: usize, limit: usize) -> (usize, usize) {
        let open = self.find_open(at + 1, limit).unwrap_or(limit - 1);
        let close = self.close_brace(open, limit);
        let head = self.node(NodeKind::Branch(at + 1..open));
        self.edge(cur, head, EdgeKind::Seq);
        let then_entry = self.node(NodeKind::Join);
        self.edge(head, then_entry, EdgeKind::True);
        let then_end = self.block(open + 1..close, then_entry);

        let i = close + 1;
        if self.toks.get(i).is_some_and(|t| t.is("else")) {
            if self.toks.get(i + 1).is_some_and(|t| t.is("if")) {
                let else_entry = self.node(NodeKind::Join);
                self.edge(head, else_entry, EdgeKind::False);
                let (inner_join, ni) = self.lower_if(i + 1, else_entry, limit);
                let join = self.node(NodeKind::Join);
                self.edge(then_end, join, EdgeKind::Seq);
                self.edge(inner_join, join, EdgeKind::Seq);
                (join, ni)
            } else {
                let eopen = self.find_open(i + 1, limit).unwrap_or(limit - 1);
                let eclose = self.close_brace(eopen, limit);
                let else_entry = self.node(NodeKind::Join);
                self.edge(head, else_entry, EdgeKind::False);
                let else_end = self.block(eopen + 1..eclose, else_entry);
                let join = self.node(NodeKind::Join);
                self.edge(then_end, join, EdgeKind::Seq);
                self.edge(else_end, join, EdgeKind::Seq);
                (join, eclose + 1)
            }
        } else {
            let join = self.node(NodeKind::Join);
            self.edge(then_end, join, EdgeKind::Seq);
            self.edge(head, join, EdgeKind::False);
            (join, i)
        }
    }

    /// Lower one simple statement at `at`: side-branch each embedded
    /// brace region through a [`NodeKind::ClosureEntry`], then emit the
    /// statement node itself.
    fn lower_simple(&mut self, at: usize, cur: usize, limit: usize) -> (usize, usize) {
        let end = self.stmt_end(at, limit);
        // Embedded regions: maximal brace regions within the statement.
        let mut brace = 0i32;
        let mut j = at;
        while j < end {
            if let Some(r) = self.children.iter().find(|r| r.contains(&j)).cloned() {
                j = r.end;
                continue;
            }
            match self.toks[j].kind {
                TokKind::LBrace => {
                    if brace == 0 {
                        let close = self.close_brace(j, end);
                        let ce = self.node(NodeKind::ClosureEntry { open: j });
                        self.edge(cur, ce, EdgeKind::Seq);
                        // Dead-ends: closure facts never leak out.
                        let _ = self.block(j + 1..close, ce);
                        j = close + 1;
                        continue;
                    }
                    brace += 1;
                }
                TokKind::RBrace => brace -= 1,
                _ => {}
            }
            j += 1;
        }
        let n = self.node(NodeKind::Stmt(at..end));
        self.edge(cur, n, EdgeKind::Seq);
        (n, end)
    }

    /// Lower match arms in `range` as alternative paths `head → join`.
    fn lower_match_arms(&mut self, range: Range<usize>, head: usize, join: usize) {
        let mut i = range.start;
        let mut any = false;
        while i < range.end {
            // Pattern (with optional guard): scan to `=>` at nest 0.
            let mut nest = 0i32;
            let mut arrow = None;
            let mut j = i;
            while j < range.end {
                match self.toks[j].kind {
                    TokKind::LParen | TokKind::LBracket | TokKind::LBrace => nest += 1,
                    TokKind::RParen | TokKind::RBracket | TokKind::RBrace => nest -= 1,
                    TokKind::Punct if self.toks[j].text == "=>" && nest == 0 => {
                        arrow = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            let entry = self.node(NodeKind::Join);
            self.edge(head, entry, EdgeKind::Seq);
            let body_end;
            let arm_end;
            if self.toks.get(arrow + 1).is_some_and(|t| t.kind == TokKind::LBrace) {
                let close = self.close_brace(arrow + 1, range.end);
                body_end = self.block(arrow + 2..close, entry);
                arm_end = close + 1;
            } else {
                // Expression arm: to `,` at nest 0 or the match close.
                let mut nest = 0i32;
                let mut e = range.end;
                for k in arrow + 1..range.end {
                    match self.toks[k].kind {
                        TokKind::LParen | TokKind::LBracket | TokKind::LBrace => nest += 1,
                        TokKind::RParen | TokKind::RBracket | TokKind::RBrace => nest -= 1,
                        TokKind::Punct if self.toks[k].text == "," && nest == 0 => {
                            e = k;
                            break;
                        }
                        _ => {}
                    }
                }
                body_end = self.block(arrow + 1..e, entry);
                arm_end = e;
            }
            self.edge(body_end, join, EdgeKind::Seq);
            any = true;
            i = arm_end;
            if self.toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == ",") {
                i += 1;
            }
        }
        if !any {
            // Empty match (`match x {}`): diverges; keep join unreachable.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;
    use crate::parse::parse_file;
    use crate::source::SourceFile;

    fn cfg_of(src: &str) -> (Vec<Token>, Cfg) {
        let f = SourceFile::parse(src);
        let toks = tokenize(&f);
        let p = parse_file(&f, &toks);
        let body = p.functions[0].body.clone();
        let cfg = Cfg::build(&toks, body, &[]);
        (toks, cfg)
    }

    fn count<F: Fn(&NodeKind) -> bool>(cfg: &Cfg, f: F) -> usize {
        cfg.nodes.iter().filter(|n| f(n)).count()
    }

    #[test]
    fn straight_line_is_a_stmt_chain() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = 2; b }\n");
        assert_eq!(count(&cfg, |n| matches!(n, NodeKind::Stmt(_))), 3);
        // Entry reaches exit.
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    fn reaches(cfg: &Cfg, from: usize, to: usize) -> bool {
        let mut seen = vec![false; cfg.nodes.len()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen[n] {
                continue;
            }
            seen[n] = true;
            for &(s, _) in &cfg.succ[n] {
                stack.push(s);
            }
        }
        false
    }

    #[test]
    fn if_else_has_true_false_edges_and_join() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { a(); } else { b(); } d(); }\n");
        let branch = cfg.nodes.iter().position(|n| matches!(n, NodeKind::Branch(_))).unwrap();
        let kinds: Vec<EdgeKind> = cfg.succ[branch].iter().map(|&(_, k)| k).collect();
        assert!(kinds.contains(&EdgeKind::True));
        assert!(kinds.contains(&EdgeKind::False));
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    #[test]
    fn diverging_then_branch_skips_the_join() {
        // `continue` must not connect the then-branch to the if-join,
        // so the fall-through keeps ¬cond. Structurally: the True edge
        // subtree must not reach the statement after the `if` without
        // passing through the for head again.
        let (toks, cfg) =
            cfg_of("fn f(n: usize) { for i in 0..n { if i >= n { continue; } body(i); } }\n");
        let branch = cfg.nodes.iter().position(|n| matches!(n, NodeKind::Branch(_))).unwrap();
        let body_stmt = cfg
            .nodes
            .iter()
            .position(|n| match n {
                NodeKind::Stmt(r) => r.clone().any(|i| toks[i].is("body")),
                _ => false,
            })
            .unwrap();
        let for_head =
            cfg.nodes.iter().position(|n| matches!(n, NodeKind::ForHead { .. })).unwrap();
        // From the True edge, body_stmt is unreachable unless we pass
        // through the for head (which we cut here).
        let true_succ =
            cfg.succ[branch].iter().find(|&&(_, k)| k == EdgeKind::True).map(|&(s, _)| s).unwrap();
        let mut seen = vec![false; cfg.nodes.len()];
        seen[for_head] = true; // cut
        let mut stack = vec![true_succ];
        let mut hit = false;
        while let Some(n) = stack.pop() {
            if n == body_stmt {
                hit = true;
                break;
            }
            if seen[n] {
                continue;
            }
            seen[n] = true;
            for &(s, _) in &cfg.succ[n] {
                stack.push(s);
            }
        }
        assert!(!hit, "continue leaked into the if-join");
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    #[test]
    fn while_loop_has_back_edge() {
        let (_, cfg) = cfg_of("fn f(n: usize) { let mut i = 0; while i < n { i = i + 1; } }\n");
        let branch = cfg.nodes.iter().position(|n| matches!(n, NodeKind::Branch(_))).unwrap();
        // Some node has an edge back to the branch head.
        let has_back =
            cfg.succ.iter().enumerate().any(|(n, es)| {
                n != cfg.entry && es.iter().any(|&(s, _)| s == branch && n > branch)
            });
        assert!(has_back, "{cfg:?}");
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    #[test]
    fn for_head_splits_pat_and_iter() {
        let (toks, cfg) = cfg_of("fn f(xs: &[u32]) { for (i, x) in xs.iter().enumerate() { } }\n");
        let head = cfg
            .nodes
            .iter()
            .find_map(|n| match n {
                NodeKind::ForHead { pat, iter } => Some((pat.clone(), iter.clone())),
                _ => None,
            })
            .unwrap();
        let pat_text: Vec<&str> = head.0.clone().map(|i| toks[i].text.as_str()).collect();
        assert!(pat_text.contains(&"i"), "{pat_text:?}");
        let iter_text: Vec<&str> = head.1.clone().map(|i| toks[i].text.as_str()).collect();
        assert!(iter_text.contains(&"enumerate"), "{iter_text:?}");
    }

    #[test]
    fn closure_blocks_become_side_branches() {
        let (_, cfg) =
            cfg_of("fn f(v: &[u32]) { let s = v.iter().map(|x| { x + 1 }).sum::<u32>(); s; }\n");
        assert_eq!(count(&cfg, |n| matches!(n, NodeKind::ClosureEntry { .. })), 1);
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    #[test]
    fn return_routes_to_exit_and_kills_fallthrough() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { return; } after(); }\n");
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    #[test]
    fn match_arms_are_alternative_paths() {
        let (_, cfg) =
            cfg_of("fn f(x: u32) { match x { 0 => a(), 1 => { b(); } _ => c(), } d(); }\n");
        // Three arms -> three alternative entries off the scrutinee.
        let scrutinee = cfg.nodes.iter().position(|n| matches!(n, NodeKind::Stmt(_))).unwrap();
        assert_eq!(cfg.succ[scrutinee].len(), 3, "{cfg:?}");
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    #[test]
    fn loop_exits_only_via_break() {
        let (_, cfg) = cfg_of("fn f() { loop { if done() { break; } step(); } after(); }\n");
        assert!(reaches(&cfg, cfg.entry, cfg.exit));
    }

    #[test]
    fn visible_skips_embedded_blocks() {
        let f =
            SourceFile::parse("fn f(v: &[u32]) { let s = v.iter().map(|x| { x + 1 }).sum(); }\n");
        let toks = tokenize(&f);
        let p = parse_file(&f, &toks);
        let body = p.functions[0].body.clone();
        let vis = visible(&toks, &body, &[]);
        let texts: Vec<&str> = vis.iter().map(|&i| toks[i].text.as_str()).collect();
        assert!(texts.contains(&"map"), "{texts:?}");
        assert!(!texts.contains(&"+"), "closure interior must be skipped: {texts:?}");
    }
}
