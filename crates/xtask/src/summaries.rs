//! Interprocedural effect summaries over the workspace call graph.
//!
//! Every function gets a [`Summary`] describing what its body — and
//! everything it can reach through calls — may do: panic, allocate,
//! acquire locks, mutate shared state (`static mut`, non-thread-local
//! `Cell`/`RefCell`), and touch atomic fields with which `Ordering`.
//!
//! Summaries fold **bottom-up over the SCC condensation** of
//! [`crate::callgraph::CallGraph`]: Tarjan emission order is reverse
//! topological, so every callee outside the current component is final
//! when a component is entered. Within a component (mutual or direct
//! recursion) the members iterate to a fixpoint; the lattice is a
//! product of two booleans and three capped sets, so its height is
//! finite and the caps *are* the widening — once a set reaches its cap
//! it stops absorbing and the iteration converges.
//!
//! Shared-state mutations carry a **witness chain**: the concrete hop
//! sequence (`file:line` of each call, then the write itself) that the
//! `par_race` rule renders so a finding on `xs.par_iter().map(f)` can
//! point at the `static mut` assignment three calls inside `f`.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::parse::AtomicKind;

/// Witness caps: summaries are propagated along every edge of the call
/// graph, so they must stay small. Caps double as the widening
/// operator at recursion — see the module docs.
pub const MAX_WITNESSES: usize = 4;
/// Cap on the `locks` / `atomics` sets.
pub const MAX_SET: usize = 32;
/// Cap on witness-chain length (hops beyond it are elided in
/// rendering, the finding still fires).
pub const MAX_CHAIN: usize = 8;

/// One hop of a witness chain: a line inside `node`'s file — either a
/// call site on the way down or the final write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Call-graph node whose file contains the line.
    pub node: usize,
    /// 1-based line.
    pub line: usize,
}

/// A reachable shared-state mutation with its concrete path.
#[derive(Debug, Clone)]
pub struct MutWitness {
    /// Human description of the final write, e.g.
    /// `` write to `static mut TOTAL` ``.
    pub what: String,
    /// Hops from the summarized function down to the write. `chain[0]`
    /// is in the summarized function's own body (the write itself, or
    /// the call that leads toward it); the last hop is the write.
    pub chain: Vec<Hop>,
}

/// One atomic touch: `(field, kind, ordering)`.
pub type AtomicTouch = (String, AtomicKind, String);

/// The per-function effect summary.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// May hit a panic sink.
    pub panics: bool,
    /// May allocate.
    pub allocates: bool,
    /// Lock names possibly acquired (capped at [`MAX_SET`]).
    pub locks: BTreeSet<String>,
    /// Shared-state mutations reachable from the function, deduped by
    /// description and capped at [`MAX_WITNESSES`].
    pub shared_mut: Vec<MutWitness>,
    /// Atomic fields touched, with operation kind and ordering
    /// (capped at [`MAX_SET`]).
    pub atomics: BTreeSet<AtomicTouch>,
}

impl Summary {
    /// Merge callee effects into `self` through a call at `line` in
    /// `caller`'s body. Returns whether anything changed (drives the
    /// intra-SCC fixpoint).
    fn absorb(&mut self, callee: &Summary, caller: usize, line: usize) -> bool {
        let mut changed = false;
        if callee.panics && !self.panics {
            self.panics = true;
            changed = true;
        }
        if callee.allocates && !self.allocates {
            self.allocates = true;
            changed = true;
        }
        for l in &callee.locks {
            if self.locks.len() >= MAX_SET {
                break;
            }
            changed |= self.locks.insert(l.clone());
        }
        for a in &callee.atomics {
            if self.atomics.len() >= MAX_SET {
                break;
            }
            changed |= self.atomics.insert(a.clone());
        }
        for w in &callee.shared_mut {
            if self.shared_mut.len() >= MAX_WITNESSES {
                break;
            }
            if w.chain.len() >= MAX_CHAIN {
                continue;
            }
            if self.shared_mut.iter().any(|mine| mine.what == w.what) {
                continue;
            }
            let mut chain = Vec::with_capacity(w.chain.len() + 1);
            chain.push(Hop { node: caller, line });
            chain.extend(w.chain.iter().cloned());
            self.shared_mut.push(MutWitness { what: w.what.clone(), chain });
            changed = true;
        }
        changed
    }
}

/// Seed one node's summary from its own parsed facts.
fn seed(graph: &CallGraph, v: usize) -> Summary {
    let func = &graph.nodes[v].func;
    let mut s = Summary {
        panics: !func.sinks.is_empty(),
        allocates: !func.allocs.is_empty(),
        ..Summary::default()
    };
    for l in &func.locks {
        if s.locks.len() >= MAX_SET {
            break;
        }
        s.locks.insert(l.name.clone());
    }
    for a in &func.atomics {
        if s.atomics.len() >= MAX_SET {
            break;
        }
        s.atomics.insert((a.field.clone(), a.kind, a.ordering.clone()));
    }
    for w in &func.shared_writes {
        if s.shared_mut.len() >= MAX_WITNESSES {
            break;
        }
        if s.shared_mut.iter().any(|mine| mine.what == w.what) {
            continue;
        }
        s.shared_mut
            .push(MutWitness { what: w.what.clone(), chain: vec![Hop { node: v, line: w.line }] });
    }
    s
}

/// Compute every node's summary, bottom-up over the SCC condensation.
pub fn compute(graph: &CallGraph) -> Vec<Summary> {
    let mut sums: Vec<Summary> = (0..graph.nodes.len()).map(|v| seed(graph, v)).collect();
    for comp in graph.sccs() {
        // Callees outside the component are final; members of the
        // component iterate among themselves until nothing changes.
        loop {
            let mut changed = false;
            for &v in &comp {
                for e in &graph.out[v] {
                    if e.to == v {
                        continue; // self-edge adds nothing new
                    }
                    let callee = sums[e.to].clone();
                    changed |= sums[v].absorb(&callee, v, e.line);
                }
            }
            if !changed || comp.len() == 1 {
                break;
            }
        }
    }
    sums
}

/// Render a witness chain as `file:line → file:line → …` using the
/// graph's node paths.
pub fn render_chain(graph: &CallGraph, chain: &[Hop]) -> String {
    let parts: Vec<String> = chain
        .iter()
        .take(MAX_CHAIN)
        .map(|h| format!("{}:{}", graph.nodes[h.node].path.display(), h.line))
        .collect();
    let mut s = parts.join(" → ");
    if chain.len() > MAX_CHAIN {
        s.push_str(" → …");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;
    use crate::parse::{parse_file, ParsedFile};
    use crate::source::SourceFile;
    use std::path::{Path, PathBuf};

    fn graph(src: &str) -> CallGraph {
        let f = SourceFile::parse(src);
        let toks = tokenize(&f);
        let files: Vec<(PathBuf, ParsedFile, bool)> =
            vec![(Path::new("crates/a/src/lib.rs").to_path_buf(), parse_file(&f, &toks), false)];
        CallGraph::build(&files)
    }

    fn id(g: &CallGraph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.func.display() == name).unwrap()
    }

    #[test]
    fn transitive_shared_mut_carries_chain() {
        let g = graph(
            "\
static mut TOTAL: u64 = 0;
fn top() { mid(); }
fn mid() { leaf(); }
fn leaf() { unsafe { TOTAL += 1 }; }
",
        );
        let sums = compute(&g);
        let top = id(&g, "top");
        let s = &sums[top];
        assert_eq!(s.shared_mut.len(), 1, "{:?}", s.shared_mut);
        let w = &s.shared_mut[0];
        assert!(w.what.contains("TOTAL"), "{w:?}");
        // top's call line, mid's call line, the write.
        assert_eq!(w.chain.len(), 3, "{w:?}");
        assert_eq!(w.chain[0], Hop { node: top, line: 2 });
        assert_eq!(w.chain[2].line, 4);
        let rendered = render_chain(&g, &w.chain);
        assert!(rendered.contains("lib.rs:2 → "), "{rendered}");
        assert!(rendered.ends_with(":4"), "{rendered}");
    }

    #[test]
    fn recursion_reaches_fixpoint_with_union_effects() {
        let g = graph(
            "\
fn ping(n: u32) { if n > 0 { pong(n - 1); } }
fn pong(n: u32) { let v = vec![0u8; 1]; drop(v); ping(n); }
",
        );
        let sums = compute(&g);
        assert!(sums[id(&g, "ping")].allocates, "effect flows around the cycle");
        assert!(sums[id(&g, "pong")].allocates);
    }

    #[test]
    fn atomics_and_locks_union_transitively() {
        let g = graph(
            "\
fn entry(s: &S) { s.bump(); }
impl S {
    fn bump(&self) {
        let _g = self.state.lock().unwrap();
        self.gen.store(1, Ordering::Release);
    }
}
",
        );
        // `state` must be a known lock name for the acquisition fact;
        // parse_file only learns lock names from bindings, so re-parse
        // with one in scope.
        let g2 = graph(
            "\
struct S { state: Mutex<u32> }
fn entry(s: &S) { s.bump(); }
impl S {
    fn bump(&self) {
        let _g = self.state.lock().unwrap();
        self.gen.store(1, Ordering::Release);
    }
}
",
        );
        let _ = g;
        let sums = compute(&g2);
        let entry = id(&g2, "entry");
        assert!(
            sums[entry].atomics.contains(&("gen".into(), AtomicKind::Store, "Release".into())),
            "{:?}",
            sums[entry].atomics
        );
        assert!(sums[entry].locks.contains("state"), "{:?}", sums[entry].locks);
    }
}
