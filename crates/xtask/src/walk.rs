//! Workspace file discovery shared by the lint and analyze passes.
//!
//! Scope: every `.rs` file under `crates/` (sources, unit tests,
//! integration tests, benches), plus the top-level `tests/` and
//! `examples/` trees that the facade crate compiles via path overrides.
//! Excluded:
//!
//! * `shims/` — vendored stand-ins for external crates; they mimic
//!   upstream APIs and are not held to this repo's invariants;
//! * any `fixtures/` directory — analyzer test inputs contain
//!   *intentional* violations;
//! * `target/` build output.

use std::path::{Path, PathBuf};

/// Every workspace `.rs` file both passes operate on, sorted for
/// deterministic diagnostic order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collect `.rs` files, honoring the exclusion list.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            let excluded =
                p.file_name().is_some_and(|n| n == "target" || n == "fixtures" || n == "shims");
            if excluded {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The crate (or top-level tree) a workspace-relative path belongs to:
/// `crates/engine/src/exec.rs` → `engine`, `tests/ingest.rs` → `tests`.
pub fn crate_of(rel: &Path) -> String {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned());
    match comps.next().as_deref() {
        Some("crates") => comps.next().unwrap_or_else(|| "crates".into()),
        Some(top) => top.to_string(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of(Path::new("crates/engine/src/exec.rs")), "engine");
        assert_eq!(crate_of(Path::new("tests/ingest.rs")), "tests");
        assert_eq!(crate_of(Path::new("examples/quickstart.rs")), "examples");
    }

    #[test]
    fn walker_skips_fixtures_and_target() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
        let files = workspace_files(root).unwrap();
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| {
            let s = f.to_string_lossy();
            !s.contains("/fixtures/") && !s.contains("/target/") && !s.contains("/shims/")
        }));
        // The extended scope actually includes tests and benches.
        assert!(files.iter().any(|f| f.to_string_lossy().contains("crates/columnar/tests/")));
        assert!(files.iter().any(|f| f.starts_with(root.join("examples"))));
    }
}
