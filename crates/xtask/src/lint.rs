//! The custom static-analysis pass behind `cargo xtask lint`.
//!
//! Four source-level rules, each encoding an invariant the workspace
//! lints cannot express:
//!
//! * `safety_comment` — every `unsafe` block, fn, or impl must carry a
//!   `// SAFETY:` comment on the same line or directly above it
//!   (doc-comment `# Safety` sections count for `unsafe fn`);
//! * `no_panic` — no `unwrap()` / `expect()` / `panic!` in non-test
//!   code of the engine and columnar hot paths;
//! * `id_cast` — no bare `as` narrowing casts on row/event/mention id
//!   expressions; use the checked helpers in `gdelt_model::ids`;
//! * `par_index` — no `[i]`-style indexing with a variable inside
//!   rayon closures in `crates/engine`; prefer `get`, iterators, or a
//!   justified marker.
//!
//! Any rule can be locally suppressed with a justified marker:
//! `// lint: allow(<rule>): <reason>` on the offending line or the
//! line above. The reason is mandatory.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use std::path::Path;

/// Crates whose `src/` trees the panic / cast / par rules cover.
/// `safety_comment` applies to the whole workspace.
const HOT_PATH_CRATES: &[&str] = &["engine", "columnar", "serve"];
const ID_CAST_CRATES: &[&str] = &["engine", "columnar", "model"];

/// Run every rule over `src` as if it lived at `path`.
///
/// The rule set applied is derived from the path, mirroring the
/// directory scopes above.
pub fn lint_source(path: &Path, src: &str) -> Vec<Diagnostic> {
    lint_file(path, &SourceFile::parse(src))
}

/// Run every rule over an already-parsed file. `cargo xtask analyze`
/// replays the line lints through this entry point so their marker
/// lookups land on its shared [`SourceFile`] instances before the
/// stale-marker audit diffs used markers against present ones.
pub fn lint_file(path: &Path, file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    safety_comment(path, file, &mut out);
    let in_crate = |names: &[&str]| {
        let p = path.to_string_lossy().replace('\\', "/");
        names.iter().any(|c| p.contains(&format!("crates/{c}/src/")))
    };
    if in_crate(HOT_PATH_CRATES) {
        no_panic(path, file, &mut out);
    }
    if in_crate(ID_CAST_CRATES) {
        id_cast(path, file, &mut out);
    }
    if in_crate(&["engine"]) {
        par_index(path, file, &mut out);
    }
    out
}

/// Lint every workspace `.rs` file (crate sources and tests, plus the
/// top-level `tests/` and `examples/` trees — see [`crate::walk`]).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = crate::walk::workspace_files(root)?;
    let mut out = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        let rel = f.strip_prefix(root).unwrap_or(&f).to_path_buf();
        out.extend(lint_source(&rel, &src));
    }
    Ok(out)
}

/// Rule 1: `unsafe` sites must be justified in a comment.
fn safety_comment(path: &Path, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let Some(pos) = find_word(code, "unsafe") else {
            continue;
        };
        // `unsafe` in a forbid/deny attribute or a trait bound list is
        // not a site; only block/fn/impl forms are.
        let after = code[pos + "unsafe".len()..].trim_start();
        let is_site = after.starts_with('{')
            || after.starts_with("impl")
            || after.starts_with("fn")
            || after.is_empty(); // `unsafe` alone, `{` on the next line
        if !is_site {
            continue;
        }
        if has_safety_justification(file, idx) {
            continue;
        }
        out.push(Diagnostic::new(
            path,
            idx + 1,
            "safety_comment",
            "unsafe site without a `// SAFETY:` comment explaining why it is sound".into(),
        ));
    }
}

/// Look for `SAFETY:` (or a `# Safety` doc section) on the line, or in
/// the contiguous run of comment/attribute-only lines directly above.
fn has_safety_justification(file: &SourceFile, idx: usize) -> bool {
    let is_safety =
        |l: &crate::source::Line| l.comment.contains("SAFETY:") || l.comment.contains("# Safety");
    if is_safety(&file.lines[idx]) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &file.lines[j];
        let code = l.code.trim();
        let is_annotation = code.is_empty() || code.starts_with("#[");
        if !is_annotation {
            return false;
        }
        if is_safety(l) {
            return true;
        }
    }
    false
}

/// Rule 2: panicking calls are banned in hot-path non-test code.
fn no_panic(path: &Path, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const PATTERNS: &[(&str, &str)] = &[
        (".unwrap()", "use pattern matching, `?`, or a justified marker"),
        (".expect(", "return an error or add a justified marker"),
        ("panic!", "hot paths must not panic; return an error instead"),
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for (pat, hint) in PATTERNS {
            if line.code.contains(pat) && !file.allowed(idx + 1, "no_panic") {
                out.push(Diagnostic::new(
                    path,
                    idx + 1,
                    "no_panic",
                    format!("`{}` in hot-path code: {hint}", pat.trim_matches('.')),
                ));
                break; // one diagnostic per line
            }
        }
    }
}

/// Narrow integer targets for the cast rule.
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier segments that mark a value as a row/event/mention id.
const ID_SEGMENTS: &[&str] = &["id", "row", "event", "mention"];

/// Rule 3: `some_row as u32`-style casts silently wrap at scale
/// (GDELT's full corpus has 325M events); flag them on id-carrying
/// names and point at the checked helpers.
fn id_cast(path: &Path, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let code = &line.code;
        let mut search = 0;
        while let Some(rel) = code[search..].find(" as ") {
            let pos = search + rel;
            search = pos + 4;
            let target: String =
                code[pos + 4..].chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
            if !NARROW.contains(&target.as_str()) {
                continue;
            }
            let Some(name) = ident_before(code, pos) else {
                continue;
            };
            let lowered = name.to_ascii_lowercase();
            let flagged =
                lowered.split('_').any(|seg| ID_SEGMENTS.contains(&seg.trim_end_matches('s')));
            if flagged && !file.allowed(idx + 1, "id_cast") {
                out.push(Diagnostic::new(
                    path,
                    idx + 1,
                    "id_cast",
                    format!(
                        "bare narrowing cast `{name} as {target}` on an id value; \
                         use gdelt_model::ids checked casts (e.g. `ids::row_u32`)"
                    ),
                ));
                break;
            }
        }
    }
}

/// Final identifier of the expression ending right before byte `pos`
/// (e.g. `self.mentions.event_row` → `event_row`). Returns `None` for
/// non-path endings like `)` or `]`.
fn ident_before(code: &str, pos: usize) -> Option<String> {
    let head = code[..pos].trim_end();
    let tail: String =
        head.chars().rev().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    let ident: String = tail.chars().rev().collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// Markers that start a rayon-parallel region.
const PAR_MARKERS: &[&str] = &[".par_iter()", ".into_par_iter()", "parallel_map(", ".par_chunks"];

/// Rule 4: inside a parallel closure, `v[i]` with a variable index
/// turns a data-layout bug into a hard-to-reproduce panic on one
/// worker thread; require `get`, zipped iterators, or a marker.
fn par_index(path: &Path, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut region_depth: Option<i32> = None;
    let mut depth: i32 = 0;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let starts_here = !file.in_test[idx] && PAR_MARKERS.iter().any(|m| code.contains(m));
        if region_depth.is_none() && starts_here {
            region_depth = Some(depth);
        }
        let in_region = region_depth.is_some();
        if in_region
            && !file.in_test[idx]
            && has_variable_index(code)
            && !file.allowed(idx + 1, "par_index")
        {
            out.push(Diagnostic::new(
                path,
                idx + 1,
                "par_index",
                "variable indexing inside a parallel region; use `get`, \
                 zipped iterators, or a justified marker"
                    .into(),
            ));
        }
        for c in code.chars() {
            match c {
                '(' | '{' | '[' => depth += 1,
                ')' | '}' | ']' => {
                    depth -= 1;
                    if region_depth.is_some_and(|d| depth <= d) {
                        region_depth = None;
                    }
                }
                _ => {}
            }
        }
        // A statement end at region depth also closes the region
        // (covers one-line `let x = a.par_iter()...;`).
        if region_depth.is_some_and(|d| depth <= d) && code.trim_end().ends_with(';') {
            region_depth = None;
        }
    }
}

/// Does the line index a collection with a non-literal expression?
/// `v[i]`, `v[i + 1]`, `v[e.index()]` → yes; `v[0]`, `v[..n]`,
/// attributes `#[...]` and slicing with ranges → no.
fn has_variable_index(code: &str) -> bool {
    let bytes: Vec<char> = code.chars().collect();
    for (i, &c) in bytes.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Must follow an identifier or `)`/`]` (an indexable value);
        // skips attributes and array literals.
        let before = code[..char_len(&bytes, i)].trim_end();
        let indexable = before
            .chars()
            .last()
            .is_some_and(|p| p.is_ascii_alphanumeric() || p == '_' || p == ')' || p == ']');
        if !indexable {
            continue;
        }
        // Grab the bracket body (same line only — multiline indexing
        // is rare and caught by the next line's scan).
        let body: String = bytes[i + 1..].iter().take_while(|&&c| c != ']').collect();
        let body = body.trim();
        if body.is_empty() || body.contains("..") {
            continue; // slicing
        }
        let literal = body.chars().all(|c| c.is_ascii_digit() || c == '_');
        if !literal {
            return true;
        }
    }
    false
}

fn char_len(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

/// Find `word` in `code` at word boundaries.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0
            || !code[..pos].chars().last().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let after = code[pos + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(Path::new(path), src)
    }

    #[test]
    fn unsafe_without_safety_fires() {
        let d = lint("crates/columnar/src/x.rs", "fn f() {\n    unsafe { work() }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "safety_comment");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_passes() {
        let src =
            "fn f() {\n    // SAFETY: ptr is valid for len elements\n    unsafe { work() }\n}\n";
        assert!(lint("crates/columnar/src/x.rs", src).is_empty());
        let impl_src =
            "// SAFETY: T: Send is required by the bound\nunsafe impl<T: Send> Send for B<T> {}\n";
        assert!(lint("crates/columnar/src/x.rs", impl_src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let src = "fn f() { let s = \"unsafe { }\"; } // unsafe { }\n";
        assert!(lint("crates/columnar/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_in_hot_path_fires_and_marker_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let d = lint("crates/engine/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no_panic");

        let ok = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(no_panic): checked above\n    x.unwrap()\n}\n";
        assert!(lint("crates/engine/src/x.rs", ok).is_empty());
    }

    #[test]
    fn panic_outside_hot_paths_ignored() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint("crates/analysis/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_in_tests_ignored() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn id_cast_fires_on_narrowing_id_names() {
        let d = lint("crates/engine/src/x.rs", "fn f(row: usize) -> u32 { row as u32 }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "id_cast");
        let d = lint("crates/columnar/src/x.rs", "fn f(m: &M) -> u32 { m.event_id as u32 }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn id_cast_ignores_widening_and_plain_names() {
        assert!(lint("crates/engine/src/x.rs", "fn f(row: u32) -> u64 { row as u64 }\n").is_empty());
        assert!(lint("crates/engine/src/x.rs", "fn f(n: usize) -> u32 { n as u32 }\n").is_empty());
        let marked =
            "fn f(row: usize) -> u32 {\n    // lint: allow(id_cast): row < 1000 by construction\n    row as u32\n}\n";
        assert!(lint("crates/engine/src/x.rs", marked).is_empty());
    }

    #[test]
    fn par_index_fires_inside_parallel_region() {
        let src = "fn f(v: &[u64]) -> Vec<u64> {\n    (0..v.len()).into_par_iter().map(|i| v[i + 1]).collect()\n}\n";
        let d = lint("crates/engine/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "par_index");
    }

    #[test]
    fn par_index_quiet_outside_regions_and_for_literals() {
        let src = "fn f(v: &[u64]) -> u64 { v[0] + v[1] }\n";
        assert!(lint("crates/engine/src/x.rs", src).is_empty());
        let seq = "fn f(v: &[u64], i: usize) -> u64 { v[i] }\n";
        assert!(lint("crates/engine/src/x.rs", seq).is_empty(), "sequential indexing is fine");
        let slice = "fn f(v: &[u64]) -> Vec<u64> { v.par_iter().map(|x| x + 1).collect() }\n";
        assert!(lint("crates/engine/src/x.rs", slice).is_empty());
    }

    #[test]
    fn par_region_ends_at_statement_boundary() {
        let src = "fn f(v: &[u64], i: usize) -> u64 {\n    let s: u64 = v.par_iter().sum();\n    s + v[i]\n}\n";
        assert!(lint("crates/engine/src/x.rs", src).is_empty());
    }
}
