//! `result_discard`: a `Result` from a workspace function, dropped.
//!
//! Inside serve/engine hot paths a dropped `Result` usually means a
//! swallowed error: `let _ = store.flush();` or a bare
//! `sink.write_batch(rows);` statement. The analyzer resolves each call
//! through the call graph; calls landing on workspace functions whose
//! signature returns `Result` become candidates, and this module
//! pattern-matches the *statement* around each candidate: a finding is
//! a statement that is exactly a discarded call — `let _ = …;` or a
//! bare call expression — with no `?`, no `.unwrap()`/`.expect()`, no
//! binding, and no use of the value.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::cfg::{visible, Cfg, NodeKind};
use crate::lex::{TokKind, Token};

/// A candidate: (line, callee name) resolving to a workspace
/// `Result`-returning function.
pub type ResultCall = (usize, String);

/// One confirmed discard.
#[derive(Debug, Clone)]
pub struct DiscardFinding {
    /// Line of the discarded call.
    pub line: usize,
    /// Callee name.
    pub callee: String,
    /// `true` for `let _ = …;`, `false` for a bare statement.
    pub explicit: bool,
}

/// Scan one function body for discarded `Result` calls.
pub fn check_function(
    toks: &[Token],
    body: Range<usize>,
    children: &[Range<usize>],
    candidates: &BTreeSet<ResultCall>,
) -> Vec<DiscardFinding> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::build(toks, body, children);
    let mut out: Vec<DiscardFinding> = Vec::new();
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for kind in &cfg.nodes {
        let NodeKind::Stmt(r) = kind else { continue };
        let vis = visible(toks, r, children);
        let Some(f) = discarded_call(toks, &vis, candidates) else { continue };
        if seen.insert((f.line, f.callee.clone())) {
            out.push(f);
        }
    }
    out.sort_by(|a, b| (a.line, &a.callee).cmp(&(b.line, &b.callee)));
    out
}

/// Does this statement discard a candidate call's `Result`?
fn discarded_call(
    toks: &[Token],
    vis: &[usize],
    candidates: &BTreeSet<ResultCall>,
) -> Option<DiscardFinding> {
    // A discard is a *statement*: it must end in `;`. Tail expressions
    // and match scrutinees (also lowered as `Stmt` nodes) produce a
    // value and are not discards.
    let &last = vis.last()?;
    if toks[last].text != ";" {
        return None;
    }
    let vis = &vis[..vis.len() - 1];
    if vis.len() < 3 {
        return None;
    }
    let explicit = toks[vis[0]].is("let") && toks[vis[1]].text == "_" && toks[vis[2]].text == "=";
    let expr = if explicit { &vis[3..] } else { vis };
    if expr.is_empty() {
        return None;
    }
    if !explicit {
        // A bare statement: reject anything that is not a plain call
        // expression — bindings, control flow, assignments, `?`.
        let head = &toks[expr[0]];
        if head.kind != TokKind::Ident
            || matches!(
                head.text.as_str(),
                "let"
                    | "return"
                    | "if"
                    | "while"
                    | "for"
                    | "loop"
                    | "match"
                    | "break"
                    | "continue"
                    | "use"
                    | "fn"
                    | "assert"
                    | "debug_assert"
            )
        {
            return None;
        }
        let mut nest = 0i32;
        for &p in expr {
            match toks[p].kind {
                TokKind::LParen | TokKind::LBracket => nest += 1,
                TokKind::RParen | TokKind::RBracket => nest -= 1,
                _ if nest == 0 && (toks[p].text == "=" || toks[p].text == "?") => return None,
                _ => {}
            }
        }
    }
    // The statement's value is the *last* call: `…name(…)` must close
    // the expression, so `foo().unwrap()` attributes to `unwrap`, not
    // `foo`, and drops out of the candidate set.
    let last = *expr.last()?;
    if toks[last].kind != TokKind::RParen {
        return None;
    }
    let mut depth = 0i32;
    let mut open = None;
    for (k, &p) in expr.iter().enumerate().rev() {
        match toks[p].kind {
            TokKind::RParen => depth += 1,
            TokKind::LParen => {
                depth -= 1;
                if depth == 0 {
                    open = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }
    let open = open?;
    if open == 0 {
        return None;
    }
    let name_tok = &toks[expr[open - 1]];
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let key = (name_tok.line, name_tok.text.clone());
    if !candidates.contains(&key) {
        return None;
    }
    Some(DiscardFinding { line: key.0, callee: key.1, explicit })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;
    use crate::parse::parse_file;
    use crate::source::SourceFile;

    fn run(src: &str, cands: &[(usize, &str)]) -> Vec<DiscardFinding> {
        let f = SourceFile::parse(src);
        let toks = tokenize(&f);
        let p = parse_file(&f, &toks);
        let candidates: BTreeSet<ResultCall> =
            cands.iter().map(|(l, n)| (*l, n.to_string())).collect();
        check_function(&toks, p.functions[0].body.clone(), &[], &candidates)
    }

    #[test]
    fn let_underscore_discard_is_flagged() {
        let got = run("fn f() {\n    let _ = flush();\n}\n", &[(2, "flush")]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].explicit);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn bare_statement_discard_is_flagged() {
        let got = run("fn f(s: &S) {\n    s.write_batch(rows);\n}\n", &[(2, "write_batch")]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(!got[0].explicit);
    }

    #[test]
    fn question_mark_is_not_a_discard() {
        let got = run("fn f() -> R {\n    flush()?;\n    ok()\n}\n", &[(2, "flush")]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn bound_result_is_not_a_discard() {
        let got = run("fn f() {\n    let r = flush();\n    use_it(r);\n}\n", &[(2, "flush")]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn unwrapped_result_is_not_a_discard() {
        // `.unwrap()` consumes the Result; the final call is `unwrap`,
        // which is not a candidate.
        let got = run("fn f() {\n    flush().unwrap();\n}\n", &[(2, "flush")]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn match_on_result_is_not_a_discard() {
        let got = run(
            "fn f() {\n    match flush() {\n        Ok(_) => {}\n        Err(e) => log(e),\n    }\n}\n",
            &[(2, "flush")],
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
