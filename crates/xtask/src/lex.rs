//! Token stream over a parsed [`SourceFile`].
//!
//! The analyze pass needs more structure than per-line pattern matching:
//! item boundaries, call expressions, bracket nesting. This lexer turns
//! the comment-stripped, literal-blanked `code` text of a `SourceFile`
//! into a flat token stream with line numbers, which `parse` then walks.
//! It is deliberately small — identifiers, numbers, strings (already
//! blanked), and punctuation, with only the multi-char operators the
//! parser cares about (`::`, `..`, `->`, `=>`) fused into one token.

use crate::source::SourceFile;

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (possibly with suffix, e.g. `0u32`).
    Num,
    /// A (blanked) string or char literal.
    Lit,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// Everything else: operators and separators.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (`::` and friends kept whole; literals blanked to `""`).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Classification.
    pub kind: TokKind,
}

impl Token {
    /// Is this token the exact identifier `s`?
    #[inline]
    pub fn is(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Lex every code line of `file` into one token stream.
pub fn tokenize(file: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let line_no = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    kind: TokKind::Ident,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                // Digits plus suffix/underscore/hex chars and a float dot
                // (but not `..`): one Num token per literal is enough.
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                            && chars.get(i.wrapping_sub(1)).is_some_and(char::is_ascii_digit)))
                {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    kind: TokKind::Num,
                });
            } else if c == '"' || c == '\'' {
                // Literal contents are blanked by the SourceFile lexer;
                // scan to the closing quote on this line (or line end for
                // multiline strings — the continuation lines are all
                // blanks and lex to nothing).
                let mut j = i + 1;
                while j < chars.len() && chars[j] != c {
                    j += 1;
                }
                // A `'` opens a char literal only when the SourceFile
                // lexer blanked its contents (the span to the closing
                // quote is all spaces). A lifetime keeps its name as
                // code, so any non-space interior — or no closing quote
                // at all — means this quote is a lifetime tick; emit it
                // as punct so generics still parse and a later char
                // literal on the same line is not swallowed.
                if c == '\'' && (j >= chars.len() || chars[i + 1..j].iter().any(|&ch| ch != ' ')) {
                    out.push(Token { text: "'".into(), line: line_no, kind: TokKind::Punct });
                    i += 1;
                    continue;
                }
                out.push(Token { text: String::new(), line: line_no, kind: TokKind::Lit });
                i = (j + 1).min(chars.len());
            } else {
                let (text, kind, advance) = match (c, chars.get(i + 1)) {
                    (':', Some(':')) => ("::", TokKind::Punct, 2),
                    ('.', Some('.')) => ("..", TokKind::Punct, 2),
                    ('-', Some('>')) => ("->", TokKind::Punct, 2),
                    ('=', Some('>')) => ("=>", TokKind::Punct, 2),
                    ('{', _) => ("{", TokKind::LBrace, 1),
                    ('}', _) => ("}", TokKind::RBrace, 1),
                    ('(', _) => ("(", TokKind::LParen, 1),
                    (')', _) => (")", TokKind::RParen, 1),
                    ('[', _) => ("[", TokKind::LBracket, 1),
                    (']', _) => ("]", TokKind::RBracket, 1),
                    _ => ("", TokKind::Punct, 1),
                };
                if text.is_empty() {
                    out.push(Token { text: c.to_string(), line: line_no, kind: TokKind::Punct });
                } else {
                    out.push(Token { text: text.into(), line: line_no, kind });
                }
                i += advance;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<Token> {
        tokenize(&SourceFile::parse(src))
    }

    #[test]
    fn idents_numbers_punct() {
        let t = lex("fn f(x: u32) -> u32 { x + 1_000u32 }\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["fn", "f", "(", "x", ":", "u32", ")", "->", "u32", "{", "x", "+", "1_000u32", "}"]
        );
        assert_eq!(t[0].kind, TokKind::Ident);
        assert_eq!(t[12].kind, TokKind::Num);
    }

    #[test]
    fn multichar_operators_fuse() {
        let t = lex("a::b(0..n);\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "::", "b", "(", "0", "..", "n", ")", ";"]);
    }

    #[test]
    fn line_numbers_track_source() {
        let t = lex("a\nb\n\nc\n");
        let lines: Vec<usize> = t.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn strings_lex_to_single_literal_token() {
        let t = lex("f(\"unsafe panic!()\", x)\n");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Lit).count(), 1);
        assert!(!t.iter().any(|t| t.is("unsafe")));
    }

    #[test]
    fn comments_produce_no_tokens() {
        let t = lex("// panic!()\n/* assert!(x) */\n");
        assert!(t.is_empty());
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let t = lex("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(t.iter().any(|t| t.is("str")));
        assert!(t.iter().any(|t| t.is("x")));
    }

    #[test]
    fn lifetime_and_char_literal_share_a_line() {
        // The lifetime tick must not pair with the char literal's
        // opening quote and swallow `u32 = p; let c =` as one literal.
        let t = lex("let r: &'a u32 = p; let c = 'z';\n");
        assert!(t.iter().any(|t| t.is("u32")), "{t:?}");
        assert!(t.iter().any(|t| t.is("p")), "{t:?}");
        assert!(t.iter().any(|t| t.is("c")), "{t:?}");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Lit).count(), 1, "{t:?}");
    }

    #[test]
    fn escaped_quote_char_literal_lexes_clean() {
        let t = lex("let q = '\\''; let next = 1;\n");
        assert!(t.iter().any(|t| t.is("next")), "{t:?}");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Lit).count(), 1, "{t:?}");
    }

    #[test]
    fn raw_strings_with_hashes_lex_to_one_literal() {
        let t = lex("let s = r##\"a \"# b\"##; let y = 2;\n");
        assert!(t.iter().any(|t| t.is("y")), "{t:?}");
        assert!(!t.iter().any(|t| t.is("b")), "raw contents must be blanked: {t:?}");
    }

    #[test]
    fn nested_block_comment_hides_tokens() {
        let t = lex("a /* x /* panic!() */ y */ b\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b"]);
    }

    #[test]
    fn float_literal_is_one_token_but_range_splits() {
        let t = lex("let x = 1.5; let r = 0..10;\n");
        assert!(t.iter().any(|t| t.text == "1.5"));
        assert!(t.iter().any(|t| t.text == ".."));
    }
}
