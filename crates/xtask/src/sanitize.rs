//! Sanitizer entry points: `cargo xtask miri` and `cargo xtask tsan`.
//!
//! Both need nightly-only tooling that may be absent from a given
//! machine (the CI image pins a nightly with the Miri component; dev
//! boxes often lack it). Rather than failing with an inscrutable cargo
//! error mid-run, each command probes for its prerequisites first and
//! prints exactly what is missing and how to get it.

use std::process::Command;

/// The nightly toolchain CI pins for Miri runs (see
/// `.github/workflows/ci.yml`). Local runs use whatever `+nightly`
/// resolves to.
pub const MIRI_NIGHTLY: &str = "nightly";

/// Run the aligned-buffer test target under Miri.
///
/// Exercises every unsafe path in `gdelt-columnar`'s `AlignedBuf`
/// (`crates/columnar/tests/miri_aligned.rs`) with the strictest
/// provenance checking.
pub fn miri() -> Result<(), String> {
    probe_component("miri", "miri")?;
    run(Command::new("cargo")
        .args([
            &format!("+{MIRI_NIGHTLY}"),
            "miri",
            "test",
            "-p",
            "gdelt-columnar",
            "--test",
            "miri_aligned",
        ])
        .env("MIRIFLAGS", "-Zmiri-strict-provenance"))
}

/// Run the columnar test suite under ThreadSanitizer.
///
/// Requires nightly (for `-Z sanitizer`) plus the `rust-src`
/// component so std can be rebuilt instrumented.
pub fn tsan() -> Result<(), String> {
    probe_component("rust-src", "rust-src (needed for -Zbuild-std)")?;
    let target = host_target()?;
    run(Command::new("cargo")
        .args([
            &format!("+{MIRI_NIGHTLY}"),
            "test",
            "-Zbuild-std",
            "--target",
            &target,
            "-p",
            "gdelt-columnar",
            "-p",
            "rayon",
        ])
        .env("RUSTFLAGS", "-Zsanitizer=thread")
        // TSan intercepts allocation; keep test threads serial so
        // reports interleave readably.
        .env("RUST_TEST_THREADS", "1"))
}

/// Fail early with instructions when a rustup component is missing.
fn probe_component(component: &str, label: &str) -> Result<(), String> {
    let out = Command::new("rustup")
        .args(["component", "list", "--toolchain", MIRI_NIGHTLY])
        .output()
        .map_err(|e| format!("running rustup: {e} (is rustup installed?)"))?;
    if !out.status.success() {
        return Err(format!(
            "no `{MIRI_NIGHTLY}` toolchain available.\n  fix: rustup toolchain install {MIRI_NIGHTLY} --component {component}",
        ));
    }
    let listing = String::from_utf8_lossy(&out.stdout);
    let installed = listing.lines().any(|l| l.starts_with(component) && l.contains("(installed)"));
    if installed {
        Ok(())
    } else {
        Err(format!(
            "the {label} component is not installed on `{MIRI_NIGHTLY}`.\n  fix: rustup component add {component} --toolchain {MIRI_NIGHTLY}\n  (requires network access; CI runs this in the dedicated sanitizer job)",
        ))
    }
}

/// Host triple, needed because `-Zbuild-std` requires `--target`.
fn host_target() -> Result<String, String> {
    let out =
        Command::new("rustc").args(["-vV"]).output().map_err(|e| format!("running rustc: {e}"))?;
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("host: ").map(str::to_owned))
        .ok_or_else(|| "could not determine host target from `rustc -vV`".into())
}

fn run(cmd: &mut Command) -> Result<(), String> {
    eprintln!("+ {cmd:?}");
    let status = cmd.status().map_err(|e| format!("spawning {cmd:?}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("command failed with {status}"))
    }
}
