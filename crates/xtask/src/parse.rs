//! Item parser and per-function fact extraction for `cargo xtask
//! analyze`.
//!
//! Walks the token stream of one file and produces:
//!
//! * the list of function items (free functions and impl methods, with
//!   the impl's self type attached) and their body token ranges;
//! * per function: call expressions, panic sinks, allocation sites,
//!   lock acquisitions + lexical lock-order edges, `SeqCst` uses —
//!   each tagged with whether it sits inside a rayon parallel closure
//!   or a loop body;
//! * per file: `unsafe` site lines (for the inventory ratchet) and the
//!   set of identifiers bound to `Mutex`/`RwLock` values.
//!
//! The parser is deliberately syntactic: no type inference, no trait
//! resolution. What that buys and what it cannot prove is documented in
//! DESIGN.md ("Static analysis architecture").

use crate::lex::{TokKind, Token};
use crate::source::SourceFile;

/// How a call names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `foo(..)` — a free function.
    Free,
    /// `expr.foo(..)` — a method on an unknown receiver type.
    Method,
    /// `self.foo(..)` — a method on the caller's own impl type.
    SelfMethod,
    /// `Type::foo(..)` — a method qualified with a (capitalized) type.
    Qualified(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Receiver shape, used for resolution.
    pub recv: Receiver,
    /// 1-based call-site line.
    pub line: usize,
    /// Token index of the callee name (for call-site argument parsing).
    pub at: usize,
    /// Inside a rayon parallel closure.
    pub in_par: bool,
    /// Inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
    /// Inside a closure passed to `spawn` (thread pool / scoped thread).
    pub in_spawn: bool,
}

/// What kind of panic a sink is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `unwrap` / `expect` / panicking macro.
    Call,
    /// Slice/array indexing or range slicing with a non-literal index.
    Index,
}

/// One potential panic site.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Classification (selects which allow-markers apply).
    pub kind: SinkKind,
    /// 1-based line.
    pub line: usize,
    /// Human rendering, e.g. `` `.unwrap()` `` or `` `offsets[e + 1]` ``.
    pub what: String,
}

/// One allocation site.
#[derive(Debug, Clone)]
pub struct Alloc {
    /// 1-based line.
    pub line: usize,
    /// Human rendering, e.g. `` `Vec::push` `` or `` `format!` ``.
    pub what: String,
    /// Inside a rayon parallel closure.
    pub in_par: bool,
    /// Inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// One lock acquisition (`.lock()` / `.read()` / `.write()` on a known
/// `Mutex`/`RwLock` binding).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// The lock's binding name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Inside a rayon parallel closure.
    pub in_par: bool,
}

/// A lexical lock-order edge: `held` was still held when `then` was
/// acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The already-held lock.
    pub held: String,
    /// The newly-acquired lock.
    pub then: String,
    /// Acquisition line of `then`.
    pub line: usize,
}

/// What an atomic operation does to its field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomicKind {
    /// `.load(..)`.
    Load,
    /// `.store(..)`.
    Store,
    /// Read-modify-write: `swap`, `fetch_*`, `compare_exchange*`.
    Rmw,
    /// A standalone `fence(..)`.
    Fence,
}

/// One atomic operation that names an `Ordering` variant. A
/// `compare_exchange` contributes two ops: the success ordering with
/// its RMW kind, the failure ordering as a `Load`.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    /// Receiver binding/field name (`generation`); `"<fence>"` for fences.
    pub field: String,
    /// Operation class.
    pub kind: AtomicKind,
    /// The `Ordering` variant named in the call (`Relaxed`, `Acquire`, …).
    pub ordering: String,
    /// 1-based line of the ordering argument.
    pub line: usize,
    /// Inside a `#[test]`/`#[cfg(test)]` region. Atomic facts are the
    /// one class recorded in test code too: a test's unsound ordering
    /// can mask the race it exists to catch.
    pub in_test: bool,
}

/// One write to shared mutable state, or to a binding captured by a
/// parallel closure.
#[derive(Debug, Clone)]
pub struct SharedWrite {
    /// 1-based line.
    pub line: usize,
    /// Human rendering, e.g. `` write to `static mut TOTAL` ``.
    pub what: String,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct Function {
    /// Bare name (`build`).
    pub name: String,
    /// Impl self type, when the function is a method (`CoReport`).
    pub self_ty: Option<String>,
    /// 1-based declaration line (the `fn` token's line).
    pub decl_line: usize,
    /// Annotated `// analyze: no_panic` (a panic-freedom root).
    pub no_panic: bool,
    /// Declared inside a `#[cfg(test)]` region or `#[test]` item.
    pub is_test: bool,
    /// Signature declares a `Result<..>` return type.
    pub returns_result: bool,
    /// Body token range (absolute indices into the file's token stream).
    pub body: std::ops::Range<usize>,
    /// Calls made by the body.
    pub calls: Vec<Call>,
    /// Panic sinks in the body.
    pub sinks: Vec<Sink>,
    /// Allocation sites in the body.
    pub allocs: Vec<Alloc>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockAcq>,
    /// Lexical lock-order edges in the body.
    pub lock_edges: Vec<LockEdge>,
    /// Parameter names in declaration order (`self` excluded).
    pub params: Vec<String>,
    /// Atomic operations naming an explicit `Ordering`.
    pub atomics: Vec<AtomicOp>,
    /// Writes to shared state: `static mut` assignment, write methods
    /// on non-thread-local `Cell`/`RefCell` bindings.
    pub shared_writes: Vec<SharedWrite>,
    /// Mutations of captured (outer) bindings inside a parallel closure
    /// or spawned-thread closure.
    pub par_writes: Vec<SharedWrite>,
}

impl Function {
    /// Display name: `CoReport::build` or `for_each_event_in`.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parse result for one file.
#[derive(Debug, Default, Clone)]
pub struct ParsedFile {
    /// All function items, in source order.
    pub functions: Vec<Function>,
    /// Lines carrying an `unsafe` site (block, fn, impl).
    pub unsafe_lines: Vec<usize>,
    /// Identifiers bound to `Mutex`/`RwLock` values in this file.
    pub lock_names: Vec<String>,
    /// Identifiers bound to `Cell`/`RefCell` values, excluding
    /// `thread_local!` declarations (each thread owns its copy).
    pub cell_names: Vec<String>,
    /// `static mut` binding names.
    pub static_muts: Vec<String>,
}

/// File-level name pools consulted during fact extraction.
struct NamePools<'a> {
    locks: &'a [String],
    cells: &'a [String],
    statics: &'a [String],
}

/// Rust keywords that look like call heads but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "fn", "let",
    "mut", "ref", "box", "dyn", "use", "pub", "mod", "struct", "enum", "trait", "type", "const",
    "static", "impl", "where", "unsafe", "break", "continue", "crate", "super", "await",
];

/// Rayon entry points that open a parallel region.
const PAR_MARKERS: &[&str] =
    &["par_iter", "into_par_iter", "par_iter_mut", "par_chunks", "par_chunks_mut", "par_bridge"];

/// Per-worker init combinators: their first (init) closure runs once
/// per worker, so allocations inside it are not per-element.
const INIT_COMBINATORS: &[&str] = &["map_init", "for_each_init", "fold"];

/// Atomic read-modify-write method names.
const ATOMIC_RMW: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// The five `Ordering` variants.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Write methods on `Cell`/`RefCell` bindings.
const CELL_WRITE_METHODS: &[&str] = &["set", "replace", "replace_with", "borrow_mut", "take"];

/// Container-mutating methods that, applied to a binding captured by a
/// parallel closure, write state shared across workers.
const CAPTURE_MUT_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "remove",
    "clear",
    "extend",
    "extend_from_slice",
    "pop",
    "truncate",
    "resize",
];

/// Macros that panic unconditionally or on a failed condition.
/// `debug_assert*` is deliberately absent: it is compiled out of release
/// builds, which are the binaries the paper's scans run as.
const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Allocating methods (`.name(`).
const ALLOC_METHODS: &[&str] =
    &["push", "collect", "to_string", "to_vec", "to_owned", "extend", "extend_from_slice"];

/// Allocating `Type::func` constructors.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("Box", "new"),
];

/// Parse one file's token stream into items + facts.
pub fn parse_file(file: &SourceFile, tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    find_items(file, tokens, &mut out);
    collect_lock_names(tokens, &mut out.lock_names);
    collect_cell_statics(tokens, &mut out.cell_names, &mut out.static_muts);
    collect_unsafe_sites(tokens, &mut out.unsafe_lines);

    // Child body ranges must not contribute facts to the parent (nested
    // `fn` items — rare, but cheap to get right).
    let ranges: Vec<std::ops::Range<usize>> =
        out.functions.iter().map(|f| f.body.clone()).collect();
    let pools =
        NamePools { locks: &out.lock_names, cells: &out.cell_names, statics: &out.static_muts };
    for (i, f) in out.functions.iter_mut().enumerate() {
        let children: Vec<std::ops::Range<usize>> = ranges
            .iter()
            .enumerate()
            .filter(|(j, r)| *j != i && r.start >= f.body.start && r.end <= f.body.end)
            .map(|(_, r)| r.clone())
            .collect();
        extract_facts(file, tokens, f, &children, &pools);
        collect_atomics(file, tokens, f, &children);
    }
    out
}

/// Locate impl scopes and function items with their body token ranges.
fn find_items(file: &SourceFile, tokens: &[Token], out: &mut ParsedFile) {
    let mut depth: i32 = 0; // brace depth
    let mut paren: i32 = 0;
    // Open impl scopes: (self_ty, brace depth inside the impl body).
    let mut impls: Vec<(String, i32)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // A `fn` header seen; waiting for its body `{` or a `;`. The third
    // field is the `fn` token index, so the signature can be re-scanned
    // (return type) when the body opens.
    let mut pending_fn: Option<(String, usize, usize)> = None;
    // Open fn bodies: (function index, brace depth inside the body).
    let mut open_fns: Vec<(usize, i32)> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokKind::LParen => paren += 1,
            TokKind::RParen => paren -= 1,
            TokKind::LBrace => {
                depth += 1;
                if let Some((name, line, fn_tok)) = pending_fn.take() {
                    let idx = out.functions.len();
                    out.functions.push(Function {
                        name,
                        self_ty: impls.last().map(|(t, _)| t.clone()),
                        decl_line: line,
                        no_panic: has_no_panic_annotation(file, line),
                        is_test: *file.in_test.get(line - 1).unwrap_or(&false),
                        returns_result: signature_returns_result(tokens, fn_tok, i),
                        body: i + 1..i + 1, // end patched on close
                        calls: Vec::new(),
                        sinks: Vec::new(),
                        allocs: Vec::new(),
                        locks: Vec::new(),
                        lock_edges: Vec::new(),
                        params: param_names(tokens, fn_tok, i),
                        atomics: Vec::new(),
                        shared_writes: Vec::new(),
                        par_writes: Vec::new(),
                    });
                    open_fns.push((idx, depth));
                } else if let Some(ty) = pending_impl.take() {
                    impls.push((ty, depth));
                }
            }
            TokKind::RBrace => {
                depth -= 1;
                if open_fns.last().is_some_and(|&(_, d)| depth < d) {
                    let (idx, _) = open_fns.pop().unwrap_or((0, 0));
                    if let Some(f) = out.functions.get_mut(idx) {
                        f.body.end = i;
                    }
                }
                if impls.last().is_some_and(|&(_, d)| depth < d) {
                    impls.pop();
                }
            }
            TokKind::Ident if t.text == "impl" && pending_fn.is_none() => {
                pending_impl = parse_impl_self_ty(tokens, i);
            }
            TokKind::Ident if t.text == "fn" => {
                // `fn(..)` pointer types have no name token.
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == TokKind::Ident {
                        pending_fn = Some((next.text.clone(), next.line, i));
                    }
                }
            }
            TokKind::Punct if t.text == ";" && paren == 0 => {
                // Bodiless signature (trait method, extern) — discard.
                pending_fn = None;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Does the signature spanning tokens `[fn_tok, body_open)` declare a
/// `Result` return type? Scans from the `->` arrow to the body brace
/// (covering `Result<..>`, `io::Result<..>`, `anyhow::Result`).
fn signature_returns_result(tokens: &[Token], fn_tok: usize, body_open: usize) -> bool {
    let Some(arrow) =
        (fn_tok..body_open).find(|&j| tokens[j].kind == TokKind::Punct && tokens[j].text == "->")
    else {
        return false;
    };
    tokens[arrow..body_open].iter().any(|t| t.is("Result"))
}

/// Extract the self type of an `impl` header starting at token `at`.
fn parse_impl_self_ty(tokens: &[Token], at: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    for t in tokens.iter().skip(at + 1).take(64) {
        match t.kind {
            TokKind::LBrace | TokKind::RBrace => break,
            TokKind::Punct if t.text == "<" => angle += 1,
            TokKind::Punct if t.text == ">" => angle -= 1,
            TokKind::Punct if t.text == ";" => break,
            TokKind::Ident if angle == 0 => {
                if t.text == "for" {
                    saw_for = true;
                } else if !matches!(t.text.as_str(), "mut" | "dyn" | "const" | "unsafe") {
                    if saw_for {
                        if after_for.is_none() {
                            after_for = Some(t.text.clone());
                        }
                    } else if first.is_none() {
                        first = Some(t.text.clone());
                    }
                }
            }
            _ => {}
        }
    }
    after_for.or(first)
}

/// Does the function declared at `decl_line` carry an
/// `// analyze: no_panic` annotation (same line, or in the contiguous
/// run of comment/attribute lines directly above)?
fn has_no_panic_annotation(file: &SourceFile, decl_line: usize) -> bool {
    // The marker must be the comment's leading content (`// analyze:
    // no_panic`) — prose *mentioning* the marker (doc comments, this
    // function included) must not create a kernel root.
    let marked = |idx: usize| {
        file.lines.get(idx).is_some_and(|l| {
            l.comment.trim_start_matches(['/', '!']).trim_start().starts_with("analyze: no_panic")
        })
    };
    let idx = decl_line - 1;
    if marked(idx) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &file.lines[j];
        let code = l.code.trim();
        let is_annotation = code.is_empty() || code.starts_with("#[");
        if marked(j) {
            return true;
        }
        if !is_annotation {
            return false;
        }
    }
    false
}

/// Collect identifiers bound to `Mutex`/`RwLock` values anywhere in the
/// file: `name: Mutex<..>` field/param declarations and
/// `let name = .. Mutex::new(..)` bindings.
fn collect_lock_names(tokens: &[Token], out: &mut Vec<String>) {
    let mut last_let_ident: Option<String> = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            if t.text == ";" {
                last_let_ident = None;
            }
            continue;
        }
        if t.is("let") {
            // `let [mut] name`
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is("mut")) {
                j += 1;
            }
            if let Some(n) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) {
                last_let_ident = Some(n.text.clone());
            }
        } else if t.text == "Mutex" || t.text == "RwLock" {
            let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
            let prev2 = i.checked_sub(2).and_then(|j| tokens.get(j));
            if prev.is_some_and(|p| p.text == ":") {
                // `name: Mutex<..>` — field or parameter.
                if let Some(n) = prev2.filter(|t| t.kind == TokKind::Ident) {
                    push_unique(out, &n.text);
                }
            } else if tokens.get(i + 1).is_some_and(|t| t.text == "::")
                && tokens.get(i + 2).is_some_and(|t| t.is("new"))
            {
                if let Some(n) = &last_let_ident {
                    push_unique(out, n);
                }
            }
        }
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Collect interior-mutability binding names (`name: Cell<..>` /
/// `RefCell<..>` fields, `let name = Cell::new(..)`) and `static mut`
/// names. Declarations inside `thread_local!` blocks are skipped: each
/// thread owns its copy, so writes through them cannot race.
fn collect_cell_statics(tokens: &[Token], cells: &mut Vec<String>, statics: &mut Vec<String>) {
    let mut last_let_ident: Option<String> = None;
    let mut depth = 0i32;
    // Brace depth of an open `thread_local! { .. }` body, if any.
    let mut tl_depth: Option<i32> = None;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::LBrace => depth += 1,
            TokKind::RBrace => {
                depth -= 1;
                if tl_depth.is_some_and(|d| depth < d) {
                    tl_depth = None;
                }
            }
            TokKind::Punct if t.text == ";" => last_let_ident = None,
            TokKind::Ident => {
                if t.is("thread_local") && tokens.get(i + 1).is_some_and(|n| n.text == "!") {
                    tl_depth = Some(depth + 1);
                } else if t.is("let") {
                    let mut j = i + 1;
                    if tokens.get(j).is_some_and(|t| t.is("mut")) {
                        j += 1;
                    }
                    if let Some(n) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) {
                        last_let_ident = Some(n.text.clone());
                    }
                } else if t.is("static")
                    && tl_depth.is_none()
                    && tokens.get(i + 1).is_some_and(|n| n.is("mut"))
                {
                    if let Some(n) = tokens.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                        push_unique(statics, &n.text);
                    }
                } else if (t.text == "Cell" || t.text == "RefCell") && tl_depth.is_none() {
                    let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
                    let prev2 = i.checked_sub(2).and_then(|j| tokens.get(j));
                    if prev.is_some_and(|p| p.text == ":") {
                        // `name: Cell<..>` — field or parameter.
                        if let Some(n) = prev2.filter(|t| t.kind == TokKind::Ident) {
                            push_unique(cells, &n.text);
                        }
                    } else if tokens.get(i + 1).is_some_and(|t| t.text == "::")
                        && tokens.get(i + 2).is_some_and(|t| t.is("new"))
                    {
                        if let Some(n) = &last_let_ident {
                            push_unique(cells, n);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Parameter names declared by the signature spanning
/// `[fn_tok, body_open)`, in order. `self` receivers and destructuring
/// patterns are skipped — only simple `name: Ty` bindings lift.
fn param_names(tokens: &[Token], fn_tok: usize, body_open: usize) -> Vec<String> {
    let mut out = Vec::new();
    // Skip generics (`fn f<F: Fn(u32)>(..)`) to the parameter `(`.
    let mut angle = 0i32;
    let mut i = fn_tok + 1;
    while i < body_open {
        match tokens[i].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            _ => {}
        }
        if angle == 0 && tokens[i].kind == TokKind::LParen {
            break;
        }
        i += 1;
    }
    let mut depth = 0i32;
    // At a position where a binding pattern may start.
    let mut expect = true;
    while i < body_open {
        let t = &tokens[i];
        match t.kind {
            TokKind::LParen => depth += 1,
            TokKind::RParen => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if depth == 1 && t.kind != TokKind::LParen {
            if t.text == "," {
                expect = true;
            } else if expect {
                if t.is("mut") || t.is("ref") || t.text == "&" {
                    // Still expecting the binding name.
                } else if t.kind == TokKind::Ident
                    && !KEYWORDS.contains(&t.text.as_str())
                    && tokens.get(i + 1).is_some_and(|n| n.text == ":")
                {
                    out.push(t.text.clone());
                    expect = false;
                } else {
                    expect = false;
                }
            }
        }
        i += 1;
    }
    out
}

/// Record `unsafe` site lines (block / fn / impl forms, matching the
/// `safety_comment` lint's definition of a site).
fn collect_unsafe_sites(tokens: &[Token], out: &mut Vec<usize>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is("unsafe") {
            continue;
        }
        let site = match tokens.get(i + 1) {
            Some(n) => {
                n.kind == TokKind::LBrace
                    || n.is("fn")
                    || n.is("impl")
                    || n.is("trait")
                    || n.is("extern")
                    || n.line > t.line // `unsafe` alone, `{` on the next line
            }
            None => true,
        };
        if site {
            out.push(t.line);
        }
    }
}

/// Walk one function body and record calls, sinks, allocations, locks,
/// shared-state writes and captured-binding mutations.
fn extract_facts(
    file: &SourceFile,
    tokens: &[Token],
    f: &mut Function,
    children: &[std::ops::Range<usize>],
    pools: &NamePools<'_>,
) {
    // Combined paren+brace+bracket nesting, relative to the body start.
    let mut nest: i32 = 0;
    // Parallel regions: nesting depth at each open marker.
    let mut par_stack: Vec<i32> = Vec::new();
    // Spawned-thread closures: nesting depth at each `spawn(`.
    let mut spawn_stack: Vec<i32> = Vec::new();
    // Nest level of an open `map_init`/`for_each_init` argument list;
    // cleared at its first top-level comma (end of the init closure).
    let mut init_zone: Option<i32> = None;
    // After that comma, the next closure's first parameter is the
    // per-worker scratch binding — growth on it is amortized.
    let mut pending_scratch = false;
    let mut scratch_names: Vec<String> = Vec::new();
    // Bindings introduced inside the current parallel/spawn region
    // (closure params, `let`s, `for` patterns) — mutating these is
    // worker-local, not a capture.
    let mut par_local: Vec<String> = Vec::new();
    // Between the `|`s of a closure parameter list.
    let mut collecting_params = false;
    // Loop bodies: brace depth at open. `pending_loop` waits for the `{`.
    let mut brace: i32 = 0;
    let mut loop_stack: Vec<i32> = Vec::new();
    let mut pending_loop = false;
    // Held locks: (name, brace depth at acquisition, let-bound).
    let mut held: Vec<(String, i32, bool)> = Vec::new();
    let mut stmt_has_let = false;

    let mut i = f.body.start;
    while i < f.body.end {
        if let Some(r) = children.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &tokens[i];
        let in_test_line = *file.in_test.get(t.line - 1).unwrap_or(&false);
        let in_par = par_stack.last().is_some_and(|&d| nest > d);
        let in_spawn = spawn_stack.last().is_some_and(|&d| nest > d);
        // Allocations inside an init closure run once per worker.
        let alloc_par = in_par && init_zone.is_none();

        match t.kind {
            TokKind::LParen | TokKind::LBracket => nest += 1,
            TokKind::RParen | TokKind::RBracket => {
                nest -= 1;
                while par_stack.last().is_some_and(|&d| nest < d) {
                    par_stack.pop();
                }
                while spawn_stack.last().is_some_and(|&d| nest < d) {
                    spawn_stack.pop();
                }
                if init_zone.is_some_and(|d| nest < d) {
                    init_zone = None;
                }
                if par_stack.is_empty() && spawn_stack.is_empty() {
                    par_local.clear();
                    scratch_names.clear();
                    pending_scratch = false;
                    collecting_params = false;
                }
            }
            TokKind::LBrace => {
                nest += 1;
                brace += 1;
                if pending_loop {
                    loop_stack.push(brace);
                    pending_loop = false;
                }
            }
            TokKind::RBrace => {
                nest -= 1;
                while par_stack.last().is_some_and(|&d| nest < d) {
                    par_stack.pop();
                }
                while spawn_stack.last().is_some_and(|&d| nest < d) {
                    spawn_stack.pop();
                }
                while loop_stack.last().is_some_and(|&d| brace <= d) {
                    loop_stack.pop();
                }
                brace -= 1;
                held.retain(|&(_, d, _)| d <= brace);
                if par_stack.is_empty() && spawn_stack.is_empty() {
                    par_local.clear();
                    scratch_names.clear();
                    pending_scratch = false;
                    collecting_params = false;
                }
            }
            TokKind::Punct if t.text == "|" => {
                if collecting_params {
                    collecting_params = false;
                } else if (in_par || in_spawn)
                    && i.checked_sub(1).and_then(|j| tokens.get(j)).is_some_and(|p| {
                        p.kind == TokKind::LParen || p.text == "," || p.text == "=" || p.is("move")
                    })
                {
                    collecting_params = true;
                }
            }
            TokKind::Punct if t.text == "," && init_zone.is_some_and(|d| nest == d) => {
                // End of an init combinator's first (init) argument: the
                // operator closure comes next, leading with its scratch.
                init_zone = None;
                pending_scratch = true;
            }
            TokKind::Punct if t.text == "=" && !in_test_line => {
                // Assignment / compound assignment: find the written
                // binding. Skips `==`, `!=`, `<=`, `>=`, `..=` (and the
                // second `=` of `==`); `=>` is fused by the lexer.
                let next_eq = tokens.get(i + 1).is_some_and(|n| n.text == "=");
                let prev_txt = i
                    .checked_sub(1)
                    .and_then(|j| tokens.get(j))
                    .map(|p| p.text.clone())
                    .unwrap_or_default();
                if !next_eq && !matches!(prev_txt.as_str(), "=" | "!" | "<" | ">" | "..") {
                    let compound =
                        matches!(prev_txt.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^");
                    let start = if compound { i.saturating_sub(2) } else { i.saturating_sub(1) };
                    if let Some(base) = assign_base(tokens, start, f.body.start) {
                        if pools.statics.contains(&base) {
                            f.shared_writes.push(SharedWrite {
                                line: t.line,
                                what: format!("write to `static mut {base}`"),
                            });
                        } else if (in_par || in_spawn) && base != "_" && !par_local.contains(&base)
                        {
                            f.par_writes.push(SharedWrite {
                                line: t.line,
                                what: format!("mutation of captured `{base}`"),
                            });
                        }
                    }
                }
            }
            TokKind::Punct if t.text == ";" => {
                if par_stack.last().is_some_and(|&d| nest <= d) {
                    par_stack.pop();
                }
                if spawn_stack.last().is_some_and(|&d| nest <= d) {
                    spawn_stack.pop();
                }
                if par_stack.is_empty() && spawn_stack.is_empty() {
                    par_local.clear();
                    scratch_names.clear();
                    collecting_params = false;
                }
                pending_scratch = false;
                stmt_has_let = false;
                held.retain(|&(_, _, let_bound)| let_bound);
            }
            TokKind::Ident if !in_test_line => {
                let text = t.text.as_str();
                let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
                let prev_dot = prev.is_some_and(|p| p.text == ".");
                let prev_colons = prev.is_some_and(|p| p.text == "::");
                let next = tokens.get(i + 1);
                let next_bang = next.is_some_and(|n| n.text == "!");
                let next_paren = next.is_some_and(|n| n.kind == TokKind::LParen);

                if collecting_params && !KEYWORDS.contains(&text) {
                    par_local.push(text.to_string());
                    if pending_scratch {
                        scratch_names.push(text.to_string());
                        pending_scratch = false;
                    }
                }
                if text == "spawn" && next_paren {
                    spawn_stack.push(nest);
                }
                // Only a combinator chained directly onto a parallel
                // iterator (same nest level as its marker) opens an
                // init zone; a sequential `.fold(..)` nested inside a
                // par closure still allocates per element.
                if INIT_COMBINATORS.contains(&text)
                    && next_paren
                    && prev_dot
                    && par_stack.last() == Some(&nest)
                {
                    init_zone = Some(nest + 1);
                }

                if text == "let" {
                    stmt_has_let = true;
                    if in_par || in_spawn {
                        // Pattern idents up to `:`/`=`/`;` are region-local.
                        for n in tokens.iter().skip(i + 1).take(8) {
                            if matches!(n.text.as_str(), ":" | "=" | ";") {
                                break;
                            }
                            if n.kind == TokKind::Ident && !KEYWORDS.contains(&n.text.as_str()) {
                                par_local.push(n.text.clone());
                            }
                        }
                    }
                } else if matches!(text, "for" | "while" | "loop") {
                    pending_loop = true;
                    if text == "for" && (in_par || in_spawn) {
                        for n in tokens.iter().skip(i + 1).take(8) {
                            if n.is("in") {
                                break;
                            }
                            if n.kind == TokKind::Ident && !KEYWORDS.contains(&n.text.as_str()) {
                                par_local.push(n.text.clone());
                            }
                        }
                    }
                } else if next_bang {
                    // Macro invocation.
                    if PANIC_MACROS.contains(&text) {
                        f.sinks.push(Sink {
                            kind: SinkKind::Call,
                            line: t.line,
                            what: format!("`{text}!`"),
                        });
                    } else if ALLOC_MACROS.contains(&text) {
                        f.allocs.push(Alloc {
                            line: t.line,
                            what: format!("`{text}!`"),
                            in_par: alloc_par,
                            in_loop: !loop_stack.is_empty(),
                        });
                    }
                } else if next_paren && prev_dot {
                    method_facts(
                        tokens,
                        i,
                        f,
                        pools,
                        ParCtx {
                            in_par,
                            in_spawn,
                            alloc_par,
                            par_local: &par_local,
                            scratch: &scratch_names,
                        },
                        &loop_stack,
                        &mut held,
                        brace,
                        stmt_has_let,
                        &mut par_stack,
                        nest,
                    );
                } else if next_paren && !KEYWORDS.contains(&text) {
                    // Free or qualified call.
                    let recv = if prev_colons {
                        let qual = i
                            .checked_sub(2)
                            .and_then(|j| tokens.get(j))
                            .filter(|q| q.kind == TokKind::Ident)
                            .map(|q| q.text.clone());
                        match qual {
                            Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                                if let Some(&(_, ctor)) =
                                    ALLOC_CTORS.iter().find(|(ty, c)| *ty == q && *c == text)
                                {
                                    f.allocs.push(Alloc {
                                        line: t.line,
                                        what: format!("`{q}::{ctor}`"),
                                        in_par: alloc_par,
                                        in_loop: !loop_stack.is_empty(),
                                    });
                                }
                                Receiver::Qualified(q)
                            }
                            _ => Receiver::Free,
                        }
                    } else {
                        Receiver::Free
                    };
                    f.calls.push(Call {
                        name: text.to_string(),
                        recv,
                        line: t.line,
                        at: i,
                        in_par,
                        in_loop: !loop_stack.is_empty(),
                        in_spawn,
                    });
                }
            }
            _ => {}
        }

        // Indexing sinks: `expr[non-literal]` — checked on the bracket.
        if t.kind == TokKind::LBracket && !in_test_line {
            if let Some(s) = index_sink(tokens, i, f.body.end) {
                f.sinks.push(s);
            }
        }
        i += 1;
    }
}

/// Parallel-region context threaded into [`method_facts`].
struct ParCtx<'a> {
    in_par: bool,
    in_spawn: bool,
    alloc_par: bool,
    par_local: &'a [String],
    scratch: &'a [String],
}

/// Handle `.name(` method positions: calls, sinks, allocations, rayon
/// markers, lock acquisitions, interior-mutability writes and captured
/// container mutations.
#[allow(clippy::too_many_arguments)]
fn method_facts(
    tokens: &[Token],
    i: usize,
    f: &mut Function,
    pools: &NamePools<'_>,
    par: ParCtx<'_>,
    loop_stack: &[i32],
    held: &mut Vec<(String, i32, bool)>,
    brace: i32,
    stmt_has_let: bool,
    par_stack: &mut Vec<i32>,
    nest: i32,
) {
    let t = &tokens[i];
    let text = t.text.as_str();
    let empty_args = tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::RParen);

    if PAR_MARKERS.contains(&text) {
        par_stack.push(nest);
        return;
    }
    if text == "unwrap" && empty_args {
        f.sinks.push(Sink { kind: SinkKind::Call, line: t.line, what: "`.unwrap()`".into() });
        return;
    }
    if text == "expect" {
        f.sinks.push(Sink { kind: SinkKind::Call, line: t.line, what: "`.expect(..)`".into() });
        return;
    }
    if ALLOC_METHODS.contains(&text) {
        // Growth of an init-combinator scratch binding amortizes over
        // the worker's whole chunk (the capacity survives between
        // elements) — not a per-element allocation.
        let on_scratch =
            method_recv_base(tokens, i).is_some_and(|(base, _)| par.scratch.contains(&base));
        if !on_scratch {
            f.allocs.push(Alloc {
                line: t.line,
                what: format!("`.{text}(..)`"),
                in_par: par.alloc_par,
                in_loop: !loop_stack.is_empty(),
            });
        }
        // `collect` and friends are still calls (resolution finds
        // workspace impls if any) — fall through.
    }
    if matches!(text, "lock" | "read" | "write") {
        // Receiver ident: token before the `.`.
        let recv = i
            .checked_sub(2)
            .and_then(|j| tokens.get(j))
            .filter(|r| r.kind == TokKind::Ident)
            .map(|r| r.text.clone());
        if let Some(name) = recv.filter(|n| pools.locks.iter().any(|l| l == n)) {
            for (h, _, _) in held.iter() {
                if *h != name {
                    f.lock_edges.push(LockEdge {
                        held: h.clone(),
                        then: name.clone(),
                        line: t.line,
                    });
                }
            }
            f.locks.push(LockAcq { name: name.clone(), line: t.line, in_par: par.in_par });
            held.push((name, brace, stmt_has_let));
            return;
        }
    }
    // Interior-mutability writes: `cell.set(..)` / `cell.borrow_mut()`
    // on a known (non-thread-local) `Cell`/`RefCell` binding is a
    // shared-state write wherever it happens — a caller running it
    // from a parallel closure races even if this function is serial.
    let cell_write = CELL_WRITE_METHODS.contains(&text);
    let recv_base = method_recv_base(tokens, i);
    if cell_write {
        if let Some((base, _)) = &recv_base {
            if pools.cells.iter().any(|c| c == base) {
                f.shared_writes.push(SharedWrite {
                    line: t.line,
                    what: format!("`{base}.{text}(..)` on interior-mutable `{base}`"),
                });
            }
        }
    }
    // Captured-container mutation inside a parallel/spawn closure:
    // `.push(..)` etc. on a binding from outside the region, unless the
    // receiver chain goes through a lock guard.
    if (par.in_par || par.in_spawn) && (cell_write || CAPTURE_MUT_METHODS.contains(&text)) {
        if let Some((base, synced)) = &recv_base {
            if !synced
                && !par.par_local.iter().any(|l| l == base)
                && !pools.locks.iter().any(|l| l == base)
            {
                f.par_writes.push(SharedWrite {
                    line: t.line,
                    what: format!("`.{text}(..)` on captured `{base}`"),
                });
            }
        }
    }

    // Receiver shape: `self.name(` is resolvable to the caller's impl.
    let recv = if i.checked_sub(2).and_then(|j| tokens.get(j)).is_some_and(|r| r.is("self")) {
        Receiver::SelfMethod
    } else {
        Receiver::Method
    };
    f.calls.push(Call {
        name: text.to_string(),
        recv,
        line: t.line,
        at: i,
        in_par: par.in_par,
        in_loop: !loop_stack.is_empty(),
        in_spawn: par.in_spawn,
    });
}

/// Leading binding name of the receiver chain ending just before the
/// `.` at `method_at - 1`, plus whether the chain passes through a
/// lock-guard acquisition (`.lock()` / `.read()` / `.write()`).
fn method_recv_base(tokens: &[Token], method_at: usize) -> Option<(String, bool)> {
    let mut j = method_at.checked_sub(2)?;
    let mut synced = false;
    let mut base: Option<String> = None;
    let mut steps = 0;
    loop {
        steps += 1;
        if steps > 64 {
            break;
        }
        let t = &tokens[j];
        match t.kind {
            TokKind::RParen | TokKind::RBracket => {
                let (open, close) = if t.kind == TokKind::RParen {
                    (TokKind::LParen, TokKind::RParen)
                } else {
                    (TokKind::LBracket, TokKind::RBracket)
                };
                let mut depth = 1i32;
                let mut k = j;
                while depth > 0 {
                    if k == 0 {
                        return base.map(|b| (b, synced));
                    }
                    k -= 1;
                    if tokens[k].kind == close {
                        depth += 1;
                    } else if tokens[k].kind == open {
                        depth -= 1;
                    }
                }
                // A call group: note synchronizing method names.
                if close == TokKind::RParen
                    && k > 0
                    && tokens[k - 1].kind == TokKind::Ident
                    && !KEYWORDS.contains(&tokens[k - 1].text.as_str())
                {
                    if matches!(tokens[k - 1].text.as_str(), "lock" | "read" | "write") {
                        synced = true;
                    }
                    base = Some(tokens[k - 1].text.clone());
                    if k < 2 {
                        break;
                    }
                    j = k - 2;
                    continue;
                }
                if k == 0 {
                    break;
                }
                j = k - 1;
            }
            TokKind::Ident if t.is("self") => {
                base = Some("self".into());
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            TokKind::Ident if !KEYWORDS.contains(&t.text.as_str()) => {
                base = Some(t.text.clone());
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            TokKind::Punct if t.text == "." => {
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            _ => break,
        }
    }
    base.map(|b| (b, synced))
}

/// Walk back from `at` over an lvalue expression (`a.b[k].c`, `*p`) and
/// return its leading binding name.
fn assign_base(tokens: &[Token], at: usize, floor: usize) -> Option<String> {
    let mut j = at;
    let mut base: Option<String> = None;
    let mut steps = 0;
    loop {
        steps += 1;
        if steps > 64 || j < floor {
            break;
        }
        let t = &tokens[j];
        match t.kind {
            TokKind::RBracket => {
                let mut depth = 1i32;
                while depth > 0 {
                    if j <= floor {
                        return base;
                    }
                    j -= 1;
                    match tokens[j].kind {
                        TokKind::RBracket => depth += 1,
                        TokKind::LBracket => depth -= 1,
                        _ => {}
                    }
                }
                if j <= floor {
                    break;
                }
                j -= 1;
            }
            TokKind::Ident if t.is("self") => {
                base = Some("self".into());
                if j <= floor {
                    break;
                }
                j -= 1;
            }
            TokKind::Ident if !KEYWORDS.contains(&t.text.as_str()) => {
                base = Some(t.text.clone());
                if j <= floor {
                    break;
                }
                j -= 1;
            }
            TokKind::Punct if t.text == "." || t.text == "*" => {
                if j <= floor {
                    break;
                }
                j -= 1;
            }
            _ => break,
        }
    }
    base
}

/// Record atomic operations that name an explicit `Ordering`, test code
/// included. Nested atomic calls inside another's argument list are
/// skipped here (they are visited at their own position).
fn collect_atomics(
    file: &SourceFile,
    tokens: &[Token],
    f: &mut Function,
    children: &[std::ops::Range<usize>],
) {
    let atomic_head = |j: usize| -> Option<AtomicKind> {
        let t = tokens.get(j)?;
        if t.kind != TokKind::Ident || tokens.get(j + 1).map(|n| n.kind) != Some(TokKind::LParen) {
            return None;
        }
        let prev_dot = j.checked_sub(1).and_then(|k| tokens.get(k)).is_some_and(|p| p.text == ".");
        match t.text.as_str() {
            "load" if prev_dot => Some(AtomicKind::Load),
            "store" if prev_dot => Some(AtomicKind::Store),
            "fence" if !prev_dot => Some(AtomicKind::Fence),
            m if prev_dot && ATOMIC_RMW.contains(&m) => Some(AtomicKind::Rmw),
            _ => None,
        }
    };
    let mut i = f.body.start;
    while i < f.body.end {
        if let Some(r) = children.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let Some(kind) = atomic_head(i) else {
            i += 1;
            continue;
        };
        // Collect `Ordering` variant idents inside the call's parens,
        // skipping nested atomic calls (they record themselves).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut ords: Vec<(String, usize)> = Vec::new();
        while j < f.body.end {
            if j > i + 1 && atomic_head(j).is_some() {
                let mut d = 0i32;
                j += 1; // at the `(`
                while j < f.body.end {
                    match tokens[j].kind {
                        TokKind::LParen => d += 1,
                        TokKind::RParen => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
                continue;
            }
            match tokens[j].kind {
                TokKind::LParen => depth += 1,
                TokKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident if ORDERINGS.contains(&tokens[j].text.as_str()) => {
                    ords.push((tokens[j].text.clone(), tokens[j].line));
                }
                _ => {}
            }
            j += 1;
        }
        if !ords.is_empty() {
            let field = if kind == AtomicKind::Fence {
                Some("<fence>".to_string())
            } else {
                i.checked_sub(2)
                    .and_then(|k| tokens.get(k))
                    .filter(|r| r.kind == TokKind::Ident && !KEYWORDS.contains(&r.text.as_str()))
                    .map(|r| r.text.clone())
            };
            if let Some(field) = field {
                let in_test = *file.in_test.get(tokens[i].line - 1).unwrap_or(&false);
                for (n, (ordering, line)) in ords.into_iter().enumerate() {
                    // A CAS failure ordering (second variant named) is
                    // a load.
                    let k = if n == 0 { kind } else { AtomicKind::Load };
                    f.atomics.push(AtomicOp {
                        field: field.clone(),
                        kind: k,
                        ordering,
                        line,
                        in_test,
                    });
                }
            }
        }
        i += 1;
    }
}

/// If the `[` at token `at` indexes a value with a non-literal
/// expression, return the sink. Shared with the `index_bounds` prover
/// so both passes agree on what counts as an index site.
pub fn index_sink(tokens: &[Token], at: usize, limit: usize) -> Option<Sink> {
    let prev = at.checked_sub(1).and_then(|j| tokens.get(j))?;
    // Must follow an indexable expression ending: ident, `)`, or `]` —
    // and not be an attribute (`#[..]`).
    let indexable = matches!(prev.kind, TokKind::Ident | TokKind::RParen | TokKind::RBracket)
        && !KEYWORDS.contains(&prev.text.as_str());
    if !indexable || prev.text == "#" {
        return None;
    }
    if at.checked_sub(2).and_then(|j| tokens.get(j)).is_some_and(|p| p.text == "#") {
        return None;
    }
    // Scan the bracket body.
    let mut depth = 1;
    let mut has_ident = false;
    let mut body = String::new();
    for t in tokens.iter().take(limit).skip(at + 1) {
        match t.kind {
            TokKind::LBracket => depth += 1,
            TokKind::RBracket => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident => {
                // Type-suffix-free identifiers make the index dynamic.
                has_ident = true;
            }
            _ => {}
        }
        if !body.is_empty() && t.kind == TokKind::Ident {
            body.push(' ');
        }
        body.push_str(&t.text);
        if body.len() > 40 {
            break;
        }
    }
    if !has_ident {
        return None; // literal or literal-range index
    }
    let recv = prev.text.clone();
    Some(Sink { kind: SinkKind::Index, line: tokens[at].line, what: format!("`{recv}[{body}]`") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;

    fn parse(src: &str) -> ParsedFile {
        let file = SourceFile::parse(src);
        let tokens = tokenize(&file);
        parse_file(&file, &tokens)
    }

    #[test]
    fn functions_and_impls_are_found() {
        let src = "\
fn free() { helper(); }
impl CoReport {
    pub fn build(&self) -> u32 {
        self.pair_count(1)
    }
}
impl Merge for Matrix<u64> {
    fn merge(&mut self) {}
}
";
        let p = parse(src);
        let names: Vec<String> = p.functions.iter().map(Function::display).collect();
        assert_eq!(names, vec!["free", "CoReport::build", "Matrix::merge"]);
        assert_eq!(p.functions[1].calls.len(), 1);
        assert_eq!(p.functions[1].calls[0].recv, Receiver::SelfMethod);
    }

    #[test]
    fn no_panic_annotation_detected() {
        let src = "\
// analyze: no_panic
#[inline]
pub fn kernel() {}
fn plain() {}
";
        let p = parse(src);
        assert!(p.functions[0].no_panic);
        assert!(!p.functions[1].no_panic);
    }

    #[test]
    fn sinks_are_classified() {
        let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    let a = v[i];
    let b = v[0];
    let c = v.first().unwrap();
    assert!(a > 0);
    a + b + c
}
";
        let p = parse(src);
        let f = &p.functions[0];
        let kinds: Vec<(SinkKind, usize)> = f.sinks.iter().map(|s| (s.kind, s.line)).collect();
        assert!(kinds.contains(&(SinkKind::Index, 2)), "v[i] is a sink: {kinds:?}");
        assert!(!kinds.iter().any(|&(_, l)| l == 3), "v[0] is not a sink");
        assert!(kinds.contains(&(SinkKind::Call, 4)), "unwrap is a sink");
        assert!(kinds.contains(&(SinkKind::Call, 5)), "assert! is a sink");
    }

    #[test]
    fn par_region_allocs_are_tagged() {
        let src = "\
fn f(v: &[u32]) -> Vec<String> {
    v.par_iter()
        .map(|x| {
            let s = format!(\"{x}\");
            s
        })
        .collect()
}
";
        let p = parse(src);
        let f = &p.functions[0];
        let fmt = f.allocs.iter().find(|a| a.what == "`format!`").unwrap();
        assert!(fmt.in_par, "format! inside the closure is par-tagged");
        let coll = f.allocs.iter().find(|a| a.what == "`.collect(..)`").unwrap();
        assert!(!coll.in_par, "the chain terminator collect is not inside the closure");
    }

    #[test]
    fn loop_allocs_are_tagged() {
        let src = "\
fn f(n: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(Vec::with_capacity(4));
    }
    out
}
";
        let p = parse(src);
        let f = &p.functions[0];
        let top = f.allocs.iter().find(|a| a.line == 2).unwrap();
        assert!(!top.in_loop);
        assert!(f.allocs.iter().filter(|a| a.line == 4).all(|a| a.in_loop));
    }

    #[test]
    fn locks_and_order_edges() {
        let src = "\
use std::sync::Mutex;
struct S { a: Mutex<u32>, b: Mutex<u32> }
fn f(s: &S) {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    drop(gb);
    drop(ga);
}
";
        let p = parse(src);
        assert_eq!(p.lock_names, vec!["a", "b"]);
        let f = &p.functions[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.lock_edges.len(), 1);
        assert_eq!((f.lock_edges[0].held.as_str(), f.lock_edges[0].then.as_str()), ("a", "b"));
    }

    #[test]
    fn atomic_ops_and_unsafe_sites() {
        let src = "\
fn f(c: &std::sync::atomic::AtomicU32) {
    c.fetch_add(1, Ordering::SeqCst);
    // SAFETY: test
    unsafe { std::hint::unreachable_unchecked() }
}
";
        let p = parse(src);
        let a = &p.functions[0].atomics;
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].field, "c");
        assert_eq!(a[0].kind, AtomicKind::Rmw);
        assert_eq!(a[0].ordering, "SeqCst");
        assert_eq!(a[0].line, 2);
        assert!(!a[0].in_test);
        assert_eq!(p.unsafe_lines, vec![4]);
    }

    #[test]
    fn atomic_protocol_facts() {
        let src = "\
fn publish(g: &AtomicU64, v: u64) {
    g.store(g.load(Ordering::Relaxed) + v, Ordering::Release);
}
fn consume(g: &AtomicU64) -> u64 {
    g.load(Ordering::Acquire)
}
fn cas(g: &AtomicU64) {
    g.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok();
}
";
        let p = parse(src);
        let pub_ops = &p.functions[0].atomics;
        // Nested load records itself; store records only Release.
        assert_eq!(pub_ops.len(), 2, "{pub_ops:?}");
        let store = pub_ops.iter().find(|o| o.kind == AtomicKind::Store).unwrap();
        assert_eq!(store.ordering, "Release");
        let load = pub_ops.iter().find(|o| o.kind == AtomicKind::Load).unwrap();
        assert_eq!(load.ordering, "Relaxed");
        assert_eq!(p.functions[1].atomics[0].ordering, "Acquire");
        let cas_ops = &p.functions[2].atomics;
        assert_eq!(cas_ops.len(), 2, "{cas_ops:?}");
        assert_eq!(cas_ops[0].kind, AtomicKind::Rmw);
        assert_eq!(cas_ops[0].ordering, "AcqRel");
        assert_eq!(cas_ops[1].kind, AtomicKind::Load, "CAS failure ordering is a load");
        assert_eq!(cas_ops[1].ordering, "Acquire");
    }

    #[test]
    fn par_capture_and_cell_write_facts() {
        let src = "\
fn f(xs: &[u32], out: &mut Vec<u32>, cache: &RefCell<u32>) {
    let cache = RefCell::new(0u32);
    xs.par_iter().for_each(|x| {
        out.push(*x);
        cache.replace(*x);
        let mut local = Vec::new();
        local.push(*x);
    });
}
";
        let p = parse(src);
        assert_eq!(p.cell_names, vec!["cache"]);
        let f = &p.functions[0];
        assert!(
            f.par_writes.iter().any(|w| w.what.contains("`out`") && w.line == 4),
            "{:?}",
            f.par_writes
        );
        assert!(
            f.par_writes.iter().any(|w| w.what.contains("`cache`")),
            "cell write in par region: {:?}",
            f.par_writes
        );
        assert!(
            !f.par_writes.iter().any(|w| w.what.contains("`local`")),
            "closure-local binding is not a capture: {:?}",
            f.par_writes
        );
        assert!(f.shared_writes.iter().any(|w| w.what.contains("cache")), "{:?}", f.shared_writes);
    }

    #[test]
    fn thread_local_cells_and_lock_guarded_writes_are_clean() {
        let src = "\
thread_local! {
    static SCRATCH: RefCell<Vec<u32>> = RefCell::new(Vec::new());
}
fn f(xs: &[u32], shared: &Mutex<Vec<u32>>) {
    xs.par_iter().for_each(|x| {
        shared.lock().unwrap().push(*x);
    });
}
";
        let p = parse(src);
        assert!(p.cell_names.is_empty(), "thread_local cells excluded: {:?}", p.cell_names);
        let f = &p.functions[0];
        assert!(f.par_writes.is_empty(), "lock-guarded push is synchronized: {:?}", f.par_writes);
    }

    #[test]
    fn static_mut_assignment_is_a_shared_write() {
        let src = "\
static mut TOTAL: u64 = 0;
fn bump(n: u64) {
    unsafe { TOTAL += n };
}
";
        let p = parse(src);
        assert_eq!(p.static_muts, vec!["TOTAL"]);
        let f = &p.functions[0];
        assert!(
            f.shared_writes.iter().any(|w| w.what.contains("TOTAL") && w.line == 3),
            "{:?}",
            f.shared_writes
        );
    }

    #[test]
    fn init_combinator_zone_suppresses_par_alloc() {
        let src = "\
fn f(xs: &[u32]) -> Vec<u32> {
    xs.par_iter()
        .map_init(|| Vec::with_capacity(64), |scratch, x| {
            scratch.push(*x);
            *x + 1
        })
        .collect()
}
fn g(xs: &[u32]) -> Vec<Vec<u32>> {
    xs.par_iter().map(|x| vec![*x]).collect()
}
";
        let p = parse(src);
        let f = &p.functions[0];
        assert!(
            !f.allocs.iter().any(|a| a.in_par && a.what.contains("with_capacity")),
            "init-closure alloc is once-per-worker: {:?}",
            f.allocs
        );
        assert!(
            !f.allocs.iter().any(|a| a.in_par && a.what.contains("push")),
            "growth on the scratch binding amortizes per worker: {:?}",
            f.allocs
        );
        assert!(
            !f.par_writes.iter().any(|w| w.what.contains("scratch")),
            "init-closure param is region-local: {:?}",
            f.par_writes
        );
        let g = &p.functions[1];
        assert!(
            g.allocs.iter().any(|a| a.in_par),
            "per-element alloc still flagged: {:?}",
            g.allocs
        );
    }

    #[test]
    fn params_are_collected() {
        let src = "\
fn f<T: Clone>(xs: &[T], n: usize, mut acc: u64) -> u64 { acc }
impl S { fn m(&self, k: usize) {} }
";
        let p = parse(src);
        assert_eq!(p.functions[0].params, vec!["xs", "n", "acc"]);
        assert_eq!(p.functions[1].params, vec!["k"]);
    }

    #[test]
    fn spawned_closure_captures_are_tracked() {
        let src = "\
fn f(events: &Mutex<Vec<u32>>, log: &mut Vec<u32>) {
    std::thread::spawn(move || {
        log.push(1);
    });
}
";
        let p = parse(src);
        let f = &p.functions[0];
        assert!(f.par_writes.iter().any(|w| w.what.contains("`log`")), "{:?}", f.par_writes);
        assert!(f.calls.iter().any(|c| c.name == "push" && c.in_spawn));
        assert!(!f.calls.iter().any(|c| c.name == "push" && c.in_par), "spawn is not rayon-par");
    }

    #[test]
    fn test_functions_are_marked() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u32>.unwrap(); }
}
fn real() {}
";
        let p = parse(src);
        let t = p.functions.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        assert!(t.sinks.is_empty(), "facts skipped in test regions");
        assert!(!p.functions.iter().find(|f| f.name == "real").unwrap().is_test);
    }

    #[test]
    fn result_return_types_are_flagged() {
        let src = "\
fn plain() -> u32 { 0 }
fn fallible() -> Result<u32, String> { Ok(0) }
fn io_style() -> std::io::Result<()> { Ok(()) }
fn none() { fallible(); }
";
        let p = parse(src);
        let by_name = |n: &str| p.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("plain").returns_result);
        assert!(by_name("fallible").returns_result);
        assert!(by_name("io_style").returns_result);
        assert!(!by_name("none").returns_result);
    }

    #[test]
    fn qualified_and_free_calls() {
        let src = "\
fn f() {
    helper(1);
    Bitmap::fill(2);
    ids::row_u32(3);
}
";
        let p = parse(src);
        let f = &p.functions[0];
        assert_eq!(f.calls.len(), 3);
        assert_eq!(f.calls[0].recv, Receiver::Free);
        assert_eq!(f.calls[1].recv, Receiver::Qualified("Bitmap".into()));
        assert_eq!(f.calls[2].recv, Receiver::Free, "lowercase qualifier resolves as free");
    }
}
