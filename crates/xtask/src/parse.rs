//! Item parser and per-function fact extraction for `cargo xtask
//! analyze`.
//!
//! Walks the token stream of one file and produces:
//!
//! * the list of function items (free functions and impl methods, with
//!   the impl's self type attached) and their body token ranges;
//! * per function: call expressions, panic sinks, allocation sites,
//!   lock acquisitions + lexical lock-order edges, `SeqCst` uses —
//!   each tagged with whether it sits inside a rayon parallel closure
//!   or a loop body;
//! * per file: `unsafe` site lines (for the inventory ratchet) and the
//!   set of identifiers bound to `Mutex`/`RwLock` values.
//!
//! The parser is deliberately syntactic: no type inference, no trait
//! resolution. What that buys and what it cannot prove is documented in
//! DESIGN.md ("Static analysis architecture").

use crate::lex::{TokKind, Token};
use crate::source::SourceFile;

/// How a call names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `foo(..)` — a free function.
    Free,
    /// `expr.foo(..)` — a method on an unknown receiver type.
    Method,
    /// `self.foo(..)` — a method on the caller's own impl type.
    SelfMethod,
    /// `Type::foo(..)` — a method qualified with a (capitalized) type.
    Qualified(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Receiver shape, used for resolution.
    pub recv: Receiver,
    /// 1-based call-site line.
    pub line: usize,
    /// Inside a rayon parallel closure.
    pub in_par: bool,
    /// Inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// What kind of panic a sink is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `unwrap` / `expect` / panicking macro.
    Call,
    /// Slice/array indexing or range slicing with a non-literal index.
    Index,
}

/// One potential panic site.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Classification (selects which allow-markers apply).
    pub kind: SinkKind,
    /// 1-based line.
    pub line: usize,
    /// Human rendering, e.g. `` `.unwrap()` `` or `` `offsets[e + 1]` ``.
    pub what: String,
}

/// One allocation site.
#[derive(Debug, Clone)]
pub struct Alloc {
    /// 1-based line.
    pub line: usize,
    /// Human rendering, e.g. `` `Vec::push` `` or `` `format!` ``.
    pub what: String,
    /// Inside a rayon parallel closure.
    pub in_par: bool,
    /// Inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// One lock acquisition (`.lock()` / `.read()` / `.write()` on a known
/// `Mutex`/`RwLock` binding).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// The lock's binding name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Inside a rayon parallel closure.
    pub in_par: bool,
}

/// A lexical lock-order edge: `held` was still held when `then` was
/// acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The already-held lock.
    pub held: String,
    /// The newly-acquired lock.
    pub then: String,
    /// Acquisition line of `then`.
    pub line: usize,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct Function {
    /// Bare name (`build`).
    pub name: String,
    /// Impl self type, when the function is a method (`CoReport`).
    pub self_ty: Option<String>,
    /// 1-based declaration line (the `fn` token's line).
    pub decl_line: usize,
    /// Annotated `// analyze: no_panic` (a panic-freedom root).
    pub no_panic: bool,
    /// Declared inside a `#[cfg(test)]` region or `#[test]` item.
    pub is_test: bool,
    /// Signature declares a `Result<..>` return type.
    pub returns_result: bool,
    /// Body token range (absolute indices into the file's token stream).
    pub body: std::ops::Range<usize>,
    /// Calls made by the body.
    pub calls: Vec<Call>,
    /// Panic sinks in the body.
    pub sinks: Vec<Sink>,
    /// Allocation sites in the body.
    pub allocs: Vec<Alloc>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockAcq>,
    /// Lexical lock-order edges in the body.
    pub lock_edges: Vec<LockEdge>,
    /// Lines using `Ordering::SeqCst`.
    pub seqcst: Vec<usize>,
}

impl Function {
    /// Display name: `CoReport::build` or `for_each_event_in`.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parse result for one file.
#[derive(Debug, Default, Clone)]
pub struct ParsedFile {
    /// All function items, in source order.
    pub functions: Vec<Function>,
    /// Lines carrying an `unsafe` site (block, fn, impl).
    pub unsafe_lines: Vec<usize>,
    /// Identifiers bound to `Mutex`/`RwLock` values in this file.
    pub lock_names: Vec<String>,
}

/// Rust keywords that look like call heads but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "fn", "let",
    "mut", "ref", "box", "dyn", "use", "pub", "mod", "struct", "enum", "trait", "type", "const",
    "static", "impl", "where", "unsafe", "break", "continue", "crate", "super", "await",
];

/// Rayon entry points that open a parallel region.
const PAR_MARKERS: &[&str] =
    &["par_iter", "into_par_iter", "par_iter_mut", "par_chunks", "par_chunks_mut", "par_bridge"];

/// Macros that panic unconditionally or on a failed condition.
/// `debug_assert*` is deliberately absent: it is compiled out of release
/// builds, which are the binaries the paper's scans run as.
const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Allocating methods (`.name(`).
const ALLOC_METHODS: &[&str] =
    &["push", "collect", "to_string", "to_vec", "to_owned", "extend", "extend_from_slice"];

/// Allocating `Type::func` constructors.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("Box", "new"),
];

/// Parse one file's token stream into items + facts.
pub fn parse_file(file: &SourceFile, tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    find_items(file, tokens, &mut out);
    collect_lock_names(tokens, &mut out.lock_names);
    collect_unsafe_sites(tokens, &mut out.unsafe_lines);

    // Child body ranges must not contribute facts to the parent (nested
    // `fn` items — rare, but cheap to get right).
    let ranges: Vec<std::ops::Range<usize>> =
        out.functions.iter().map(|f| f.body.clone()).collect();
    for (i, f) in out.functions.iter_mut().enumerate() {
        let children: Vec<std::ops::Range<usize>> = ranges
            .iter()
            .enumerate()
            .filter(|(j, r)| *j != i && r.start >= f.body.start && r.end <= f.body.end)
            .map(|(_, r)| r.clone())
            .collect();
        extract_facts(file, tokens, f, &children, &out.lock_names);
    }
    out
}

/// Locate impl scopes and function items with their body token ranges.
fn find_items(file: &SourceFile, tokens: &[Token], out: &mut ParsedFile) {
    let mut depth: i32 = 0; // brace depth
    let mut paren: i32 = 0;
    // Open impl scopes: (self_ty, brace depth inside the impl body).
    let mut impls: Vec<(String, i32)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // A `fn` header seen; waiting for its body `{` or a `;`. The third
    // field is the `fn` token index, so the signature can be re-scanned
    // (return type) when the body opens.
    let mut pending_fn: Option<(String, usize, usize)> = None;
    // Open fn bodies: (function index, brace depth inside the body).
    let mut open_fns: Vec<(usize, i32)> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokKind::LParen => paren += 1,
            TokKind::RParen => paren -= 1,
            TokKind::LBrace => {
                depth += 1;
                if let Some((name, line, fn_tok)) = pending_fn.take() {
                    let idx = out.functions.len();
                    out.functions.push(Function {
                        name,
                        self_ty: impls.last().map(|(t, _)| t.clone()),
                        decl_line: line,
                        no_panic: has_no_panic_annotation(file, line),
                        is_test: *file.in_test.get(line - 1).unwrap_or(&false),
                        returns_result: signature_returns_result(tokens, fn_tok, i),
                        body: i + 1..i + 1, // end patched on close
                        calls: Vec::new(),
                        sinks: Vec::new(),
                        allocs: Vec::new(),
                        locks: Vec::new(),
                        lock_edges: Vec::new(),
                        seqcst: Vec::new(),
                    });
                    open_fns.push((idx, depth));
                } else if let Some(ty) = pending_impl.take() {
                    impls.push((ty, depth));
                }
            }
            TokKind::RBrace => {
                depth -= 1;
                if open_fns.last().is_some_and(|&(_, d)| depth < d) {
                    let (idx, _) = open_fns.pop().unwrap_or((0, 0));
                    if let Some(f) = out.functions.get_mut(idx) {
                        f.body.end = i;
                    }
                }
                if impls.last().is_some_and(|&(_, d)| depth < d) {
                    impls.pop();
                }
            }
            TokKind::Ident if t.text == "impl" && pending_fn.is_none() => {
                pending_impl = parse_impl_self_ty(tokens, i);
            }
            TokKind::Ident if t.text == "fn" => {
                // `fn(..)` pointer types have no name token.
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == TokKind::Ident {
                        pending_fn = Some((next.text.clone(), next.line, i));
                    }
                }
            }
            TokKind::Punct if t.text == ";" && paren == 0 => {
                // Bodiless signature (trait method, extern) — discard.
                pending_fn = None;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Does the signature spanning tokens `[fn_tok, body_open)` declare a
/// `Result` return type? Scans from the `->` arrow to the body brace
/// (covering `Result<..>`, `io::Result<..>`, `anyhow::Result`).
fn signature_returns_result(tokens: &[Token], fn_tok: usize, body_open: usize) -> bool {
    let Some(arrow) =
        (fn_tok..body_open).find(|&j| tokens[j].kind == TokKind::Punct && tokens[j].text == "->")
    else {
        return false;
    };
    tokens[arrow..body_open].iter().any(|t| t.is("Result"))
}

/// Extract the self type of an `impl` header starting at token `at`.
fn parse_impl_self_ty(tokens: &[Token], at: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    for t in tokens.iter().skip(at + 1).take(64) {
        match t.kind {
            TokKind::LBrace | TokKind::RBrace => break,
            TokKind::Punct if t.text == "<" => angle += 1,
            TokKind::Punct if t.text == ">" => angle -= 1,
            TokKind::Punct if t.text == ";" => break,
            TokKind::Ident if angle == 0 => {
                if t.text == "for" {
                    saw_for = true;
                } else if !matches!(t.text.as_str(), "mut" | "dyn" | "const" | "unsafe") {
                    if saw_for {
                        if after_for.is_none() {
                            after_for = Some(t.text.clone());
                        }
                    } else if first.is_none() {
                        first = Some(t.text.clone());
                    }
                }
            }
            _ => {}
        }
    }
    after_for.or(first)
}

/// Does the function declared at `decl_line` carry an
/// `// analyze: no_panic` annotation (same line, or in the contiguous
/// run of comment/attribute lines directly above)?
fn has_no_panic_annotation(file: &SourceFile, decl_line: usize) -> bool {
    // The marker must be the comment's leading content (`// analyze:
    // no_panic`) — prose *mentioning* the marker (doc comments, this
    // function included) must not create a kernel root.
    let marked = |idx: usize| {
        file.lines.get(idx).is_some_and(|l| {
            l.comment.trim_start_matches(['/', '!']).trim_start().starts_with("analyze: no_panic")
        })
    };
    let idx = decl_line - 1;
    if marked(idx) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &file.lines[j];
        let code = l.code.trim();
        let is_annotation = code.is_empty() || code.starts_with("#[");
        if marked(j) {
            return true;
        }
        if !is_annotation {
            return false;
        }
    }
    false
}

/// Collect identifiers bound to `Mutex`/`RwLock` values anywhere in the
/// file: `name: Mutex<..>` field/param declarations and
/// `let name = .. Mutex::new(..)` bindings.
fn collect_lock_names(tokens: &[Token], out: &mut Vec<String>) {
    let mut last_let_ident: Option<String> = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            if t.text == ";" {
                last_let_ident = None;
            }
            continue;
        }
        if t.is("let") {
            // `let [mut] name`
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is("mut")) {
                j += 1;
            }
            if let Some(n) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) {
                last_let_ident = Some(n.text.clone());
            }
        } else if t.text == "Mutex" || t.text == "RwLock" {
            let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
            let prev2 = i.checked_sub(2).and_then(|j| tokens.get(j));
            if prev.is_some_and(|p| p.text == ":") {
                // `name: Mutex<..>` — field or parameter.
                if let Some(n) = prev2.filter(|t| t.kind == TokKind::Ident) {
                    push_unique(out, &n.text);
                }
            } else if tokens.get(i + 1).is_some_and(|t| t.text == "::")
                && tokens.get(i + 2).is_some_and(|t| t.is("new"))
            {
                if let Some(n) = &last_let_ident {
                    push_unique(out, n);
                }
            }
        }
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Record `unsafe` site lines (block / fn / impl forms, matching the
/// `safety_comment` lint's definition of a site).
fn collect_unsafe_sites(tokens: &[Token], out: &mut Vec<usize>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is("unsafe") {
            continue;
        }
        let site = match tokens.get(i + 1) {
            Some(n) => {
                n.kind == TokKind::LBrace
                    || n.is("fn")
                    || n.is("impl")
                    || n.is("trait")
                    || n.is("extern")
                    || n.line > t.line // `unsafe` alone, `{` on the next line
            }
            None => true,
        };
        if site {
            out.push(t.line);
        }
    }
}

/// Walk one function body and record calls, sinks, allocations, locks
/// and `SeqCst` uses.
fn extract_facts(
    file: &SourceFile,
    tokens: &[Token],
    f: &mut Function,
    children: &[std::ops::Range<usize>],
    lock_names: &[String],
) {
    // Combined paren+brace+bracket nesting, relative to the body start.
    let mut nest: i32 = 0;
    // Parallel regions: nesting depth at each open marker.
    let mut par_stack: Vec<i32> = Vec::new();
    // Loop bodies: brace depth at open. `pending_loop` waits for the `{`.
    let mut brace: i32 = 0;
    let mut loop_stack: Vec<i32> = Vec::new();
    let mut pending_loop = false;
    // Held locks: (name, brace depth at acquisition, let-bound).
    let mut held: Vec<(String, i32, bool)> = Vec::new();
    let mut stmt_has_let = false;

    let mut i = f.body.start;
    while i < f.body.end {
        if let Some(r) = children.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &tokens[i];
        let in_test_line = *file.in_test.get(t.line - 1).unwrap_or(&false);
        let in_par = par_stack.last().is_some_and(|&d| nest > d);

        match t.kind {
            TokKind::LParen | TokKind::LBracket => nest += 1,
            TokKind::RParen | TokKind::RBracket => {
                nest -= 1;
                while par_stack.last().is_some_and(|&d| nest < d) {
                    par_stack.pop();
                }
            }
            TokKind::LBrace => {
                nest += 1;
                brace += 1;
                if pending_loop {
                    loop_stack.push(brace);
                    pending_loop = false;
                }
            }
            TokKind::RBrace => {
                nest -= 1;
                while par_stack.last().is_some_and(|&d| nest < d) {
                    par_stack.pop();
                }
                while loop_stack.last().is_some_and(|&d| brace <= d) {
                    loop_stack.pop();
                }
                brace -= 1;
                held.retain(|&(_, d, _)| d <= brace);
            }
            TokKind::Punct if t.text == ";" => {
                if par_stack.last().is_some_and(|&d| nest <= d) {
                    par_stack.pop();
                }
                stmt_has_let = false;
                held.retain(|&(_, _, let_bound)| let_bound);
            }
            TokKind::Ident if !in_test_line => {
                let text = t.text.as_str();
                let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
                let prev_dot = prev.is_some_and(|p| p.text == ".");
                let prev_colons = prev.is_some_and(|p| p.text == "::");
                let next = tokens.get(i + 1);
                let next_bang = next.is_some_and(|n| n.text == "!");
                let next_paren = next.is_some_and(|n| n.kind == TokKind::LParen);

                if text == "let" {
                    stmt_has_let = true;
                } else if matches!(text, "for" | "while" | "loop") {
                    pending_loop = true;
                } else if text == "SeqCst" {
                    f.seqcst.push(t.line);
                } else if next_bang {
                    // Macro invocation.
                    if PANIC_MACROS.contains(&text) {
                        f.sinks.push(Sink {
                            kind: SinkKind::Call,
                            line: t.line,
                            what: format!("`{text}!`"),
                        });
                    } else if ALLOC_MACROS.contains(&text) {
                        f.allocs.push(Alloc {
                            line: t.line,
                            what: format!("`{text}!`"),
                            in_par,
                            in_loop: !loop_stack.is_empty(),
                        });
                    }
                } else if next_paren && prev_dot {
                    method_facts(
                        tokens,
                        i,
                        f,
                        lock_names,
                        in_par,
                        &loop_stack,
                        &mut held,
                        brace,
                        stmt_has_let,
                        &mut par_stack,
                        nest,
                    );
                } else if next_paren && !KEYWORDS.contains(&text) {
                    // Free or qualified call.
                    let recv = if prev_colons {
                        let qual = i
                            .checked_sub(2)
                            .and_then(|j| tokens.get(j))
                            .filter(|q| q.kind == TokKind::Ident)
                            .map(|q| q.text.clone());
                        match qual {
                            Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                                if let Some(&(_, ctor)) =
                                    ALLOC_CTORS.iter().find(|(ty, c)| *ty == q && *c == text)
                                {
                                    f.allocs.push(Alloc {
                                        line: t.line,
                                        what: format!("`{q}::{ctor}`"),
                                        in_par,
                                        in_loop: !loop_stack.is_empty(),
                                    });
                                }
                                Receiver::Qualified(q)
                            }
                            _ => Receiver::Free,
                        }
                    } else {
                        Receiver::Free
                    };
                    f.calls.push(Call {
                        name: text.to_string(),
                        recv,
                        line: t.line,
                        in_par,
                        in_loop: !loop_stack.is_empty(),
                    });
                }
            }
            _ => {}
        }

        // Indexing sinks: `expr[non-literal]` — checked on the bracket.
        if t.kind == TokKind::LBracket && !in_test_line {
            if let Some(s) = index_sink(tokens, i, f.body.end) {
                f.sinks.push(s);
            }
        }
        i += 1;
    }
}

/// Handle `.name(` method positions: calls, sinks, allocations, rayon
/// markers, and lock acquisitions.
#[allow(clippy::too_many_arguments)]
fn method_facts(
    tokens: &[Token],
    i: usize,
    f: &mut Function,
    lock_names: &[String],
    in_par: bool,
    loop_stack: &[i32],
    held: &mut Vec<(String, i32, bool)>,
    brace: i32,
    stmt_has_let: bool,
    par_stack: &mut Vec<i32>,
    nest: i32,
) {
    let t = &tokens[i];
    let text = t.text.as_str();
    let empty_args = tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::RParen);

    if PAR_MARKERS.contains(&text) {
        par_stack.push(nest);
        return;
    }
    if text == "unwrap" && empty_args {
        f.sinks.push(Sink { kind: SinkKind::Call, line: t.line, what: "`.unwrap()`".into() });
        return;
    }
    if text == "expect" {
        f.sinks.push(Sink { kind: SinkKind::Call, line: t.line, what: "`.expect(..)`".into() });
        return;
    }
    if ALLOC_METHODS.contains(&text) {
        f.allocs.push(Alloc {
            line: t.line,
            what: format!("`.{text}(..)`"),
            in_par,
            in_loop: !loop_stack.is_empty(),
        });
        // `collect` and friends are still calls (resolution finds
        // workspace impls if any) — fall through.
    }
    if matches!(text, "lock" | "read" | "write") {
        // Receiver ident: token before the `.`.
        let recv = i
            .checked_sub(2)
            .and_then(|j| tokens.get(j))
            .filter(|r| r.kind == TokKind::Ident)
            .map(|r| r.text.clone());
        if let Some(name) = recv.filter(|n| lock_names.iter().any(|l| l == n)) {
            for (h, _, _) in held.iter() {
                if *h != name {
                    f.lock_edges.push(LockEdge {
                        held: h.clone(),
                        then: name.clone(),
                        line: t.line,
                    });
                }
            }
            f.locks.push(LockAcq { name: name.clone(), line: t.line, in_par });
            held.push((name, brace, stmt_has_let));
            return;
        }
    }

    // Receiver shape: `self.name(` is resolvable to the caller's impl.
    let recv = if i.checked_sub(2).and_then(|j| tokens.get(j)).is_some_and(|r| r.is("self")) {
        Receiver::SelfMethod
    } else {
        Receiver::Method
    };
    f.calls.push(Call {
        name: text.to_string(),
        recv,
        line: t.line,
        in_par,
        in_loop: !loop_stack.is_empty(),
    });
}

/// If the `[` at token `at` indexes a value with a non-literal
/// expression, return the sink. Shared with the `index_bounds` prover
/// so both passes agree on what counts as an index site.
pub fn index_sink(tokens: &[Token], at: usize, limit: usize) -> Option<Sink> {
    let prev = at.checked_sub(1).and_then(|j| tokens.get(j))?;
    // Must follow an indexable expression ending: ident, `)`, or `]` —
    // and not be an attribute (`#[..]`).
    let indexable = matches!(prev.kind, TokKind::Ident | TokKind::RParen | TokKind::RBracket)
        && !KEYWORDS.contains(&prev.text.as_str());
    if !indexable || prev.text == "#" {
        return None;
    }
    if at.checked_sub(2).and_then(|j| tokens.get(j)).is_some_and(|p| p.text == "#") {
        return None;
    }
    // Scan the bracket body.
    let mut depth = 1;
    let mut has_ident = false;
    let mut body = String::new();
    for t in tokens.iter().take(limit).skip(at + 1) {
        match t.kind {
            TokKind::LBracket => depth += 1,
            TokKind::RBracket => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident => {
                // Type-suffix-free identifiers make the index dynamic.
                has_ident = true;
            }
            _ => {}
        }
        if !body.is_empty() && t.kind == TokKind::Ident {
            body.push(' ');
        }
        body.push_str(&t.text);
        if body.len() > 40 {
            break;
        }
    }
    if !has_ident {
        return None; // literal or literal-range index
    }
    let recv = prev.text.clone();
    Some(Sink { kind: SinkKind::Index, line: tokens[at].line, what: format!("`{recv}[{body}]`") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;

    fn parse(src: &str) -> ParsedFile {
        let file = SourceFile::parse(src);
        let tokens = tokenize(&file);
        parse_file(&file, &tokens)
    }

    #[test]
    fn functions_and_impls_are_found() {
        let src = "\
fn free() { helper(); }
impl CoReport {
    pub fn build(&self) -> u32 {
        self.pair_count(1)
    }
}
impl Merge for Matrix<u64> {
    fn merge(&mut self) {}
}
";
        let p = parse(src);
        let names: Vec<String> = p.functions.iter().map(Function::display).collect();
        assert_eq!(names, vec!["free", "CoReport::build", "Matrix::merge"]);
        assert_eq!(p.functions[1].calls.len(), 1);
        assert_eq!(p.functions[1].calls[0].recv, Receiver::SelfMethod);
    }

    #[test]
    fn no_panic_annotation_detected() {
        let src = "\
// analyze: no_panic
#[inline]
pub fn kernel() {}
fn plain() {}
";
        let p = parse(src);
        assert!(p.functions[0].no_panic);
        assert!(!p.functions[1].no_panic);
    }

    #[test]
    fn sinks_are_classified() {
        let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    let a = v[i];
    let b = v[0];
    let c = v.first().unwrap();
    assert!(a > 0);
    a + b + c
}
";
        let p = parse(src);
        let f = &p.functions[0];
        let kinds: Vec<(SinkKind, usize)> = f.sinks.iter().map(|s| (s.kind, s.line)).collect();
        assert!(kinds.contains(&(SinkKind::Index, 2)), "v[i] is a sink: {kinds:?}");
        assert!(!kinds.iter().any(|&(_, l)| l == 3), "v[0] is not a sink");
        assert!(kinds.contains(&(SinkKind::Call, 4)), "unwrap is a sink");
        assert!(kinds.contains(&(SinkKind::Call, 5)), "assert! is a sink");
    }

    #[test]
    fn par_region_allocs_are_tagged() {
        let src = "\
fn f(v: &[u32]) -> Vec<String> {
    v.par_iter()
        .map(|x| {
            let s = format!(\"{x}\");
            s
        })
        .collect()
}
";
        let p = parse(src);
        let f = &p.functions[0];
        let fmt = f.allocs.iter().find(|a| a.what == "`format!`").unwrap();
        assert!(fmt.in_par, "format! inside the closure is par-tagged");
        let coll = f.allocs.iter().find(|a| a.what == "`.collect(..)`").unwrap();
        assert!(!coll.in_par, "the chain terminator collect is not inside the closure");
    }

    #[test]
    fn loop_allocs_are_tagged() {
        let src = "\
fn f(n: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(Vec::with_capacity(4));
    }
    out
}
";
        let p = parse(src);
        let f = &p.functions[0];
        let top = f.allocs.iter().find(|a| a.line == 2).unwrap();
        assert!(!top.in_loop);
        assert!(f.allocs.iter().filter(|a| a.line == 4).all(|a| a.in_loop));
    }

    #[test]
    fn locks_and_order_edges() {
        let src = "\
use std::sync::Mutex;
struct S { a: Mutex<u32>, b: Mutex<u32> }
fn f(s: &S) {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    drop(gb);
    drop(ga);
}
";
        let p = parse(src);
        assert_eq!(p.lock_names, vec!["a", "b"]);
        let f = &p.functions[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.lock_edges.len(), 1);
        assert_eq!((f.lock_edges[0].held.as_str(), f.lock_edges[0].then.as_str()), ("a", "b"));
    }

    #[test]
    fn seqcst_and_unsafe_sites() {
        let src = "\
fn f(c: &std::sync::atomic::AtomicU32) {
    c.fetch_add(1, Ordering::SeqCst);
    // SAFETY: test
    unsafe { std::hint::unreachable_unchecked() }
}
";
        let p = parse(src);
        assert_eq!(p.functions[0].seqcst, vec![2]);
        assert_eq!(p.unsafe_lines, vec![4]);
    }

    #[test]
    fn test_functions_are_marked() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u32>.unwrap(); }
}
fn real() {}
";
        let p = parse(src);
        let t = p.functions.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        assert!(t.sinks.is_empty(), "facts skipped in test regions");
        assert!(!p.functions.iter().find(|f| f.name == "real").unwrap().is_test);
    }

    #[test]
    fn result_return_types_are_flagged() {
        let src = "\
fn plain() -> u32 { 0 }
fn fallible() -> Result<u32, String> { Ok(0) }
fn io_style() -> std::io::Result<()> { Ok(()) }
fn none() { fallible(); }
";
        let p = parse(src);
        let by_name = |n: &str| p.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("plain").returns_result);
        assert!(by_name("fallible").returns_result);
        assert!(by_name("io_style").returns_result);
        assert!(!by_name("none").returns_result);
    }

    #[test]
    fn qualified_and_free_calls() {
        let src = "\
fn f() {
    helper(1);
    Bitmap::fill(2);
    ids::row_u32(3);
}
";
        let p = parse(src);
        let f = &p.functions[0];
        assert_eq!(f.calls.len(), 3);
        assert_eq!(f.calls[0].recv, Receiver::Free);
        assert_eq!(f.calls[1].recv, Receiver::Qualified("Bitmap".into()));
        assert_eq!(f.calls[2].recv, Receiver::Free, "lowercase qualifier resolves as free");
    }
}
