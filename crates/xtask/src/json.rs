//! A minimal JSON parser — just enough for `--diff` snapshots and the
//! SARIF validator. Zero dependencies, by design: xtask must build
//! with nothing but the standard library.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Numbers are kept as `f64`, which
//! is exact for every integer the analyzer emits (line numbers,
//! counts). Parsing is recursive descent with a depth cap.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap: deterministic iteration, duplicate keys
    /// keep the last value (matching serde and the RFC's "SHOULD").
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Maximum nesting depth before bailing out.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser { c: &bytes, i: 0 };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.c.len() {
        return Err(format!("trailing data at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    c: &'a [char],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.c.len() && self.c[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.c.get(self.i).copied()
    }

    fn eat(&mut self, ch: char) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{ch}' at offset {}", self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for ch in word.chars() {
            self.eat(ch)?;
        }
        Ok(v)
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some('{') => self.object(depth),
            Some('[') => self.array(depth),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.lit("true", Json::Bool(true)),
            Some('f') => self.lit("false", Json::Bool(false)),
            Some('n') => self.lit("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{c}' at offset {}", self.i)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat('{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(':')?;
            self.ws();
            let v = self.value(depth + 1)?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat('[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err("unterminated string".into()) };
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else { return Err("bad escape".into()) };
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err("bad \\u escape".into());
                                };
                                code = code * 16 + h;
                                self.i += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{other}'")),
                    }
                }
                other => out.push(other),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.i += 1;
        }
        let text: String = self.c[start..self.i].iter().collect();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_analyzer_shape() {
        let v = parse(
            r#"{"diagnostics": [{"path": "a.rs", "line": 3, "rule": "hot_alloc", "message": "m \"q\""}], "count": 1}"#,
        )
        .unwrap();
        let d = &v.get("diagnostics").unwrap().as_arr().unwrap()[0];
        assert_eq!(d.get("path").unwrap().as_str(), Some("a.rs"));
        assert_eq!(d.get("line").unwrap().as_num(), Some(3.0));
        assert_eq!(d.get("message").unwrap().as_str(), Some("m \"q\""));
        assert_eq!(v.get("count").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\n\tA\\""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\tA\\"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn nested_arrays_and_numbers() {
        let v = parse("[1, -2.5, [true, null, false]]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2].as_arr().unwrap()[1], Json::Null);
    }
}
