//! Repo automation library behind the `cargo xtask` binary.
//!
//! Exposed as a library so the integration tests under `tests/` can
//! drive the lint and analyze passes against fixture files without
//! spawning the binary. Modules:
//!
//! * [`source`] — line model (code/comment split, literal blanking,
//!   test regions, suppression markers);
//! * [`lex`] / [`parse`] / [`callgraph`] — token stream, item parser,
//!   and intra-workspace call graph for the semantic pass;
//! * [`lint`] — the line-level rules (`cargo xtask lint`);
//! * [`analyze`] — the call-graph analyses (`cargo xtask analyze`);
//! * [`baseline`] — the ratcheting unsafe-inventory baseline;
//! * [`diag`] — the shared diagnostic type and output formats;
//! * [`walk`] — workspace file discovery shared by both passes;
//! * [`sanitize`] — miri / tsan wrappers.

pub mod analyze;
pub mod baseline;
pub mod callgraph;
pub mod deps;
pub mod diag;
pub mod lex;
pub mod lint;
pub mod parse;
pub mod sanitize;
pub mod source;
pub mod walk;
