//! Repo automation library behind the `cargo xtask` binary.
//!
//! Exposed as a library so the integration tests under `tests/` can
//! drive the lint and analyze passes against fixture files without
//! spawning the binary. Modules:
//!
//! * [`source`] — line model (code/comment split, literal blanking,
//!   test regions, suppression markers);
//! * [`lex`] / [`parse`] / [`callgraph`] — token stream, item parser,
//!   and intra-workspace call graph for the semantic pass;
//! * [`lint`] — the line-level rules (`cargo xtask lint`);
//! * [`analyze`] — the call-graph analyses (`cargo xtask analyze`);
//! * [`cfg`] / [`dataflow`] — statement-level CFGs and the fixpoint
//!   engine behind the dataflow rules;
//! * [`bounds`] / [`guard`] / [`discard`] — the dataflow analyses
//!   (`index_bounds`, `guard_across_await_or_call`, `result_discard`);
//! * [`summaries`] — interprocedural effect summaries over the SCC
//!   condensation (behind `par_race`, `atomic_protocol`, and the
//!   cross-function bounds obligations);
//! * [`json`] / [`sarif`] — minimal JSON parsing and SARIF 2.1.0
//!   export + validation;
//! * [`baseline`] — the ratcheting unsafe-inventory baseline;
//! * [`diag`] — the shared diagnostic type and output formats;
//! * [`walk`] — workspace file discovery shared by both passes;
//! * [`sanitize`] — miri / tsan wrappers.

pub mod analyze;
pub mod baseline;
pub mod bounds;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod deps;
pub mod diag;
pub mod discard;
pub mod guard;
pub mod json;
pub mod lex;
pub mod lint;
pub mod parse;
pub mod sanitize;
pub mod sarif;
pub mod source;
pub mod summaries;
pub mod walk;
