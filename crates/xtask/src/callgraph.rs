//! Intra-workspace call graph over the functions `parse` extracted,
//! with BFS shortest paths for panic-reachability reporting.
//!
//! Resolution is name-based (documented in DESIGN.md):
//!
//! * `self.m(..)` resolves only to methods of the caller's own impl
//!   type;
//! * `Type::f(..)` resolves only to methods of impls named `Type`;
//! * `expr.m(..)` (unknown receiver) resolves to *every* workspace
//!   method named `m` — conservative over-approximation;
//! * `f(..)` resolves to free functions named `f`;
//! * names with no workspace definition (std, shims) resolve to
//!   nothing and are ignored;
//! * `#[cfg(test)]` functions are never callees of non-test code, and
//!   functions in integration-test/example files are only callable from
//!   their own file.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;

use crate::deps::CrateDeps;
use crate::parse::{Function, ParsedFile, Receiver};
use crate::walk::crate_of;

/// One function node with its owning file attached.
#[derive(Debug)]
pub struct Node {
    /// Workspace-relative path of the defining file.
    pub path: PathBuf,
    /// File index into the analyzer's parsed-file list.
    pub file_idx: usize,
    /// Index of the function within that file's `functions`.
    pub fn_idx: usize,
    /// The parsed function (cloned out for direct access).
    pub func: Function,
    /// Defined under `tests/`, `examples/`, or a crate's `tests/` or
    /// `benches/` directory (callable only from its own file).
    pub in_test_tree: bool,
}

/// A call edge: `from` calls `to` at `line` (in `from`'s file).
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Caller node id.
    pub from: usize,
    /// Callee node id.
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes.
    pub nodes: Vec<Node>,
    /// Adjacency: outgoing edges per node.
    pub out: Vec<Vec<Edge>>,
}

/// One hop of a rendered call path.
#[derive(Debug, Clone)]
pub struct PathHop {
    /// Node reached by this hop.
    pub node: usize,
    /// Call-site line in the *previous* hop's file (0 for the root).
    pub via_line: usize,
}

impl CallGraph {
    /// Build the graph from every parsed file.
    ///
    /// `files` pairs each parse result with its workspace-relative path;
    /// `in_test_tree` flags files whose functions are only callable from
    /// themselves (integration tests, benches, examples).
    pub fn build(files: &[(PathBuf, ParsedFile, bool)]) -> CallGraph {
        Self::build_filtered(files, None)
    }

    /// Like [`CallGraph::build`], additionally dropping edges into
    /// crates the caller's crate does not (transitively) depend on.
    pub fn build_filtered(
        files: &[(PathBuf, ParsedFile, bool)],
        deps: Option<&CrateDeps>,
    ) -> CallGraph {
        let mut g = CallGraph::default();
        for (file_idx, (path, parsed, in_test_tree)) in files.iter().enumerate() {
            for (fn_idx, func) in parsed.functions.iter().enumerate() {
                g.nodes.push(Node {
                    path: path.clone(),
                    file_idx,
                    fn_idx,
                    func: func.clone(),
                    in_test_tree: *in_test_tree,
                });
            }
        }
        g.out = vec![Vec::new(); g.nodes.len()];

        // Name → candidate node ids, split by shape.
        let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut free: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, n) in g.nodes.iter().enumerate() {
            if n.func.self_ty.is_some() {
                methods.entry(n.func.name.as_str()).or_default().push(id);
            } else {
                free.entry(n.func.name.as_str()).or_default().push(id);
            }
        }

        let node_crate: Vec<String> = g.nodes.iter().map(|n| crate_of(&n.path)).collect();

        let mut edges: Vec<Edge> = Vec::new();
        for (from, n) in g.nodes.iter().enumerate() {
            for call in &n.func.calls {
                let candidates: Vec<usize> = match &call.recv {
                    Receiver::SelfMethod => {
                        let ty = n.func.self_ty.as_deref();
                        match ty {
                            Some(ty) => methods
                                .get(call.name.as_str())
                                .into_iter()
                                .flatten()
                                .copied()
                                .filter(|&id| g.nodes[id].func.self_ty.as_deref() == Some(ty))
                                .collect(),
                            // Free fn using `self`? Shouldn't happen; be
                            // conservative and match any method.
                            None => methods
                                .get(call.name.as_str())
                                .into_iter()
                                .flatten()
                                .copied()
                                .collect(),
                        }
                    }
                    Receiver::Qualified(ty) => {
                        let typed: Vec<usize> = methods
                            .get(call.name.as_str())
                            .into_iter()
                            .flatten()
                            .copied()
                            .filter(|&id| g.nodes[id].func.self_ty.as_deref() == Some(ty.as_str()))
                            .collect();
                        if typed.is_empty() {
                            // `Enum::variant(..)` or module-style paths:
                            // fall back to free functions of that name.
                            free.get(call.name.as_str()).into_iter().flatten().copied().collect()
                        } else {
                            typed
                        }
                    }
                    Receiver::Method => {
                        methods.get(call.name.as_str()).into_iter().flatten().copied().collect()
                    }
                    Receiver::Free => {
                        free.get(call.name.as_str()).into_iter().flatten().copied().collect()
                    }
                };
                for to in candidates {
                    let callee = &g.nodes[to];
                    // Test functions and test-tree files are not callees
                    // of foreign code.
                    if callee.func.is_test && !n.func.is_test {
                        continue;
                    }
                    if callee.in_test_tree && callee.path != n.path {
                        continue;
                    }
                    // A real call can only land in a crate the caller
                    // depends on.
                    if let Some(deps) = deps {
                        if !deps.can_call(&node_crate[from], &node_crate[to]) {
                            continue;
                        }
                    }
                    edges.push(Edge { from, to, line: call.line });
                }
            }
        }
        for e in edges {
            g.out[e.from].push(e);
        }
        g
    }

    /// Strongly connected components in reverse topological order:
    /// every component is emitted after all components it calls into.
    /// Tarjan's algorithm, iterative (workspace call chains can exceed
    /// the default stack under debug builds). This is the bottom-up
    /// order the summary engine folds in — callee summaries exist by
    /// the time a caller's component is visited.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, next out-edge to examine).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
                if *ei < self.out[v].len() {
                    let w = self.out[v][*ei].to;
                    *ei += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                    continue;
                }
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
        out
    }

    /// BFS from `root`, returning for each node the shortest hop
    /// sequence from the root (`None` if unreachable). Paths record the
    /// call-site line of each hop.
    pub fn shortest_paths(&self, root: usize) -> Vec<Option<Vec<PathHop>>> {
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut q = VecDeque::new();
        seen[root] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for e in &self.out[u] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    parent[e.to] = Some((u, e.line));
                    q.push_back(e.to);
                }
            }
        }
        (0..self.nodes.len())
            .map(|v| {
                if !seen[v] {
                    return None;
                }
                let mut hops = vec![PathHop { node: v, via_line: 0 }];
                let mut cur = v;
                while let Some((p, line)) = parent[cur] {
                    if let Some(h) = hops.last_mut() {
                        h.via_line = line;
                    }
                    hops.push(PathHop { node: p, via_line: 0 });
                    cur = p;
                }
                hops.reverse();
                Some(hops)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;
    use crate::parse::parse_file;
    use crate::source::SourceFile;
    use std::path::Path;

    fn graph(srcs: &[(&str, &str, bool)]) -> CallGraph {
        let files: Vec<(PathBuf, ParsedFile, bool)> = srcs
            .iter()
            .map(|(path, src, test_tree)| {
                let f = SourceFile::parse(src);
                let toks = tokenize(&f);
                (Path::new(path).to_path_buf(), parse_file(&f, &toks), *test_tree)
            })
            .collect();
        CallGraph::build(&files)
    }

    fn id(g: &CallGraph, display: &str) -> usize {
        g.nodes.iter().position(|n| n.func.display() == display).unwrap()
    }

    #[test]
    fn free_and_method_edges_resolve() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
fn top() { helper(); }
fn helper() { Thing::poke(0); }
impl Thing {
    fn poke(x: u32) { x.checked_add(1).unwrap(); }
}
",
            false,
        )]);
        let top = id(&g, "top");
        let helper = id(&g, "helper");
        let poke = id(&g, "Thing::poke");
        assert!(g.out[top].iter().any(|e| e.to == helper));
        assert!(g.out[helper].iter().any(|e| e.to == poke));
        let paths = g.shortest_paths(top);
        let p = paths[poke].as_ref().unwrap();
        assert_eq!(p.len(), 3, "top -> helper -> poke");
        assert_eq!(p[1].via_line, 1, "call site of helper in top");
        assert_eq!(p[2].via_line, 2, "call site of poke in helper");
    }

    #[test]
    fn self_method_restricted_to_own_impl() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
impl A { fn go(&self) { self.step(); } fn step(&self) {} }
impl B { fn step(&self) { None::<u32>.unwrap(); } }
",
            false,
        )]);
        let go = id(&g, "A::go");
        let a_step = id(&g, "A::step");
        let b_step = id(&g, "B::step");
        assert!(g.out[go].iter().any(|e| e.to == a_step));
        assert!(!g.out[go].iter().any(|e| e.to == b_step), "self.step() must not cross impls");
    }

    #[test]
    fn unknown_receiver_matches_all_methods() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
fn f(x: &A, y: &B) { x.step(); }
impl A { fn step(&self) {} }
impl B { fn step(&self) {} }
",
            false,
        )]);
        let f = id(&g, "f");
        assert_eq!(g.out[f].len(), 2, "unknown receiver over-approximates");
    }

    #[test]
    fn test_functions_are_not_callees() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
fn prod() { check(); }
#[cfg(test)]
mod tests {
    fn check() { panic!(); }
}
",
            false,
        )]);
        let prod = id(&g, "prod");
        assert!(g.out[prod].is_empty(), "test fn is not a callee of prod code");
    }

    #[test]
    fn sccs_emit_callees_first_and_group_recursion() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "\
fn top() { ping(); leaf(); }
fn ping() { pong(); }
fn pong() { ping(); leaf(); }
fn leaf() {}
",
            false,
        )]);
        let comps = g.sccs();
        let top = id(&g, "top");
        let ping = id(&g, "ping");
        let pong = id(&g, "pong");
        let leaf = id(&g, "leaf");
        let pos = |v: usize| comps.iter().position(|c| c.contains(&v)).unwrap();
        assert_eq!(comps[pos(ping)], vec![ping.min(pong), ping.max(pong)], "cycle is one SCC");
        assert!(pos(leaf) < pos(ping), "leaf before the cycle that calls it");
        assert!(pos(ping) < pos(top), "cycle before its caller");
        assert_eq!(comps.iter().map(Vec::len).sum::<usize>(), g.nodes.len());
    }

    #[test]
    fn test_tree_files_only_call_themselves() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn caller() { util(); }\n", false),
            ("tests/helpers.rs", "fn util() { panic!(); }\n", true),
        ]);
        let caller = id(&g, "caller");
        assert!(g.out[caller].is_empty(), "integration-test fns not callable from src");
    }
}
