//! The ratcheting `analyze-baseline.toml` for the unsafe inventory.
//!
//! The baseline grandfathers the unsafe sites that existed when the
//! analyzer landed. The ratchet only turns one way:
//!
//! * a crate growing new unsafe (count above baseline) **fails**;
//! * a crate shrinking below its baseline entry **fails** too — the
//!   stale entry must be updated so the headroom cannot be silently
//!   re-spent;
//! * same count but different locations (digest mismatch) **fails** —
//!   moved unsafe is new unsafe;
//! * `cargo xtask analyze --update-baseline` rewrites the file from the
//!   current inventory.
//!
//! The file is a deliberately tiny TOML subset (parsed by hand — no
//! dependencies): `[crate.<name>]` tables with `count`, `digest`, and a
//! mandatory human `reason`.
//!
//! The same file also ratchets **test counts**: `[tests.<name>]` tables
//! record each crate's `#[test]` count. Shrinking below the recorded
//! count fails (tests were dropped); growing past it also fails until
//! the floor is raised with `--update-baseline`, so the recorded counts
//! always match reality and future shrinkage is always caught.
//!
//! Two more exact-match count tables ride on the same machinery:
//!
//! * `[dataflow.<name>]` — marker-suppressed dataflow findings
//!   (`index_bounds` / `guard_across_await_or_call` / `result_discard`)
//!   per crate. New suppressions fail (justify or fix, then
//!   `--update-baseline`); removing one also fails until the count is
//!   ratcheted down, so headroom cannot be silently re-spent.
//! * `[stale.<name>]` — `lint: allow` / `analyze: allow` markers that no
//!   longer suppress anything. The target is zero everywhere; the table
//!   exists so cleanup progress ratchets and regressions fail.
//! * `[summary.<name>]` — marker-suppressed summary-rule findings
//!   (`par_race` / `atomic_protocol`) per crate, same exact-match
//!   semantics as `[dataflow.*]`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One crate's grandfathered unsafe inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Number of unsafe sites.
    pub count: usize,
    /// Location digest (see [`digest`]).
    pub digest: String,
    /// Why this unsafe is allowed to exist (human-written).
    pub reason: String,
}

/// The parsed baseline: crate name → entry, sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries keyed by crate name.
    pub crates: BTreeMap<String, BaselineEntry>,
    /// Recorded `#[test]` counts keyed by crate name.
    pub tests: BTreeMap<String, usize>,
    /// Marker-suppressed dataflow finding counts keyed by crate name.
    pub dataflow: BTreeMap<String, usize>,
    /// Stale suppression-marker counts keyed by crate name.
    pub stale: BTreeMap<String, usize>,
    /// Marker-suppressed summary-rule finding counts keyed by crate
    /// name (`par_race` / `atomic_protocol`).
    pub summary: BTreeMap<String, usize>,
}

/// The current inventory measured from the workspace: crate name →
/// sorted `relpath:count` location strings.
#[derive(Debug, Clone, Default)]
pub struct Inventory {
    /// Per-crate unsafe locations, `path:count` per file, sorted.
    pub crates: BTreeMap<String, Vec<String>>,
}

impl Inventory {
    /// Record `count` unsafe sites in `rel_path` of `crate_name`.
    pub fn record(&mut self, crate_name: &str, rel_path: &str, count: usize) {
        if count == 0 {
            return;
        }
        self.crates.entry(crate_name.to_string()).or_default().push(format!("{rel_path}:{count}"));
    }

    /// Total sites in one crate.
    pub fn count(&self, crate_name: &str) -> usize {
        self.crates.get(crate_name).map(|v| v.iter().map(|s| trailing_count(s)).sum()).unwrap_or(0)
    }

    /// Location digest for one crate.
    pub fn digest(&self, crate_name: &str) -> String {
        let mut locs = self.crates.get(crate_name).cloned().unwrap_or_default();
        locs.sort();
        digest(&locs)
    }
}

fn trailing_count(s: &str) -> usize {
    s.rsplit(':').next().and_then(|n| n.parse().ok()).unwrap_or(0)
}

/// FNV-1a over the sorted location strings, newline-joined — stable,
/// dependency-free, and sensitive to both file set and per-file counts.
pub fn digest(sorted_locations: &[String]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for loc in sorted_locations {
        for b in loc.bytes().chain(std::iter::once(b'\n')) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// A ratchet violation (rendered by the analyzer as a diagnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RatchetError {
    /// Unsafe count grew past (or appeared without) a baseline entry.
    Grew {
        /// Crate name.
        krate: String,
        /// Baseline count (0 when the crate had no entry).
        baseline: usize,
        /// Measured count.
        actual: usize,
    },
    /// Unsafe count shrank below the baseline — stale entry.
    Stale {
        /// Crate name.
        krate: String,
        /// Baseline count.
        baseline: usize,
        /// Measured count.
        actual: usize,
    },
    /// Same count, different locations.
    Moved {
        /// Crate name.
        krate: String,
    },
    /// `#[test]` count fell below the recorded floor — tests were
    /// dropped.
    TestsShrank {
        /// Crate name.
        krate: String,
        /// Recorded test count.
        baseline: usize,
        /// Measured test count.
        actual: usize,
    },
    /// `#[test]` count grew past the recorded floor — the floor must be
    /// raised so the new tests are protected too.
    TestsGrew {
        /// Crate name.
        krate: String,
        /// Recorded test count.
        baseline: usize,
        /// Measured test count.
        actual: usize,
    },
    /// Marker-suppressed dataflow finding count drifted from the
    /// recorded `[dataflow.<crate>]` value (either direction).
    DataflowDrift {
        /// Crate name.
        krate: String,
        /// Recorded suppression count.
        baseline: usize,
        /// Measured suppression count.
        actual: usize,
    },
    /// Stale-marker count drifted from the recorded `[stale.<crate>]`
    /// value (either direction).
    StaleDrift {
        /// Crate name.
        krate: String,
        /// Recorded stale-marker count.
        baseline: usize,
        /// Measured stale-marker count.
        actual: usize,
    },
    /// Marker-suppressed summary-rule finding count drifted from the
    /// recorded `[summary.<crate>]` value (either direction).
    SummaryDrift {
        /// Crate name.
        krate: String,
        /// Recorded suppression count.
        baseline: usize,
        /// Measured suppression count.
        actual: usize,
    },
}

impl std::fmt::Display for RatchetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RatchetError::Grew { krate, baseline, actual } => write!(
                f,
                "crate `{krate}` has {actual} unsafe sites, baseline allows {baseline} — \
                 remove the unsafe or justify it and run `cargo xtask analyze --update-baseline`"
            ),
            RatchetError::Stale { krate, baseline, actual } => write!(
                f,
                "crate `{krate}` has {actual} unsafe sites but the baseline still grandfathers \
                 {baseline} — ratchet down with `cargo xtask analyze --update-baseline`"
            ),
            RatchetError::Moved { krate } => write!(
                f,
                "crate `{krate}` unsafe sites moved (count unchanged, location digest differs) — \
                 review and run `cargo xtask analyze --update-baseline`"
            ),
            RatchetError::TestsShrank { krate, baseline, actual } => write!(
                f,
                "crate `{krate}` has {actual} #[test] functions, baseline records {baseline} — \
                 tests were dropped; restore them (or, if removal is deliberate, justify it and \
                 run `cargo xtask analyze --update-baseline`)"
            ),
            RatchetError::TestsGrew { krate, baseline, actual } => write!(
                f,
                "crate `{krate}` has {actual} #[test] functions, baseline records {baseline} — \
                 raise the floor with `cargo xtask analyze --update-baseline` so the new tests \
                 cannot be silently dropped later"
            ),
            RatchetError::DataflowDrift { krate, baseline, actual } => write!(
                f,
                "crate `{krate}` has {actual} marker-suppressed dataflow findings, baseline \
                 records {baseline} — fix or justify the drift, then run \
                 `cargo xtask analyze --update-baseline`"
            ),
            RatchetError::StaleDrift { krate, baseline, actual } => write!(
                f,
                "crate `{krate}` has {actual} stale suppression markers, baseline records \
                 {baseline} — remove dead markers with `cargo xtask analyze --remove-stale`, \
                 then run `cargo xtask analyze --update-baseline`"
            ),
            RatchetError::SummaryDrift { krate, baseline, actual } => write!(
                f,
                "crate `{krate}` has {actual} marker-suppressed summary-rule findings \
                 (par_race / atomic_protocol), baseline records {baseline} — fix or justify \
                 the drift, then run `cargo xtask analyze --update-baseline`"
            ),
        }
    }
}

/// Compare the measured inventory against the committed baseline.
pub fn check(baseline: &Baseline, inventory: &Inventory) -> Vec<RatchetError> {
    let mut errors = Vec::new();
    let mut names: Vec<&String> = baseline.crates.keys().chain(inventory.crates.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let base = baseline.crates.get(name);
        let actual = inventory.count(name);
        let allowed = base.map(|e| e.count).unwrap_or(0);
        if actual > allowed {
            errors.push(RatchetError::Grew { krate: name.clone(), baseline: allowed, actual });
        } else if actual < allowed {
            errors.push(RatchetError::Stale { krate: name.clone(), baseline: allowed, actual });
        } else if actual > 0 {
            let digest = inventory.digest(name);
            if base.is_some_and(|e| e.digest != digest) {
                errors.push(RatchetError::Moved { krate: name.clone() });
            }
        }
    }
    errors
}

/// Compare measured per-crate `#[test]` counts against the recorded
/// floors. Exact-match semantics: shrink and growth both fail (growth
/// is resolved by raising the floor), so the committed counts always
/// reflect reality.
pub fn check_tests(baseline: &Baseline, counts: &BTreeMap<String, usize>) -> Vec<RatchetError> {
    let mut errors = Vec::new();
    let mut names: Vec<&String> = baseline.tests.keys().chain(counts.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let recorded = baseline.tests.get(name).copied().unwrap_or(0);
        let actual = counts.get(name).copied().unwrap_or(0);
        if actual < recorded {
            errors.push(RatchetError::TestsShrank {
                krate: name.clone(),
                baseline: recorded,
                actual,
            });
        } else if actual > recorded {
            errors.push(RatchetError::TestsGrew {
                krate: name.clone(),
                baseline: recorded,
                actual,
            });
        }
    }
    errors
}

/// Compare measured per-crate marker-suppressed dataflow finding counts
/// against the recorded `[dataflow.*]` values. Exact-match in both
/// directions, like the test ratchet.
pub fn check_dataflow(baseline: &Baseline, counts: &BTreeMap<String, usize>) -> Vec<RatchetError> {
    exact_match(&baseline.dataflow, counts, |krate, baseline, actual| RatchetError::DataflowDrift {
        krate,
        baseline,
        actual,
    })
}

/// Compare measured per-crate stale-marker counts against the recorded
/// `[stale.*]` values. Exact-match in both directions.
pub fn check_stale(baseline: &Baseline, counts: &BTreeMap<String, usize>) -> Vec<RatchetError> {
    exact_match(&baseline.stale, counts, |krate, baseline, actual| RatchetError::StaleDrift {
        krate,
        baseline,
        actual,
    })
}

/// Compare measured per-crate marker-suppressed summary-rule finding
/// counts against the recorded `[summary.*]` values. Exact-match in
/// both directions.
pub fn check_summary(baseline: &Baseline, counts: &BTreeMap<String, usize>) -> Vec<RatchetError> {
    exact_match(&baseline.summary, counts, |krate, baseline, actual| RatchetError::SummaryDrift {
        krate,
        baseline,
        actual,
    })
}

fn exact_match(
    recorded: &BTreeMap<String, usize>,
    counts: &BTreeMap<String, usize>,
    err: impl Fn(String, usize, usize) -> RatchetError,
) -> Vec<RatchetError> {
    let mut errors = Vec::new();
    let mut names: Vec<&String> = recorded.keys().chain(counts.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let base = recorded.get(name).copied().unwrap_or(0);
        let actual = counts.get(name).copied().unwrap_or(0);
        if actual != base {
            errors.push(err(name.clone(), base, actual));
        }
    }
    errors
}

/// Build the baseline that matches the current inventory and measured
/// counts, carrying forward reasons for crates that already had one.
pub fn from_inventory(
    inventory: &Inventory,
    test_counts: &BTreeMap<String, usize>,
    dataflow_counts: &BTreeMap<String, usize>,
    stale_counts: &BTreeMap<String, usize>,
    summary_counts: &BTreeMap<String, usize>,
    previous: &Baseline,
) -> Baseline {
    let mut out = Baseline::default();
    for (name, &count) in test_counts {
        if count > 0 {
            out.tests.insert(name.clone(), count);
        }
    }
    for (name, &count) in dataflow_counts {
        if count > 0 {
            out.dataflow.insert(name.clone(), count);
        }
    }
    for (name, &count) in stale_counts {
        if count > 0 {
            out.stale.insert(name.clone(), count);
        }
    }
    for (name, &count) in summary_counts {
        if count > 0 {
            out.summary.insert(name.clone(), count);
        }
    }
    for (name, _) in inventory.crates.iter() {
        let count = inventory.count(name);
        if count == 0 {
            continue;
        }
        let reason = previous
            .crates
            .get(name)
            .map(|e| e.reason.clone())
            .unwrap_or_else(|| "TODO: justify this unsafe inventory".to_string());
        out.crates
            .insert(name.clone(), BaselineEntry { count, digest: inventory.digest(name), reason });
    }
    out
}

/// Parse `analyze-baseline.toml`. Unknown keys and malformed lines are
/// hard errors — the ratchet must not fail open.
pub fn parse(text: &str) -> Result<Baseline, String> {
    enum Table {
        Crate(String),
        Tests(String),
        Dataflow(String),
        Stale(String),
        Summary(String),
    }
    let mut out = Baseline::default();
    let mut current: Option<Table> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("baseline line {lineno}: unterminated table header"))?;
            if let Some(krate) = name.strip_prefix("crate.") {
                if krate.is_empty() {
                    return Err(format!("baseline line {lineno}: empty crate name"));
                }
                out.crates.insert(
                    krate.to_string(),
                    BaselineEntry { count: 0, digest: String::new(), reason: String::new() },
                );
                current = Some(Table::Crate(krate.to_string()));
            } else if let Some(krate) = name.strip_prefix("tests.") {
                if krate.is_empty() {
                    return Err(format!("baseline line {lineno}: empty crate name"));
                }
                out.tests.insert(krate.to_string(), 0);
                current = Some(Table::Tests(krate.to_string()));
            } else if let Some(krate) = name.strip_prefix("dataflow.") {
                if krate.is_empty() {
                    return Err(format!("baseline line {lineno}: empty crate name"));
                }
                out.dataflow.insert(krate.to_string(), 0);
                current = Some(Table::Dataflow(krate.to_string()));
            } else if let Some(krate) = name.strip_prefix("stale.") {
                if krate.is_empty() {
                    return Err(format!("baseline line {lineno}: empty crate name"));
                }
                out.stale.insert(krate.to_string(), 0);
                current = Some(Table::Stale(krate.to_string()));
            } else if let Some(krate) = name.strip_prefix("summary.") {
                if krate.is_empty() {
                    return Err(format!("baseline line {lineno}: empty crate name"));
                }
                out.summary.insert(krate.to_string(), 0);
                current = Some(Table::Summary(krate.to_string()));
            } else {
                return Err(format!(
                    "baseline line {lineno}: expected [crate.<name>], [tests.<name>], \
                     [dataflow.<name>], [stale.<name>], or [summary.<name>]"
                ));
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("baseline line {lineno}: expected key = value"))?;
        let table = current
            .as_ref()
            .ok_or_else(|| format!("baseline line {lineno}: key outside a table"))?;
        match table {
            Table::Tests(_) | Table::Dataflow(_) | Table::Stale(_) | Table::Summary(_) => {
                let (map, kind) = match table {
                    Table::Tests(k) => (&mut out.tests, ("tests", k)),
                    Table::Dataflow(k) => (&mut out.dataflow, ("dataflow", k)),
                    Table::Stale(k) => (&mut out.stale, ("stale", k)),
                    Table::Summary(k) => (&mut out.summary, ("summary", k)),
                    Table::Crate(_) => unreachable!(),
                };
                match key {
                    "count" => {
                        let n = value.parse().map_err(|_| {
                            format!("baseline line {lineno}: count must be an integer")
                        })?;
                        map.insert(kind.1.clone(), n);
                    }
                    other => {
                        return Err(format!(
                            "baseline line {lineno}: unknown key `{other}` in a [{}.*] table",
                            kind.0
                        ));
                    }
                }
            }
            Table::Crate(krate) => {
                let entry = out.crates.get_mut(krate).expect("current table exists");
                match key {
                    "count" => {
                        entry.count = value.parse().map_err(|_| {
                            format!("baseline line {lineno}: count must be an integer")
                        })?;
                    }
                    "digest" => {
                        entry.digest = unquote(value).ok_or_else(|| {
                            format!("baseline line {lineno}: digest must be quoted")
                        })?;
                    }
                    "reason" => {
                        let reason = unquote(value).ok_or_else(|| {
                            format!("baseline line {lineno}: reason must be quoted")
                        })?;
                        if reason.trim().is_empty() {
                            return Err(format!(
                                "baseline line {lineno}: reason must be non-empty — every \
                                 grandfathered unsafe inventory needs a justification"
                            ));
                        }
                        entry.reason = reason;
                    }
                    other => {
                        return Err(format!("baseline line {lineno}: unknown key `{other}`"));
                    }
                }
            }
        }
    }
    for (name, e) in out.crates.iter() {
        if e.reason.trim().is_empty() {
            return Err(format!("baseline: [crate.{name}] is missing a reason"));
        }
        if e.digest.is_empty() {
            return Err(format!("baseline: [crate.{name}] is missing a digest"));
        }
    }
    Ok(out)
}

fn unquote(v: &str) -> Option<String> {
    v.strip_prefix('"').and_then(|s| s.strip_suffix('"')).map(|s| s.to_string())
}

/// Serialize a baseline back to the TOML subset `parse` accepts.
pub fn serialize(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# Grandfathered unsafe inventory, checked by `cargo xtask analyze`.\n\
         # The ratchet only turns one way: new/moved unsafe fails, and shrinking\n\
         # a crate's count requires updating (never loosening) this file via\n\
         # `cargo xtask analyze --update-baseline`.\n",
    );
    for (name, e) in baseline.crates.iter() {
        let _ = write!(
            out,
            "\n[crate.{name}]\ncount = {}\ndigest = \"{}\"\nreason = \"{}\"\n",
            e.count, e.digest, e.reason
        );
    }
    if !baseline.tests.is_empty() {
        out.push_str(
            "\n# Per-crate #[test] floors: shrinking below a recorded count fails\n\
             # `cargo xtask analyze` (tests were dropped); growth must raise the\n\
             # floor via --update-baseline.\n",
        );
        for (name, count) in baseline.tests.iter() {
            let _ = write!(out, "\n[tests.{name}]\ncount = {count}\n");
        }
    }
    if !baseline.dataflow.is_empty() {
        out.push_str(
            "\n# Per-crate marker-suppressed dataflow findings (index_bounds,\n\
             # guard_across_await_or_call, result_discard). Exact-match: drift in\n\
             # either direction fails until re-recorded via --update-baseline.\n",
        );
        for (name, count) in baseline.dataflow.iter() {
            let _ = write!(out, "\n[dataflow.{name}]\ncount = {count}\n");
        }
    }
    if !baseline.stale.is_empty() {
        out.push_str(
            "\n# Per-crate stale suppression markers (lint: allow / analyze: allow\n\
             # comments that no longer suppress anything). Target is zero; clean up\n\
             # with `cargo xtask analyze --remove-stale`.\n",
        );
        for (name, count) in baseline.stale.iter() {
            let _ = write!(out, "\n[stale.{name}]\ncount = {count}\n");
        }
    }
    if !baseline.summary.is_empty() {
        out.push_str(
            "\n# Per-crate marker-suppressed summary-rule findings (par_race,\n\
             # atomic_protocol). Exact-match: drift in either direction fails\n\
             # until re-recorded via --update-baseline.\n",
        );
        for (name, count) in baseline.summary.iter() {
            let _ = write!(out, "\n[summary.{name}]\ncount = {count}\n");
        }
    }
    out
}

/// Load the baseline file if present (absent file = empty baseline).
pub fn load(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory(entries: &[(&str, &str, usize)]) -> Inventory {
        let mut inv = Inventory::default();
        for (k, p, c) in entries {
            inv.record(k, p, *c);
        }
        inv
    }

    #[test]
    fn digest_is_stable_and_order_insensitive() {
        let a = inventory(&[("engine", "src/a.rs", 2), ("engine", "src/b.rs", 1)]);
        let b = inventory(&[("engine", "src/b.rs", 1), ("engine", "src/a.rs", 2)]);
        assert_eq!(a.digest("engine"), b.digest("engine"));
        let c = inventory(&[("engine", "src/a.rs", 3)]);
        assert_ne!(a.digest("engine"), c.digest("engine"));
    }

    fn no_tests() -> BTreeMap<String, usize> {
        BTreeMap::new()
    }

    #[test]
    fn roundtrip_parse_serialize() {
        let inv = inventory(&[("columnar", "src/mmap.rs", 4)]);
        let counts: BTreeMap<String, usize> =
            [("columnar".to_string(), 7), ("serve".to_string(), 12)].into_iter().collect();
        let mut base = from_inventory(
            &inv,
            &counts,
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &Baseline::default(),
        );
        base.crates.get_mut("columnar").unwrap().reason = "mmap I/O".into();
        let text = serialize(&base);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, base);
    }

    #[test]
    fn new_unsafe_fails() {
        let base = Baseline::default();
        let inv = inventory(&[("engine", "src/exec.rs", 1)]);
        let errs = check(&base, &inv);
        assert_eq!(
            errs,
            vec![RatchetError::Grew { krate: "engine".into(), baseline: 0, actual: 1 }]
        );
    }

    #[test]
    fn stale_entry_fails() {
        let inv = inventory(&[("columnar", "src/mmap.rs", 2)]);
        let mut base = from_inventory(
            &inv,
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &Baseline::default(),
        );
        base.crates.get_mut("columnar").unwrap().count = 5;
        let errs = check(&base, &inv);
        assert_eq!(
            errs,
            vec![RatchetError::Stale { krate: "columnar".into(), baseline: 5, actual: 2 }]
        );
    }

    #[test]
    fn moved_unsafe_fails() {
        let old = inventory(&[("columnar", "src/mmap.rs", 2)]);
        let base = from_inventory(
            &old,
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &Baseline::default(),
        );
        let new = inventory(&[("columnar", "src/table.rs", 2)]);
        let errs = check(&base, &new);
        assert_eq!(errs, vec![RatchetError::Moved { krate: "columnar".into() }]);
    }

    #[test]
    fn matching_inventory_passes() {
        let inv = inventory(&[("columnar", "src/mmap.rs", 2)]);
        let base = from_inventory(
            &inv,
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &Baseline::default(),
        );
        assert!(check(&base, &inv).is_empty());
    }

    #[test]
    fn parse_rejects_missing_reason() {
        let text = "[crate.engine]\ncount = 1\ndigest = \"abc\"\n";
        assert!(parse(text).is_err());
        let empty = "[crate.engine]\ncount = 1\ndigest = \"abc\"\nreason = \" \"\n";
        assert!(parse(empty).is_err());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(parse("[crate.engine]\nbogus = 1\n").is_err());
        assert!(parse("count = 1\n").is_err());
        assert!(parse("[notcrate.engine]\n").is_err());
    }

    #[test]
    fn update_carries_reasons_forward() {
        let inv = inventory(&[("columnar", "src/mmap.rs", 2)]);
        let mut prev = from_inventory(
            &inv,
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &Baseline::default(),
        );
        prev.crates.get_mut("columnar").unwrap().reason = "mmap I/O".into();
        let grown = inventory(&[("columnar", "src/mmap.rs", 2), ("columnar", "src/table.rs", 1)]);
        let next =
            from_inventory(&grown, &no_tests(), &no_tests(), &no_tests(), &no_tests(), &prev);
        assert_eq!(next.crates["columnar"].count, 3);
        assert_eq!(next.crates["columnar"].reason, "mmap I/O");
    }

    #[test]
    fn tests_tables_roundtrip() {
        let counts: BTreeMap<String, usize> =
            [("engine".to_string(), 31), ("faults".to_string(), 10)].into_iter().collect();
        let base = from_inventory(
            &Inventory::default(),
            &counts,
            &no_tests(),
            &no_tests(),
            &no_tests(),
            &Baseline::default(),
        );
        let text = serialize(&base);
        assert!(text.contains("[tests.engine]\ncount = 31"), "{text}");
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, base);
    }

    #[test]
    fn tests_tables_reject_foreign_keys() {
        assert!(parse("[tests.engine]\ndigest = \"abc\"\n").is_err());
        assert!(parse("[tests.engine]\nreason = \"x\"\n").is_err());
        assert!(parse("[tests.]\ncount = 1\n").is_err());
    }

    #[test]
    fn test_ratchet_flags_shrink_and_growth() {
        let mut base = Baseline::default();
        base.tests.insert("serve".to_string(), 10);
        base.tests.insert("engine".to_string(), 5);

        let exact: BTreeMap<String, usize> =
            [("serve".to_string(), 10), ("engine".to_string(), 5)].into_iter().collect();
        assert!(check_tests(&base, &exact).is_empty());

        let shrunk: BTreeMap<String, usize> =
            [("serve".to_string(), 8), ("engine".to_string(), 5)].into_iter().collect();
        assert_eq!(
            check_tests(&base, &shrunk),
            vec![RatchetError::TestsShrank { krate: "serve".into(), baseline: 10, actual: 8 }]
        );

        let grown: BTreeMap<String, usize> =
            [("serve".to_string(), 10), ("engine".to_string(), 5), ("faults".to_string(), 3)]
                .into_iter()
                .collect();
        assert_eq!(
            check_tests(&base, &grown),
            vec![RatchetError::TestsGrew { krate: "faults".into(), baseline: 0, actual: 3 }]
        );
    }

    #[test]
    fn dataflow_and_stale_tables_roundtrip() {
        let df: BTreeMap<String, usize> =
            [("engine".to_string(), 4), ("columnar".to_string(), 2)].into_iter().collect();
        let st: BTreeMap<String, usize> = [("serve".to_string(), 1)].into_iter().collect();
        let sm: BTreeMap<String, usize> = [("engine".to_string(), 3)].into_iter().collect();
        let base =
            from_inventory(&Inventory::default(), &no_tests(), &df, &st, &sm, &Baseline::default());
        let text = serialize(&base);
        assert!(text.contains("[dataflow.engine]\ncount = 4"), "{text}");
        assert!(text.contains("[stale.serve]\ncount = 1"), "{text}");
        assert!(text.contains("[summary.engine]\ncount = 3"), "{text}");
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, base);
    }

    #[test]
    fn summary_ratchet_flags_drift_both_ways() {
        let mut base = Baseline::default();
        base.summary.insert("serve".to_string(), 2);

        let exact: BTreeMap<String, usize> = [("serve".to_string(), 2)].into_iter().collect();
        assert!(check_summary(&base, &exact).is_empty());

        let grew: BTreeMap<String, usize> = [("serve".to_string(), 3)].into_iter().collect();
        assert_eq!(
            check_summary(&base, &grew),
            vec![RatchetError::SummaryDrift { krate: "serve".into(), baseline: 2, actual: 3 }]
        );

        assert_eq!(
            check_summary(&base, &BTreeMap::new()),
            vec![RatchetError::SummaryDrift { krate: "serve".into(), baseline: 2, actual: 0 }]
        );
    }

    #[test]
    fn summary_tables_reject_foreign_keys() {
        assert!(parse("[summary.engine]\ndigest = \"abc\"\n").is_err());
        assert!(parse("[summary.]\ncount = 1\n").is_err());
    }

    #[test]
    fn dataflow_ratchet_flags_drift_both_ways() {
        let mut base = Baseline::default();
        base.dataflow.insert("engine".to_string(), 4);

        let exact: BTreeMap<String, usize> = [("engine".to_string(), 4)].into_iter().collect();
        assert!(check_dataflow(&base, &exact).is_empty());

        let grew: BTreeMap<String, usize> = [("engine".to_string(), 6)].into_iter().collect();
        assert_eq!(
            check_dataflow(&base, &grew),
            vec![RatchetError::DataflowDrift { krate: "engine".into(), baseline: 4, actual: 6 }]
        );

        let shrank: BTreeMap<String, usize> = [("engine".to_string(), 1)].into_iter().collect();
        assert_eq!(
            check_dataflow(&base, &shrank),
            vec![RatchetError::DataflowDrift { krate: "engine".into(), baseline: 4, actual: 1 }]
        );
    }

    #[test]
    fn stale_ratchet_flags_new_and_removed_markers() {
        let base = Baseline::default();
        let found: BTreeMap<String, usize> = [("engine".to_string(), 2)].into_iter().collect();
        assert_eq!(
            check_stale(&base, &found),
            vec![RatchetError::StaleDrift { krate: "engine".into(), baseline: 0, actual: 2 }]
        );

        let mut recorded = Baseline::default();
        recorded.stale.insert("engine".to_string(), 2);
        assert_eq!(
            check_stale(&recorded, &BTreeMap::new()),
            vec![RatchetError::StaleDrift { krate: "engine".into(), baseline: 2, actual: 0 }]
        );
    }

    #[test]
    fn dataflow_and_stale_tables_reject_foreign_keys() {
        assert!(parse("[dataflow.engine]\ndigest = \"abc\"\n").is_err());
        assert!(parse("[stale.engine]\nreason = \"x\"\n").is_err());
        assert!(parse("[dataflow.]\ncount = 1\n").is_err());
        assert!(parse("[stale.]\ncount = 1\n").is_err());
    }
}
