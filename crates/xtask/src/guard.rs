//! `guard_across_await_or_call`: lock guards held across calls into
//! other workspace crates.
//!
//! A `Mutex`/`RwLock` guard bound with `let g = x.lock()…` and still
//! live when control flows into another crate (per the call graph)
//! serializes that whole downstream call — usually an accident in hot
//! paths, and a deadlock risk if the callee takes the same lock. This
//! is a *may*-analysis over the same [`crate::cfg::Cfg`] as the bounds
//! prover: the state is the set of possibly-held guards (union join),
//! acquired by `let`-bindings whose RHS ends in `.lock()` / `.read()` /
//! `.write()` on a known lock name, and released by `drop(g)` or
//! rebinding. Scope-end drops are not modeled (token-level CFG), so a
//! guard deliberately confined to an inner block can still be flagged —
//! that is the conservative direction for a may-analysis, and the
//! marker escape hatch covers intentional cases.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::cfg::{visible, Cfg, EdgeKind, NodeKind};
use crate::dataflow::{solve, AbstractState, Analysis};
use crate::lex::{TokKind, Token};

/// One possibly-held guard: binding name, lock name, acquisition line.
pub type Guard = (String, String, usize);

/// The may-held set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Held(pub BTreeSet<Guard>);

impl AbstractState for Held {
    fn join(&self, other: &Self) -> Self {
        Held(self.0.union(&other.0).cloned().collect())
    }
}

/// A call into another workspace crate, precomputed by the analyzer
/// from the call graph: (line, callee name, callee crate).
pub type CrossCall = (usize, String, String);

/// One confirmed finding.
#[derive(Debug, Clone)]
pub struct GuardFinding {
    /// Line of the cross-crate call.
    pub line: usize,
    /// Guard binding name.
    pub binding: String,
    /// Lock static/field the guard came from.
    pub lock: String,
    /// Line where the guard was acquired.
    pub acquired: usize,
    /// Callee `crate::fn` description.
    pub callee: String,
}

const ACQUIRE: &[&str] = &["lock", "read", "write"];

struct GuardFlow<'a> {
    toks: &'a [Token],
    children: &'a [Range<usize>],
    lock_names: &'a [String],
}

impl GuardFlow<'_> {
    /// If `vis` is `let [mut] g = …x.lock()…;` on a known lock, return
    /// the guard; a plain `let g = …` returns `(g, None)` (rebind kill).
    fn let_binding(&self, vis: &[usize]) -> Option<(String, Option<(String, usize)>)> {
        let toks = self.toks;
        if vis.is_empty() || !toks[vis[0]].is("let") {
            return None;
        }
        let mut k = 1;
        if vis.get(k).is_some_and(|&p| toks[p].is("mut")) {
            k += 1;
        }
        let name_p = *vis.get(k)?;
        if toks[name_p].kind != TokKind::Ident {
            return None;
        }
        let binding = toks[name_p].text.clone();
        // Find `.lock()` / `.read()` / `.write()` whose receiver's last
        // path segment is a known lock name.
        for j in 0..vis.len().saturating_sub(3) {
            if toks[vis[j]].text == "."
                && ACQUIRE.contains(&toks[vis[j + 1]].text.as_str())
                && toks[vis[j + 2]].kind == TokKind::LParen
                && j > 0
                && toks[vis[j - 1]].kind == TokKind::Ident
            {
                let recv = toks[vis[j - 1]].text.clone();
                if self.lock_names.contains(&recv) {
                    let line = toks[name_p].line;
                    return Some((binding, Some((recv, line))));
                }
            }
        }
        Some((binding, None))
    }
}

impl Analysis for GuardFlow<'_> {
    type State = Held;

    fn entry_state(&self) -> Held {
        Held::default()
    }

    fn transfer(&self, _node: usize, kind: &NodeKind, _edge: EdgeKind, state: &Held) -> Held {
        let mut out = state.clone();
        let toks = self.toks;
        let r = match kind {
            NodeKind::Stmt(r) => r,
            NodeKind::ForHead { pat, .. } => {
                for p in pat.clone() {
                    if toks[p].kind == TokKind::Ident {
                        let name = &toks[p].text;
                        out.0.retain(|(b, _, _)| b != name);
                    }
                }
                return out;
            }
            _ => return out,
        };
        let vis = visible(toks, r, self.children);
        // `drop(g)` releases.
        for w in vis.windows(3) {
            if toks[w[0]].is("drop")
                && toks[w[1]].kind == TokKind::LParen
                && toks[w[2]].kind == TokKind::Ident
            {
                let name = toks[w[2]].text.clone();
                out.0.retain(|(b, _, _)| *b != name);
            }
        }
        if let Some((binding, acq)) = self.let_binding(&vis) {
            out.0.retain(|(b, _, _)| *b != binding);
            if let Some((lock, line)) = acq {
                out.0.insert((binding, lock, line));
            }
        }
        out
    }
}

/// Find every cross-crate call made while a guard may be held.
pub fn check_function(
    toks: &[Token],
    body: Range<usize>,
    children: &[Range<usize>],
    lock_names: &[String],
    cross_calls: &[CrossCall],
) -> Vec<GuardFinding> {
    if cross_calls.is_empty() || lock_names.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::build(toks, body.clone(), children);
    let flow = GuardFlow { toks, children, lock_names };
    let states = solve(&cfg, &flow);
    let mut out: Vec<GuardFinding> = Vec::new();
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for (n, kind) in cfg.nodes.iter().enumerate() {
        let Some(state) = &states[n] else { continue };
        if state.0.is_empty() {
            continue;
        }
        let positions: Vec<usize> = match kind {
            NodeKind::Stmt(r) | NodeKind::Branch(r) => visible(toks, r, children),
            NodeKind::ForHead { iter, .. } => visible(toks, iter, children),
            _ => continue,
        };
        let lines: BTreeSet<usize> = positions.iter().map(|&p| toks[p].line).collect();
        for (line, callee, krate) in cross_calls {
            if !lines.contains(line) {
                continue;
            }
            // The callee name must actually appear among this node's
            // tokens (several statements can share a line).
            let called_here =
                positions.iter().any(|&p| toks[p].line == *line && toks[p].is(callee));
            if !called_here {
                continue;
            }
            for (binding, lock, acquired) in &state.0 {
                if *acquired > *line {
                    continue; // acquired later on the same line range
                }
                if seen.insert((*line, binding.clone())) {
                    out.push(GuardFinding {
                        line: *line,
                        binding: binding.clone(),
                        lock: lock.clone(),
                        acquired: *acquired,
                        callee: format!("{krate}::{callee}"),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (a.line, &a.binding).cmp(&(b.line, &b.binding)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;
    use crate::parse::parse_file;
    use crate::source::SourceFile;

    fn findings(src: &str, locks: &[&str], calls: &[(usize, &str, &str)]) -> Vec<GuardFinding> {
        let f = SourceFile::parse(src);
        let toks = tokenize(&f);
        let p = parse_file(&f, &toks);
        let locks: Vec<String> = locks.iter().map(|s| s.to_string()).collect();
        let calls: Vec<CrossCall> =
            calls.iter().map(|(l, c, k)| (*l, c.to_string(), k.to_string())).collect();
        check_function(&toks, p.functions[0].body.clone(), &[], &locks, &calls)
    }

    #[test]
    fn guard_held_across_cross_crate_call_is_flagged() {
        let src = "fn f() {\n    let g = STATE.lock().unwrap();\n    engine_run(&g);\n}\n";
        let got = findings(src, &["STATE"], &[(3, "engine_run", "engine")]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].acquired, 2);
        assert_eq!(got[0].line, 3);
        assert_eq!(got[0].lock, "STATE");
        assert_eq!(got[0].callee, "engine::engine_run");
    }

    #[test]
    fn dropped_guard_is_not_flagged() {
        let src =
            "fn f() {\n    let g = STATE.lock().unwrap();\n    drop(g);\n    engine_run();\n}\n";
        let got = findings(src, &["STATE"], &[(4, "engine_run", "engine")]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn call_before_acquisition_is_not_flagged() {
        let src =
            "fn f() {\n    engine_run();\n    let g = STATE.lock().unwrap();\n    use_it(&g);\n}\n";
        let got = findings(src, &["STATE"], &[(2, "engine_run", "engine")]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn rebinding_releases_the_old_guard() {
        let src = "fn f() {\n    let g = STATE.lock().unwrap();\n    let g = other();\n    engine_run();\n}\n";
        let got = findings(src, &["STATE"], &[(4, "engine_run", "engine")]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn may_join_keeps_the_branch_that_held() {
        let src = "fn f(c: bool) {\n    if c {\n        let g = STATE.lock().unwrap();\n        stash(g);\n    }\n    engine_run();\n}\n";
        // `stash(g)` moves the guard but we do not model moves: the
        // union join keeps it — conservative for a may-analysis.
        let got = findings(src, &["STATE"], &[(6, "engine_run", "engine")]);
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn unknown_receiver_is_not_a_guard() {
        let src = "fn f() {\n    let g = channel.lock().unwrap();\n    engine_run();\n}\n";
        let got = findings(src, &["STATE"], &[(3, "engine_run", "engine")]);
        assert!(got.is_empty(), "{got:?}");
    }
}
