//! A deliberately small model of a Rust source file for the lint pass.
//!
//! The custom lints are *source-level*: they do not need types or name
//! resolution, only a reliable separation of code from comments and
//! string literals so that a `panic!` inside a doc example or an
//! `unsafe` in a string does not trip a rule. This module provides
//! that separation plus the two bits of shared context every rule
//! needs: which lines are test-only code, and which lines carry a
//! `// lint: allow(rule): reason` suppression marker.

use std::cell::RefCell;
use std::collections::BTreeSet;

/// One physical line, split into its code and comment parts.
///
/// String and char literal *contents* in `code` are blanked with
/// spaces (the quotes remain), so rules can pattern-match code text
/// without being fooled by literals.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated text of every comment on the line.
    pub comment: String,
}

/// A parsed file: lines plus derived per-line context.
#[derive(Debug)]
pub struct SourceFile {
    /// Split lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// True for lines inside `#[cfg(test)]` modules or `#[test]` fns.
    pub in_test: Vec<bool>,
    /// Markers consulted *and matched* by [`SourceFile::allowed`],
    /// keyed `(marker line, rule)`. The stale-marker audit diffs this
    /// set against [`SourceFile::markers`] after every rule has run.
    used: RefCell<BTreeSet<(usize, String)>>,
}

/// Lexer state carried across lines.
enum Mode {
    Code,
    /// Inside `/* ... */`; Rust block comments nest.
    Block(u32),
    /// Inside a `"..."` string literal.
    Str,
    /// Inside a raw string; the payload is the number of `#`s.
    RawStr(u32),
}

impl SourceFile {
    /// Lex `src` into lines and compute test regions.
    pub fn parse(src: &str) -> SourceFile {
        let lines = split_lines(src);
        let in_test = test_regions(&lines);
        SourceFile { lines, in_test, used: RefCell::new(BTreeSet::new()) }
    }

    /// Does `line_no` (1-based) carry or immediately follow a
    /// `// lint: allow(rule): reason` or `// analyze: allow(rule):
    /// reason` marker for `rule`?
    ///
    /// A marker on its own line suppresses the next non-marker line
    /// below it (so several markers for different rules stack above one
    /// line); a trailing marker suppresses its own line. The reason
    /// text is mandatory — a bare `allow(rule)` does not suppress, so
    /// every exemption is forced to say why. The two prefixes are
    /// interchangeable; by convention `lint:` markers answer line
    /// lints and `analyze:` markers answer call-graph findings.
    pub fn allowed(&self, line_no: usize, rule: &str) -> bool {
        let idx = line_no - 1;
        let here = self.lines.get(idx).map(|l| l.comment.as_str()).unwrap_or("");
        if has_marker(here, rule) {
            self.used.borrow_mut().insert((line_no, rule.to_string()));
            return true;
        }
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let l = &self.lines[j];
            if has_marker(&l.comment, rule) {
                self.used.borrow_mut().insert((j + 1, rule.to_string()));
                return true;
            }
            // Keep climbing only through stacked marker-only lines.
            if !(l.code.trim().is_empty() && is_marker_line(&l.comment)) {
                return false;
            }
        }
        false
    }

    /// Every `(line, rule)` marker that matched an [`SourceFile::allowed`]
    /// query so far. A marker absent from this set after all rules have
    /// run suppresses nothing — it is stale.
    pub fn used_markers(&self) -> BTreeSet<(usize, String)> {
        self.used.borrow().clone()
    }

    /// Every well-formed `(line, rule)` suppression marker in the file
    /// (prefix + rule + mandatory reason). Reasonless markers never
    /// suppress anything and are not enumerated.
    pub fn markers(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (idx, line) in self.lines.iter().enumerate() {
            for rule in marker_rules(&line.comment) {
                out.push((idx + 1, rule));
            }
        }
        out
    }
}

/// Does the comment carry any suppression marker (for any rule)?
fn is_marker_line(comment: &str) -> bool {
    ["lint: allow(", "analyze: allow("].iter().any(|p| comment.contains(p))
}

/// Check one comment string for a well-formed suppression marker.
fn has_marker(comment: &str, rule: &str) -> bool {
    ["lint: allow(", "analyze: allow("].iter().any(|prefix| has_marker_with(comment, prefix, rule))
}

/// Check for one specific marker prefix.
fn has_marker_with(comment: &str, prefix: &str, rule: &str) -> bool {
    let Some(pos) = comment.find(prefix) else {
        return false;
    };
    let rest = &comment[pos + prefix.len()..];
    let Some((name, after)) = rest.split_once(')') else {
        return false;
    };
    if name.trim() != rule {
        return false;
    }
    // Require `: reason` with non-empty reason.
    matches!(after.trim_start().strip_prefix(':'), Some(r) if !r.trim().is_empty())
}

/// Extract the rule name of a well-formed *leading* marker in one
/// comment: only comment punctuation (`/`, `!`, `*`) and whitespace
/// may precede the prefix. Doc prose that merely mentions the marker
/// syntax (`` a `// lint: allow(rule): reason` marker ``) is thereby
/// never enumerated, so the stale audit cannot flag documentation.
fn marker_rules(comment: &str) -> Vec<String> {
    let lead = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
    let mut out = Vec::new();
    for prefix in ["lint: allow(", "analyze: allow("] {
        let Some(rest) = lead.strip_prefix(prefix) else { continue };
        if let Some((name, after)) = rest.split_once(')') {
            if matches!(after.trim_start().strip_prefix(':'), Some(r) if !r.trim().is_empty()) {
                out.push(name.trim().to_string());
            }
        }
    }
    out
}

/// Split source into per-line code/comment parts.
fn split_lines(src: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in src.lines() {
        let mut line = Line::default();
        let b: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < b.len() {
            match mode {
                Mode::Code => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        line.comment.push_str(&raw[char_offset(&b, i)..]);
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        // Raw strings look back for r/br prefixes.
                        let hashes = raw_prefix(&b, i);
                        line.code.push('"');
                        mode = match hashes {
                            Some(h) => Mode::RawStr(h),
                            None => Mode::Str,
                        };
                        i += 1;
                    } else if c == 'r' || c == 'b' {
                        // Possible start of r#"..."# / br"..." — consume
                        // the prefix chars; the quote branch above fires
                        // when the `"` is reached.
                        line.code.push(c);
                        i += 1;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal closes with
                        // a `'` within a few chars; a lifetime does not.
                        if let Some(end) = char_literal_end(&b, i) {
                            line.code.push('\'');
                            for _ in i + 1..end {
                                line.code.push(' ');
                            }
                            line.code.push('\'');
                            i = end + 1;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                Mode::Block(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(b[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if b[i] == '\\' {
                        line.code.push(' ');
                        if i + 1 < b.len() {
                            line.code.push(' ');
                        }
                        i += 2;
                    } else if b[i] == '"' {
                        line.code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if b[i] == '"' && closes_raw(&b, i, hashes) {
                        // Emit the closing hashes too, so columns after
                        // the literal stay aligned with the source.
                        line.code.push('"');
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Byte offset of char index `i` in the original line.
fn char_offset(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

/// If the `"` at `i` is preceded by `r`/`br` (+ hashes), return the
/// hash count of the raw string it opens.
fn raw_prefix(b: &[char], quote: usize) -> Option<u32> {
    let mut j = quote;
    let mut hashes = 0u32;
    while j > 0 && b[j - 1] == '#' {
        hashes += 1;
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let c = b[j - 1];
    let prev = if j >= 2 { Some(b[j - 2]) } else { None };
    if c == 'r' || (c == 'b' && hashes == 0) || (c == 'b' && prev == Some('r')) {
        // `r"`, `r#"`, `b"`, `br"` — all open a literal we must skip;
        // plain `b"..."` has no hashes but behaves like Str with
        // escapes; treating it as raw only misses `\"`, acceptable for
        // a lint lexer operating on this codebase (no b"\"" present).
        Some(hashes)
    } else {
        None
    }
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// Find the closing quote of a char literal starting at `open`, or
/// `None` if this is a lifetime.
fn char_literal_end(b: &[char], open: usize) -> Option<usize> {
    match b.get(open + 1) {
        Some('\\') => {
            // Escaped char: scan forward (covers \n, \u{...}). Start
            // past the escaped character itself so `'\''` finds the
            // real closing quote, not the escaped one.
            (open + 3..b.len().min(open + 12)).find(|&j| b[j] == '\'')
        }
        Some(_) => (b.get(open + 2) == Some(&'\'')).then_some(open + 2),
        None => None,
    }
}

/// Mark lines belonging to `#[cfg(test)]` items or `#[test]` fns.
///
/// Strategy: when a test attribute appears, the next item's brace
/// block (everything until its `{` closes) is a test region, the
/// attribute line included.
fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i32 = 0;
    // When inside a test item: the depth *outside* its block.
    let mut test_exit_depth: Option<i32> = None;
    // A test attribute was seen; waiting for the item's opening brace.
    let mut pending_attr = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if test_exit_depth.is_none() && (code.contains("#[cfg(test)]") || code.contains("#[test]"))
        {
            pending_attr = true;
        }
        if pending_attr || test_exit_depth.is_some() {
            in_test[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        test_exit_depth = Some(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_exit_depth == Some(depth) {
                        test_exit_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_out() {
        let f = SourceFile::parse("let x = 1; // SAFETY: fine\n/* block */ let y;\n");
        assert_eq!(f.lines[0].code.trim(), "let x = 1;");
        assert!(f.lines[0].comment.contains("SAFETY"));
        assert_eq!(f.lines[1].code.trim(), "let y;");
        assert_eq!(f.lines[1].comment.trim(), "block");
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = SourceFile::parse("let s = \"unsafe panic!()\";\n");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains('"'));
    }

    #[test]
    fn raw_strings_and_chars() {
        let f =
            SourceFile::parse("let s = r#\"a \" b\"#; let c = '\\n'; let l: &'static str = s;\n");
        let code = &f.lines[0].code;
        assert!(code.contains("let c ="));
        assert!(code.contains("'static"));
    }

    #[test]
    fn multiline_block_comment() {
        let f = SourceFile::parse("a /* x\ny */ b\n");
        assert_eq!(f.lines[0].code.trim(), "a");
        assert_eq!(f.lines[1].code.trim(), "b");
        assert!(f.lines[0].comment.contains('x'));
        assert!(f.lines[1].comment.contains('y'));
    }

    #[test]
    fn test_region_detection() {
        let src = "\
fn real() {
    body();
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { body(); }
}
fn real2() {}
";
        let f = SourceFile::parse(src);
        assert!(!f.in_test[0]);
        assert!(!f.in_test[1]);
        assert!(f.in_test[3]);
        assert!(f.in_test[6]);
        assert!(!f.in_test[8]);
    }

    #[test]
    fn marker_requires_reason() {
        let f = SourceFile::parse(
            "x(); // lint: allow(no_panic): startup only\ny();\nz(); // lint: allow(no_panic)\n",
        );
        assert!(f.allowed(1, "no_panic"));
        assert!(f.allowed(2, "no_panic"), "marker above suppresses next line");
        assert!(!f.allowed(3, "no_panic"), "missing reason must not suppress");
        assert!(!f.allowed(1, "id_cast"), "rule name must match");
    }

    #[test]
    fn stacked_markers_all_reach_the_code_line() {
        let f = SourceFile::parse(
            "// analyze: allow(hot_alloc): per-source median copy\n\
             // analyze: allow(panic_path): lo <= hi by prefix sum\n\
             let b = g[lo..hi].to_vec();\n",
        );
        assert!(f.allowed(3, "hot_alloc"), "marker above a marker still applies");
        assert!(f.allowed(3, "panic_path"));
        assert!(!f.allowed(3, "seqcst"), "unrelated rule not suppressed");
    }

    #[test]
    fn markers_do_not_leak_past_code_lines() {
        let f = SourceFile::parse(
            "// analyze: allow(hot_alloc): scratch\nlet a = vec![];\nlet b = vec![];\n",
        );
        assert!(f.allowed(2, "hot_alloc"));
        assert!(!f.allowed(3, "hot_alloc"), "marker stops at the first code line");
    }

    #[test]
    fn escaped_quote_char_literal_does_not_desync() {
        // `'\''` once terminated at the escaped quote, leaving the real
        // closing quote to open a phantom literal that swallowed code.
        let f = SourceFile::parse("let q = '\\''; let next = 1;\n");
        assert!(f.lines[0].code.contains("let next = 1;"), "{:?}", f.lines[0].code);
    }

    #[test]
    fn raw_string_close_keeps_columns_aligned() {
        let src = "let s = r##\"x\"##; let y = 2;\n";
        let f = SourceFile::parse(src);
        let code = &f.lines[0].code;
        assert!(code.contains("let y = 2;"), "{code:?}");
        // The blanked line has the same char length as the source line,
        // so token columns derived from it stay truthful.
        assert_eq!(code.chars().count(), src.trim_end().chars().count(), "{code:?}");
    }

    #[test]
    fn nested_block_comments_unwind_fully() {
        let f = SourceFile::parse("a /* outer /* inner */ still */ b\n");
        assert_eq!(f.lines[0].code.trim(), "a  b");
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn allowed_records_marker_usage() {
        let f = SourceFile::parse(
            "// analyze: allow(hot_alloc): scratch\nlet a = vec![];\nx(); // lint: allow(no_panic): boot\n",
        );
        assert!(f.allowed(2, "hot_alloc"));
        assert!(f.allowed(3, "no_panic"));
        assert!(!f.allowed(3, "id_cast"));
        let used = f.used_markers();
        assert!(used.contains(&(1, "hot_alloc".to_string())), "{used:?}");
        assert!(used.contains(&(3, "no_panic".to_string())), "{used:?}");
        assert_eq!(used.len(), 2, "{used:?}");
    }

    #[test]
    fn markers_enumerates_well_formed_only() {
        let f = SourceFile::parse(
            "// analyze: allow(panic_path): contract\n\
             code(); // lint: allow(par_index)\n\
             more(); // lint: allow(id_cast): dense domain\n",
        );
        let m = f.markers();
        assert_eq!(
            m,
            vec![(1, "panic_path".to_string()), (3, "id_cast".to_string())],
            "reasonless marker on line 2 never suppresses, so it is not enumerated"
        );
    }

    #[test]
    fn doc_prose_mentioning_marker_syntax_is_not_enumerated() {
        let f = SourceFile::parse(
            "//! Suppress with a `// lint: allow(rule): reason` marker.\n\
             /// or `// analyze: allow(panic_path): why` on the line.\n\
             code(); // lint: allow(no_panic): boot only\n",
        );
        assert_eq!(f.markers(), vec![(3, "no_panic".to_string())], "{:?}", f.markers());
    }

    #[test]
    fn analyze_marker_prefix_is_accepted() {
        let f = SourceFile::parse(
            "x(); // analyze: allow(hot_alloc): per-partition scratch\n\ny(); // analyze: allow(hot_alloc)\n",
        );
        assert!(f.allowed(1, "hot_alloc"));
        assert!(!f.allowed(3, "hot_alloc"), "analyze marker also requires a reason");
    }
}
