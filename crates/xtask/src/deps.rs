//! Workspace crate-dependency map used to prune impossible call edges.
//!
//! Name-based call resolution (see `callgraph`) over-approximates: a
//! `.load()` on an atomic would otherwise resolve to any workspace
//! method named `load`, including ones in crates the caller does not
//! even depend on. Cargo already knows which crates a caller can reach,
//! so the graph only keeps edges that follow the (transitive)
//! dependency closure declared in each member's `Cargo.toml`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Transitive intra-workspace dependency closure, keyed by crate
/// directory name (`crates/engine` → `engine`).
#[derive(Debug, Default)]
pub struct CrateDeps {
    reach: BTreeMap<String, BTreeSet<String>>,
}

impl CrateDeps {
    /// Parse every `crates/*/Cargo.toml` under `root`.
    pub fn load(root: &Path) -> std::io::Result<CrateDeps> {
        let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let crates = root.join("crates");
        let mut manifests: Vec<(String, String)> = Vec::new();
        if crates.is_dir() {
            for entry in std::fs::read_dir(&crates)? {
                let dir = entry?.path();
                let manifest = dir.join("Cargo.toml");
                if !manifest.is_file() {
                    continue;
                }
                let Some(dir_name) = dir.file_name().map(|n| n.to_string_lossy().into_owned())
                else {
                    continue;
                };
                manifests.push((dir_name, std::fs::read_to_string(&manifest)?));
            }
        }
        // First pass: package name → directory name.
        for (dir_name, text) in &manifests {
            if let Some(pkg) = package_name(text) {
                pkg_to_dir.insert(pkg, dir_name.clone());
            }
        }
        // Second pass: dependency keys, resolved to workspace dirs.
        for (dir_name, text) in &manifests {
            let deps = direct.entry(dir_name.clone()).or_default();
            for pkg in dependency_keys(text) {
                if let Some(dep_dir) = pkg_to_dir.get(&pkg) {
                    deps.insert(dep_dir.clone());
                }
            }
        }
        // Transitive closure (the workspace is small; fixpoint is fine).
        let mut reach = direct.clone();
        loop {
            let mut grew = false;
            for name in direct.keys() {
                let current: Vec<String> =
                    reach.get(name).map(|s| s.iter().cloned().collect()).unwrap_or_default();
                for dep in current {
                    let indirect: Vec<String> =
                        reach.get(&dep).map(|s| s.iter().cloned().collect()).unwrap_or_default();
                    let set = reach.entry(name.clone()).or_default();
                    for extra in indirect {
                        grew |= set.insert(extra);
                    }
                }
            }
            if !grew {
                break;
            }
        }
        Ok(CrateDeps { reach })
    }

    /// Whether code in crate `from` can call into crate `to`.
    ///
    /// Unknown callers (the top-level `tests/` and `examples/` trees,
    /// which compile under the facade crate) may reach everything except
    /// the `xtask` tool crate, which nothing depends on.
    pub fn can_call(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        if to == "xtask" {
            return false;
        }
        match self.reach.get(from) {
            Some(deps) => deps.contains(to),
            None => true,
        }
    }
}

/// The `name = "..."` value of the `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Keys of the `[dependencies]` and `[dev-dependencies]` sections
/// (package names; `foo.workspace = true` and `foo = { .. }` forms).
fn dependency_keys(manifest: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]" || line == "[dev-dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `gdelt-model.workspace = true` or `gdelt-model = { ... }`.
        let key: String =
            line.chars().take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_').collect();
        if !key.is_empty() {
            keys.push(key);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_and_dependency_names() {
        let m = "\
[package]
name = \"gdelt-engine\"

[dependencies]
gdelt-model.workspace = true
rayon = { path = \"../../shims/rayon\" }

[dev-dependencies]
gdelt-synth.workspace = true
";
        assert_eq!(package_name(m).as_deref(), Some("gdelt-engine"));
        assert_eq!(dependency_keys(m), vec!["gdelt-model", "rayon", "gdelt-synth"]);
    }

    #[test]
    fn workspace_closure_is_transitive_and_excludes_xtask() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
        let deps = CrateDeps::load(root).unwrap();
        // engine → columnar directly, and → model transitively.
        assert!(deps.can_call("engine", "columnar"));
        assert!(deps.can_call("engine", "model"));
        // engine does not depend on cluster or the xtask tool crate.
        assert!(!deps.can_call("engine", "cluster"));
        assert!(!deps.can_call("engine", "xtask"));
        // Unknown callers (top-level tests/) reach everything but xtask.
        assert!(deps.can_call("tests", "engine"));
        assert!(!deps.can_call("tests", "xtask"));
        // xtask may call itself.
        assert!(deps.can_call("xtask", "xtask"));
    }
}
