//! `cargo xtask` — repo automation.
//!
//! Subcommands:
//!
//! * `lint` — the custom static-analysis pass (see [`lint`]); exits
//!   non-zero if any rule fires. Optional file arguments restrict the
//!   pass to specific paths.
//! * `miri` — run the `AlignedBuf` unsafe-path tests under Miri on the
//!   pinned nightly.
//! * `tsan` — run the concurrency-sensitive suites under
//!   ThreadSanitizer.
//!
//! Wired up via the `xtask` alias in `.cargo/config.toml`:
//! `cargo xtask lint`.

mod lint;
mod sanitize;
mod source;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
cargo xtask — repo automation

USAGE:
  cargo xtask lint [FILES...]   run the custom lint pass (default: all of crates/)
  cargo xtask miri              run AlignedBuf unsafe-path tests under Miri
  cargo xtask tsan              run concurrency suites under ThreadSanitizer
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("miri") => sanitize::miri(),
        Some("tsan") => sanitize::tsan(),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(match other {
            Some(o) => format!("unknown subcommand {o:?}\n{USAGE}"),
            None => USAGE.to_string(),
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(files: &[String]) -> Result<(), String> {
    let root = workspace_root()?;
    let diagnostics = if files.is_empty() {
        lint::lint_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?
    } else {
        let mut out = Vec::new();
        for f in files {
            let path = PathBuf::from(f);
            let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {f}: {e}"))?;
            out.extend(lint::lint_source(&path, &src));
        }
        out
    };
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        eprintln!("xtask lint: clean");
        Ok(())
    } else {
        Err(format!("xtask lint: {} violation(s)", diagnostics.len()))
    }
}

/// The workspace root: where cargo says it is, or the nearest ancestor
/// with a `crates/` directory when invoked directly.
fn workspace_root() -> Result<PathBuf, String> {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        // xtask lives at <root>/crates/xtask.
        if let Some(root) = Path::new(&dir).ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return Ok(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if cur.join("crates").is_dir() {
            return Ok(cur);
        }
        if !cur.pop() {
            return Err("could not locate the workspace root (no crates/ found)".into());
        }
    }
}
