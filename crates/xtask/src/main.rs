//! `cargo xtask` — repo automation.
//!
//! Subcommands:
//!
//! * `lint` — the line-level rule pass (see [`xtask::lint`]);
//! * `analyze` — the call-graph and dataflow pass: panic-reachability
//!   from `// analyze: no_panic` kernels, the `index_bounds` interval
//!   prover, guard-across-call and `Result`-discard dataflow rules,
//!   hot-loop allocations, lock discipline, `SeqCst` audit, the
//!   stale-marker audit, and the ratcheting baseline
//!   (see [`xtask::analyze`]);
//! * `validate-sarif` — structural checker for SARIF 2.1.0 logs
//!   produced by `--format sarif` (see [`xtask::sarif`]);
//! * `miri` / `tsan` — sanitizer wrappers.
//!
//! Both diagnostic passes share one contract: `--format
//! human|json|sarif` output on stdout, exit **0** when clean, **1**
//! when findings were reported, **2** on usage or internal errors.
//! Wired up via the `xtask` alias in `.cargo/config.toml`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::diag::{self, Format};
use xtask::{analyze, lint, sanitize};

const USAGE: &str = "\
cargo xtask — repo automation

USAGE:
  cargo xtask lint [--format human|json|sarif] [FILES...]
      run the line-level lint pass (default scope: the whole workspace)
  cargo xtask analyze [--format human|json|sarif] [--update-baseline]
                      [--diff <report.json>] [--remove-stale] [FILES...]
      run the call-graph + dataflow analyses; with no FILES also checks
      the ratchet tables against analyze-baseline.toml.
        --diff <report.json>   subtract a prior `--format json` report:
                               only new findings are emitted / counted
        --remove-stale         delete the markers behind stale_marker
                               findings, then drop those findings
  cargo xtask validate-sarif <file>
      structurally check a SARIF 2.1.0 log written by `--format sarif`
  cargo xtask miri              run AlignedBuf unsafe-path tests under Miri
  cargo xtask tsan              run concurrency suites under ThreadSanitizer

Exit codes: 0 clean, 1 findings reported, 2 usage/internal error.
";

/// Parsed common flags for the diagnostic subcommands.
struct Opts {
    format: Format,
    update_baseline: bool,
    remove_stale: bool,
    diff: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        format: Format::Human,
        update_baseline: false,
        remove_stale: false,
        diff: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value (human|json|sarif)")?;
                opts.format = Format::parse(v)?;
            }
            "--update-baseline" => opts.update_baseline = true,
            "--remove-stale" => opts.remove_stale = true,
            "--diff" => {
                let v = it.next().ok_or("--diff needs a path to a prior `--format json` report")?;
                opts.diff = Some(PathBuf::from(v));
            }
            f if f.starts_with('-') => return Err(format!("unknown flag {f:?}\n{USAGE}")),
            f => opts.files.push(f.to_string()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<bool, String> = match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("validate-sarif") => cmd_validate_sarif(&args[1..]),
        Some("miri") => sanitize::miri().map(|()| true),
        Some("tsan") => sanitize::tsan().map(|()| true),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(match other {
            Some(o) => format!("unknown subcommand {o:?}\n{USAGE}"),
            None => USAGE.to_string(),
        }),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Run the lint pass; `Ok(true)` means clean.
fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args)?;
    if opts.update_baseline || opts.remove_stale || opts.diff.is_some() {
        return Err("--update-baseline/--remove-stale/--diff only apply to `analyze`".into());
    }
    let root = workspace_root()?;
    let diagnostics = if opts.files.is_empty() {
        lint::lint_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?
    } else {
        let mut out = Vec::new();
        for f in &opts.files {
            let path = PathBuf::from(f);
            let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {f}: {e}"))?;
            out.extend(lint::lint_source(&path, &src));
        }
        out
    };
    diag::emit("lint", &diagnostics, opts.format);
    if diagnostics.is_empty() {
        eprintln!("xtask lint: clean");
        Ok(true)
    } else {
        eprintln!("xtask lint: {} violation(s)", diagnostics.len());
        Ok(false)
    }
}

/// Run the analyze pass; `Ok(true)` means clean.
fn cmd_analyze(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args)?;
    let root = workspace_root()?;
    let whole_workspace = opts.files.is_empty();
    let analysis = if whole_workspace {
        analyze::Analysis::load_workspace(&root)?
    } else {
        let paths: Vec<PathBuf> = opts.files.iter().map(PathBuf::from).collect();
        analyze::Analysis::load(&root, &paths)?
    };
    let result = analysis.run();
    let mut diagnostics = result.diagnostics;
    if opts.remove_stale {
        let n = analyze::remove_stale_markers(&root, &diagnostics)?;
        eprintln!("xtask analyze: removed {n} stale marker(s)");
        diagnostics.retain(|d| d.rule != "stale_marker");
    }
    // The ratchet tables are whole-workspace properties; partial runs
    // (explicit FILES) skip them rather than reporting bogus shrinkage.
    if whole_workspace {
        let inventory = analysis.inventory();
        let test_counts = analysis.test_counts();
        // `--remove-stale` already deleted what it counted, so record
        // the post-fix numbers (zero stale markers remain).
        let stale =
            if opts.remove_stale { std::collections::BTreeMap::new() } else { result.stale };
        if opts.update_baseline {
            let path = analyze::update_baseline(
                &root,
                &inventory,
                &test_counts,
                &result.dataflow,
                &stale,
                &result.summary,
            )?;
            eprintln!("xtask analyze: baseline written to {}", path.display());
        } else {
            diagnostics.extend(analyze::check_baseline(
                &root,
                &inventory,
                &test_counts,
                &result.dataflow,
                &stale,
                &result.summary,
            )?);
        }
    }
    if let Some(diff_path) = &opts.diff {
        let seen = analyze::load_diff_baseline(diff_path)?;
        let before = diagnostics.len();
        analyze::apply_diff(&mut diagnostics, &seen);
        eprintln!(
            "xtask analyze: --diff suppressed {} known finding(s)",
            before - diagnostics.len()
        );
    }
    diag::emit("analyze", &diagnostics, opts.format);
    if diagnostics.is_empty() {
        eprintln!("xtask analyze: clean");
        Ok(true)
    } else {
        eprintln!("xtask analyze: {} finding(s)", diagnostics.len());
        Ok(false)
    }
}

/// Structurally validate a SARIF log; `Ok(true)` means valid.
fn cmd_validate_sarif(args: &[String]) -> Result<bool, String> {
    let [file] = args else {
        return Err(format!("usage: cargo xtask validate-sarif <file>\n{USAGE}"));
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let doc = xtask::json::parse(&text).map_err(|e| format!("{file}: not JSON: {e}"))?;
    match xtask::sarif::validate(&doc) {
        Ok(n) => {
            eprintln!("xtask validate-sarif: valid SARIF 2.1.0 log with {n} result(s)");
            Ok(true)
        }
        Err(errs) => {
            for e in &errs {
                eprintln!("{file}: {e}");
            }
            eprintln!("xtask validate-sarif: {} error(s)", errs.len());
            Ok(false)
        }
    }
}

/// The workspace root: where cargo says it is, or the nearest ancestor
/// with a `crates/` directory when invoked directly.
fn workspace_root() -> Result<PathBuf, String> {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        // xtask lives at <root>/crates/xtask.
        if let Some(root) = Path::new(&dir).ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return Ok(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if cur.join("crates").is_dir() {
            return Ok(cur);
        }
        if !cur.pop() {
            return Err("could not locate the workspace root (no crates/ found)".into());
        }
    }
}
