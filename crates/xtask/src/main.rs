//! `cargo xtask` — repo automation.
//!
//! Subcommands:
//!
//! * `lint` — the line-level rule pass (see [`xtask::lint`]);
//! * `analyze` — the call-graph pass: panic-reachability from
//!   `// analyze: no_panic` kernels, hot-loop allocations, lock
//!   discipline, `SeqCst` audit, and the ratcheting unsafe-inventory
//!   baseline (see [`xtask::analyze`]);
//! * `miri` / `tsan` — sanitizer wrappers.
//!
//! Both diagnostic passes share one contract: `--format human|json`
//! output on stdout, exit **0** when clean, **1** when findings were
//! reported, **2** on usage or internal errors. Wired up via the
//! `xtask` alias in `.cargo/config.toml`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::diag::{self, Format};
use xtask::{analyze, lint, sanitize};

const USAGE: &str = "\
cargo xtask — repo automation

USAGE:
  cargo xtask lint [--format human|json] [FILES...]
      run the line-level lint pass (default scope: the whole workspace)
  cargo xtask analyze [--format human|json] [--update-baseline] [FILES...]
      run the call-graph analyses; with no FILES also checks the unsafe
      inventory against analyze-baseline.toml
  cargo xtask miri              run AlignedBuf unsafe-path tests under Miri
  cargo xtask tsan              run concurrency suites under ThreadSanitizer

Exit codes: 0 clean, 1 findings reported, 2 usage/internal error.
";

/// Parsed common flags for the diagnostic subcommands.
struct Opts {
    format: Format,
    update_baseline: bool,
    files: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts { format: Format::Human, update_baseline: false, files: Vec::new() };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value (human|json)")?;
                opts.format = Format::parse(v)?;
            }
            "--update-baseline" => opts.update_baseline = true,
            f if f.starts_with('-') => return Err(format!("unknown flag {f:?}\n{USAGE}")),
            f => opts.files.push(f.to_string()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<bool, String> = match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("miri") => sanitize::miri().map(|()| true),
        Some("tsan") => sanitize::tsan().map(|()| true),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(match other {
            Some(o) => format!("unknown subcommand {o:?}\n{USAGE}"),
            None => USAGE.to_string(),
        }),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Run the lint pass; `Ok(true)` means clean.
fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args)?;
    if opts.update_baseline {
        return Err("--update-baseline only applies to `analyze`".into());
    }
    let root = workspace_root()?;
    let diagnostics = if opts.files.is_empty() {
        lint::lint_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?
    } else {
        let mut out = Vec::new();
        for f in &opts.files {
            let path = PathBuf::from(f);
            let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {f}: {e}"))?;
            out.extend(lint::lint_source(&path, &src));
        }
        out
    };
    diag::emit("lint", &diagnostics, opts.format);
    if diagnostics.is_empty() {
        eprintln!("xtask lint: clean");
        Ok(true)
    } else {
        eprintln!("xtask lint: {} violation(s)", diagnostics.len());
        Ok(false)
    }
}

/// Run the analyze pass; `Ok(true)` means clean.
fn cmd_analyze(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args)?;
    let root = workspace_root()?;
    let whole_workspace = opts.files.is_empty();
    let analysis = if whole_workspace {
        analyze::Analysis::load_workspace(&root)?
    } else {
        let paths: Vec<PathBuf> = opts.files.iter().map(PathBuf::from).collect();
        analyze::Analysis::load(&root, &paths)?
    };
    let mut diagnostics = analysis.diagnostics();
    // The inventory ratchet is a whole-workspace property; partial runs
    // (explicit FILES) skip it rather than reporting bogus shrinkage.
    if whole_workspace {
        let inventory = analysis.inventory();
        let test_counts = analysis.test_counts();
        if opts.update_baseline {
            let path = analyze::update_baseline(&root, &inventory, &test_counts)?;
            eprintln!("xtask analyze: baseline written to {}", path.display());
        } else {
            diagnostics.extend(analyze::check_baseline(&root, &inventory, &test_counts)?);
        }
    }
    diag::emit("analyze", &diagnostics, opts.format);
    if diagnostics.is_empty() {
        eprintln!("xtask analyze: clean");
        Ok(true)
    } else {
        eprintln!("xtask analyze: {} finding(s)", diagnostics.len());
        Ok(false)
    }
}

/// The workspace root: where cargo says it is, or the nearest ancestor
/// with a `crates/` directory when invoked directly.
fn workspace_root() -> Result<PathBuf, String> {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        // xtask lives at <root>/crates/xtask.
        if let Some(root) = Path::new(&dir).ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return Ok(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if cur.join("crates").is_dir() {
            return Ok(cur);
        }
        if !cur.pop() {
            return Err("could not locate the workspace root (no crates/ found)".into());
        }
    }
}
