//! End-to-end: seeded fault plans against a real store file, loaded
//! through the degraded loader.

use std::path::PathBuf;

use gdelt_columnar::binfmt::save_with_partitions;
use gdelt_columnar::degraded::restrict_to_partitions;
use gdelt_columnar::{load_degraded_with, LoadPolicy};
use gdelt_faults::{FaultPlan, PlanSpec};

const PARTS: u32 = 8;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gdelt_faults_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}", std::process::id()))
}

fn store(name: &str) -> PathBuf {
    let cfg = gdelt_synth::tiny(7);
    let (dataset, _) = gdelt_synth::generate_dataset(&cfg);
    let path = tmp(name);
    save_with_partitions(&path, &dataset, PARTS).unwrap();
    path
}

/// Serialized image of a dataset — the strongest equality we can ask
/// for ("bit-identical"), since `Dataset` itself has no `PartialEq`.
fn bytes(d: &gdelt_columnar::Dataset) -> Vec<u8> {
    let mut v = Vec::new();
    gdelt_columnar::binfmt::write_dataset(&mut v, d).unwrap();
    v
}

fn fast() -> LoadPolicy {
    LoadPolicy {
        max_retries: 4,
        backoff: std::time::Duration::from_millis(1),
        backoff_cap: std::time::Duration::from_millis(4),
    }
}

#[test]
fn seeded_plan_is_deterministic() {
    let path = store("det");
    let spec =
        PlanSpec { corrupt_partitions: 2, transient_failures: 1, truncate_tail: true, delay_ms: 5 };
    let a = FaultPlan::seeded(&path, 42, &spec).unwrap();
    let b = FaultPlan::seeded(&path, 42, &spec).unwrap();
    let c = FaultPlan::seeded(&path, 43, &spec).unwrap();
    assert_eq!(a, b);
    assert_ne!(a, c);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.corrupted_partitions.len(), 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn flip_quarantines_targeted_partition_and_matches_restriction() {
    let path = store("flip");
    let clean = load_degraded_with(&path, &fast(), &FaultPlan::clean(0)).unwrap();
    assert!(clean.health.is_clean());
    assert!(clean.health.coverage().is_full());

    let spec = PlanSpec { corrupt_partitions: 1, ..PlanSpec::default() };
    let plan = FaultPlan::seeded(&path, 42, &spec).unwrap();
    assert_eq!(plan.corrupted_partitions.len(), 1);

    let degraded = load_degraded_with(&path, &fast(), &plan).unwrap();
    for p in &plan.corrupted_partitions {
        assert!(degraded.health.quarantined.contains(p), "partition {p} should be quarantined");
    }
    assert!(degraded.health.coverage().fraction() < 1.0);

    // The degraded dataset must be bit-identical to the clean dataset
    // restricted to the same live partitions.
    let expect =
        restrict_to_partitions(&clean.dataset, PARTS, &degraded.health.quarantined).unwrap();
    assert_eq!(bytes(&degraded.dataset), bytes(&expect));

    // Same seed, second load: identical quarantine and data.
    let again = load_degraded_with(&path, &fast(), &plan).unwrap();
    assert_eq!(again.health, degraded.health);
    assert_eq!(bytes(&again.dataset), bytes(&degraded.dataset));
    std::fs::remove_file(&path).ok();
}

#[test]
fn transient_failures_clear_after_retries() {
    let path = store("transient");
    let spec = PlanSpec { transient_failures: 2, corrupt_partitions: 0, ..PlanSpec::default() };
    let plan = FaultPlan::seeded(&path, 42, &spec).unwrap();
    let loaded = load_degraded_with(&path, &fast(), &plan).unwrap();
    assert_eq!(loaded.health.retries, 2, "attempts 0 and 1 fail, attempt 2 succeeds");
    assert!(loaded.health.coverage().is_full());
    assert!(loaded.health.quarantined.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn transient_failures_beyond_budget_fail_the_load() {
    let path = store("exhaust");
    let spec = PlanSpec { transient_failures: 99, corrupt_partitions: 0, ..PlanSpec::default() };
    let plan = FaultPlan::seeded(&path, 42, &spec).unwrap();
    let err = load_degraded_with(&path, &fast(), &plan).unwrap_err();
    assert_ne!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_file(&path).ok();
}

#[test]
fn tail_truncation_loads_with_tail_quarantined() {
    let path = store("trunc");
    let spec = PlanSpec { truncate_tail: true, corrupt_partitions: 0, ..PlanSpec::default() };
    let plan = FaultPlan::seeded(&path, 42, &spec).unwrap();
    let loaded = load_degraded_with(&path, &fast(), &plan).unwrap();
    assert!(
        !loaded.health.quarantined.is_empty(),
        "a truncated tail must quarantine at least one partition"
    );
    assert!(loaded.health.coverage().fraction() < 1.0);
    std::fs::remove_file(&path).ok();
}
