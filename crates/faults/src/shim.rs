//! The faulty reader: applies a schedule of byte-level faults to a
//! sequential read stream.

use std::io::{self, Read};
use std::time::Duration;

/// A [`Read`] wrapper that tracks its absolute stream position and
/// applies scheduled faults: flips payload bytes, truncates the stream,
/// fails or delays the read that crosses a given offset.
///
/// Positions are absolute byte offsets from the start of the wrapped
/// stream (for store files: offset 0 is the first magic byte). The
/// loader issues a deterministic sequence of `read_exact` calls, so a
/// given schedule always fires at the same points of the parse.
pub struct FaultyRead<'a> {
    inner: Box<dyn Read + 'a>,
    pos: u64,
    flips: Vec<(u64, u8)>,
    truncate_at: Option<u64>,
    fail_at: Option<u64>,
    delays: Vec<(u64, Duration)>,
    truncate_reported: bool,
}

impl<'a> FaultyRead<'a> {
    /// Wrap `inner` with an explicit fault set.
    ///
    /// * `flips` — `(pos, xor)` pairs; the byte at `pos` is XORed as it
    ///   passes through.
    /// * `truncate_at` — the stream reports EOF at this offset.
    /// * `fail_at` — the read that would cross this offset fails with a
    ///   retryable (non-`InvalidData`) error.
    /// * `delays` — `(pos, dur)`: sleep `dur` before the read crossing
    ///   `pos`; each delay fires once.
    pub fn new(
        inner: Box<dyn Read + 'a>,
        flips: Vec<(u64, u8)>,
        truncate_at: Option<u64>,
        fail_at: Option<u64>,
        delays: Vec<(u64, Duration)>,
    ) -> Self {
        FaultyRead { inner, pos: 0, flips, truncate_at, fail_at, delays, truncate_reported: false }
    }

    /// Bytes delivered so far (current absolute offset).
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl Read for FaultyRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut want = buf.len();
        if let Some(t) = self.truncate_at {
            if self.pos >= t {
                if !self.truncate_reported {
                    self.truncate_reported = true;
                    gdelt_obs::flight_warn(
                        "faults",
                        "truncate",
                        format!("injected EOF at offset {t}"),
                    );
                }
                return Ok(0);
            }
            let left = usize::try_from(t - self.pos).unwrap_or(usize::MAX);
            want = want.min(left);
        }
        if let Some(f) = self.fail_at {
            if self.pos.saturating_add(want as u64) > f {
                gdelt_obs::flight_warn(
                    "faults",
                    "read_fail",
                    format!("injected transient failure crossing offset {f}"),
                );
                return Err(io::Error::other("injected transient read failure"));
            }
        }
        let end = self.pos.saturating_add(want as u64);
        let mut fired = false;
        for &(at, dur) in &self.delays {
            if at >= self.pos && at < end {
                gdelt_obs::flight_warn(
                    "faults",
                    "delay",
                    format!("injected {dur:?} stall before offset {at}"),
                );
                std::thread::sleep(dur);
                fired = true;
            }
        }
        if fired {
            let (lo, hi) = (self.pos, end);
            self.delays.retain(|&(at, _)| !(at >= lo && at < hi));
        }
        let n = self.inner.read(&mut buf[..want])?;
        let got_end = self.pos.saturating_add(n as u64);
        for &(at, xor) in &self.flips {
            if at >= self.pos && at < got_end {
                let idx = usize::try_from(at - self.pos).unwrap_or(usize::MAX);
                if let Some(b) = buf.get_mut(idx) {
                    *b ^= xor;
                    gdelt_obs::flight_warn(
                        "faults",
                        "flip",
                        format!("injected bit flip at offset {at} (xor {xor:#04x})"),
                    );
                }
            }
        }
        self.pos = got_end;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn wrap(
        data: Vec<u8>,
        f: impl FnOnce(Box<dyn Read>) -> FaultyRead<'static>,
    ) -> FaultyRead<'static> {
        f(Box::new(Cursor::new(data)))
    }

    #[test]
    fn flips_exactly_the_scheduled_bytes() {
        let data = vec![0u8; 16];
        let mut r = wrap(data, |inner| {
            FaultyRead::new(inner, vec![(3, 0xFF), (10, 0x01)], None, None, Vec::new())
        });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 16);
        for (i, b) in out.iter().enumerate() {
            let expect = match i {
                3 => 0xFF,
                10 => 0x01,
                _ => 0,
            };
            assert_eq!(*b, expect, "byte {i}");
        }
    }

    #[test]
    fn flips_work_across_small_read_chunks() {
        let data: Vec<u8> = (0..32).collect();
        let mut r = wrap(data.clone(), |inner| {
            FaultyRead::new(inner, vec![(17, 0x80)], None, None, Vec::new())
        });
        let mut out = Vec::new();
        // Read in 5-byte chunks so the flip lands mid-chunk.
        let mut chunk = [0u8; 5];
        loop {
            let n = r.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        let mut expect = data;
        expect[17] ^= 0x80;
        assert_eq!(out, expect);
    }

    #[test]
    fn truncates_at_offset() {
        let data = vec![7u8; 100];
        let mut r =
            wrap(data, |inner| FaultyRead::new(inner, Vec::new(), Some(42), None, Vec::new()));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 42);
        assert_eq!(r.position(), 42);
    }

    #[test]
    fn fails_the_read_crossing_the_offset() {
        let data = vec![7u8; 100];
        let mut r =
            wrap(data, |inner| FaultyRead::new(inner, Vec::new(), None, Some(50), Vec::new()));
        let mut buf = [0u8; 40];
        r.read_exact(&mut buf).unwrap(); // [0, 40) fine
        let err = r.read_exact(&mut buf).unwrap_err(); // would cross 50
        assert_ne!(err.kind(), io::ErrorKind::InvalidData, "must be retryable");
        assert_eq!(r.position(), 40, "failed read must not advance");
    }

    #[test]
    fn fault_hits_land_in_the_flight_recorder() {
        let data = vec![0u8; 64];
        let mut r =
            wrap(data, |inner| FaultyRead::new(inner, vec![(5, 0xA5)], Some(33), None, Vec::new()));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        // The recorder is process-global and other tests write to it
        // concurrently, so assert only that *our* hits are present.
        let evs = gdelt_obs::flight_snapshot();
        assert!(
            evs.iter().any(|e| e.code == "flip" && e.detail.contains("offset 5")),
            "missing flip event: {evs:?}"
        );
        assert!(
            evs.iter().any(|e| e.code == "truncate" && e.detail.contains("offset 33")),
            "missing truncate event: {evs:?}"
        );
    }

    #[test]
    fn delay_fires_once() {
        let data = vec![0u8; 64];
        let mut r = wrap(data, |inner| {
            FaultyRead::new(inner, Vec::new(), None, None, vec![(10, Duration::from_millis(30))])
        });
        let t0 = std::time::Instant::now();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25), "delay should have fired");
        assert_eq!(out.len(), 64);
    }
}
