//! Seeded shard-level faults: which worker dies (or stalls), and when.
//!
//! The store-level [`crate::FaultPlan`] murders partitions under the
//! loader; this module murders *processes* under the shard router. The
//! same discipline applies: a [`ShardFaultPlan`] is a pure function of
//! `(seed, n_shards, horizon)`, so a chaos run is reproducible down to
//! the exact query index at which each worker is killed or delayed,
//! and the plan serializes to JSON for CI artifacts.
//!
//! The plan itself performs no I/O and touches no processes — the
//! chaos harness reads it and does the killing (`child.kill()`) or
//! passes the delay to the worker's deterministic `fault_delay_at`
//! hook. That keeps all fault mechanics out of product code paths,
//! mirroring how [`crate::FaultPlan`] slots under the loader as a shim.

use crate::rng::{seeded_picks, SplitMix64};

/// What happens to one shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// Kill the worker process just before it would answer the
    /// `at_query`-th router scatter (0-based).
    Kill {
        /// Scatter index at which the kill lands.
        at_query: u64,
    },
    /// Delay the worker's answer to the `at_query`-th request by
    /// `ms` milliseconds (drives router timeout handling).
    Delay {
        /// Request index at which the delay lands.
        at_query: u64,
        /// Injected latency in milliseconds.
        ms: u64,
    },
}

/// A deterministic schedule of shard faults for one chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFaultPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Shards in the split.
    pub n_shards: u32,
    /// Per-shard fault (at most one per shard), as `(shard, fault)`,
    /// ascending by shard id.
    pub faults: Vec<(u32, ShardFault)>,
}

impl ShardFaultPlan {
    /// Derive a plan: `kills` victims die and `delays` victims stall
    /// by `delay_ms`, each at a query index in `[1, horizon)`. Victim
    /// sets are disjoint; the same seed always yields the same plan.
    ///
    /// Query indices start at 1 so the router always completes at
    /// least one full-coverage scatter first — the chaos assertions
    /// need a healthy baseline to compare against.
    pub fn seeded(
        seed: u64,
        n_shards: u32,
        kills: u32,
        delays: u32,
        delay_ms: u64,
        horizon: u64,
    ) -> ShardFaultPlan {
        let total = kills.saturating_add(delays).min(n_shards) as u64;
        let victims: Vec<u64> =
            seeded_picks(seed ^ 0x5AAD_F001, u64::from(n_shards), total).into_iter().collect();
        let mut rng = SplitMix64::new(seed ^ 0x5AAD_F002);
        let horizon = horizon.max(2);
        let mut faults = Vec::with_capacity(victims.len());
        for (i, &v) in victims.iter().enumerate() {
            let at_query = 1 + rng.below(horizon - 1);
            let fault = if (i as u32) < kills.min(n_shards) {
                ShardFault::Kill { at_query }
            } else {
                ShardFault::Delay { at_query, ms: delay_ms }
            };
            faults.push((v as u32, fault));
        }
        faults.sort_by_key(|&(s, _)| s);
        ShardFaultPlan { seed, n_shards, faults }
    }

    /// The kill scheduled for `shard`, if any.
    pub fn kill_at(&self, shard: u32) -> Option<u64> {
        self.faults.iter().find_map(|&(s, f)| match f {
            ShardFault::Kill { at_query } if s == shard => Some(at_query),
            _ => None,
        })
    }

    /// The delay scheduled for `shard`, if any, as `(at_query, ms)`.
    pub fn delay_at(&self, shard: u32) -> Option<(u64, u64)> {
        self.faults.iter().find_map(|&(s, f)| match f {
            ShardFault::Delay { at_query, ms } if s == shard => Some((at_query, ms)),
            _ => None,
        })
    }

    /// Shard ids scheduled to die, ascending.
    pub fn killed_shards(&self) -> Vec<u32> {
        self.faults
            .iter()
            .filter_map(|&(s, f)| matches!(f, ShardFault::Kill { .. }).then_some(s))
            .collect()
    }

    /// The earliest scatter index at which any kill lands (the point
    /// the chaos harness pauses replay to do the murdering).
    pub fn first_kill_query(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|&(_, f)| match f {
                ShardFault::Kill { at_query } => Some(at_query),
                _ => None,
            })
            .min()
    }

    /// Hand-rolled JSON, shipping with chaos artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"n_shards\": {},\n", self.n_shards));
        out.push_str("  \"faults\": [\n");
        for (i, (s, f)) in self.faults.iter().enumerate() {
            let body = match f {
                ShardFault::Kill { at_query } => {
                    format!("{{\"shard\": {s}, \"kind\": \"kill\", \"at_query\": {at_query}}}")
                }
                ShardFault::Delay { at_query, ms } => format!(
                    "{{\"shard\": {s}, \"kind\": \"delay\", \"at_query\": {at_query}, \"ms\": {ms}}}"
                ),
            };
            out.push_str(&format!(
                "    {body}{}\n",
                if i + 1 < self.faults.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = ShardFaultPlan::seeded(42, 4, 1, 1, 250, 64);
        let b = ShardFaultPlan::seeded(42, 4, 1, 1, 250, 64);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let plans: Vec<_> = (0..16).map(|s| ShardFaultPlan::seeded(s, 8, 2, 1, 100, 64)).collect();
        assert!(plans.windows(2).any(|w| w[0].faults != w[1].faults));
    }

    #[test]
    fn victims_are_disjoint_and_in_range() {
        for seed in 0..32 {
            let p = ShardFaultPlan::seeded(seed, 6, 2, 2, 50, 32);
            assert_eq!(p.faults.len(), 4);
            let mut shards: Vec<u32> = p.faults.iter().map(|&(s, _)| s).collect();
            shards.dedup();
            assert_eq!(shards.len(), 4, "victims must be distinct");
            assert!(shards.iter().all(|&s| s < 6));
            for &(_, f) in &p.faults {
                let at = match f {
                    ShardFault::Kill { at_query } => at_query,
                    ShardFault::Delay { at_query, .. } => at_query,
                };
                assert!((1..32).contains(&at), "fault at {at} outside [1, horizon)");
            }
        }
    }

    #[test]
    fn accessors_agree_with_schedule() {
        let p = ShardFaultPlan::seeded(7, 4, 1, 1, 123, 16);
        let killed = p.killed_shards();
        assert_eq!(killed.len(), 1);
        assert_eq!(p.kill_at(killed[0]), Some(p.first_kill_query().unwrap()));
        let delayed: Vec<u32> = p
            .faults
            .iter()
            .filter_map(|&(s, f)| matches!(f, ShardFault::Delay { .. }).then_some(s))
            .collect();
        assert_eq!(delayed.len(), 1);
        let (at, ms) = p.delay_at(delayed[0]).unwrap();
        assert_eq!(ms, 123);
        assert!(at >= 1);
        assert_eq!(p.kill_at(delayed[0]), None);
    }

    #[test]
    fn more_faults_than_shards_saturates() {
        let p = ShardFaultPlan::seeded(3, 2, 5, 5, 10, 8);
        assert_eq!(p.faults.len(), 2);
        assert_eq!(p.killed_shards().len(), 2, "kills take precedence");
    }
}
