//! Self-contained deterministic PRNG.
//!
//! Fault schedules must be reproducible from a seed alone, across
//! platforms and releases, forever — a committed CI seed has to mean
//! the same schedule next year. So the generator is pinned here as
//! SplitMix64 (Steele et al., the JDK's `SplittableRandom` finalizer)
//! rather than borrowed from the `rand` shim, whose algorithm is an
//! implementation detail free to change.

use std::collections::BTreeSet;

/// SplitMix64: 64 bits of state, full-period, passes BigCrush.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Every distinct seed gives a distinct stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[0, n)`; returns 0 when `n == 0`. Modulo
    /// bias is ≤ 2⁻⁴⁰ for every `n` this crate draws (file offsets),
    /// which is irrelevant for scheduling.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// `k` distinct values in `[0, n)`, chosen deterministically from
/// `seed`. Returns all of `[0, n)` when `k >= n`. Used to pick which
/// partitions a schedule corrupts and which query indexes a chaos run
/// panics on.
pub fn seeded_picks(seed: u64, n: u64, k: u64) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    if n == 0 {
        return out;
    }
    if k >= n {
        out.extend(0..n);
        return out;
    }
    let mut rng = SplitMix64::new(seed);
    while (out.len() as u64) < k {
        out.insert(rng.below(n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Known first output for seed 0 (reference value from the
        // published SplitMix64 algorithm).
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn seeded_picks_are_distinct_and_bounded() {
        let picks = seeded_picks(7, 100, 10);
        assert_eq!(picks.len(), 10);
        assert!(picks.iter().all(|&p| p < 100));
        assert_eq!(picks, seeded_picks(7, 100, 10));
        assert_eq!(seeded_picks(7, 5, 99).len(), 5);
        assert!(seeded_picks(7, 0, 3).is_empty());
    }
}
