//! # gdelt-faults
//!
//! Seeded, deterministic fault injection for the store stack.
//!
//! The production service must survive torn writes, corrupt partitions,
//! slow disks, and transient read failures without panicking or silently
//! returning wrong answers. This crate produces those conditions *on
//! demand and reproducibly*: a [`FaultPlan`] is derived from a single
//! `u64` seed plus the target store's actual section layout, and the
//! same seed always yields byte-for-byte the same schedule. The plan
//! implements [`gdelt_columnar::binfmt::ReadShim`], so it slots directly
//! under [`gdelt_columnar::load_degraded_with`] — no test-only branches
//! in the load path itself.
//!
//! Fault vocabulary (see [`plan::Fault`]):
//!
//! * **FlipByte** — XOR one payload byte inside a chosen partition's
//!   byte range of a fixed-width column section, so exactly that
//!   partition fails its digest and is quarantined;
//! * **TruncateAt** — stop the stream at an absolute offset, simulating
//!   a torn write / short file;
//! * **FailRead** — error (with a retryable kind) on the read crossing
//!   an offset, cleared after a scheduled number of attempts, to
//!   exercise the loader's capped-backoff retry loop;
//! * **DelayRead** — sleep before the read crossing an offset,
//!   simulating a slow disk (used by the `ServeError::TimedOut`
//!   integration test so no sleep lives in product code).
//!
//! The schedule serializes to JSON ([`FaultPlan::to_json`]) so a failing
//! chaos run can ship its exact fault schedule as a CI artifact.

#![warn(missing_docs)]

pub mod plan;
pub mod rng;
pub mod shard;
pub mod shim;

pub use plan::{Fault, FaultPlan, PlanSpec, ScheduledFault, ALWAYS};
pub use rng::{seeded_picks, SplitMix64};
pub use shard::{ShardFault, ShardFaultPlan};
pub use shim::FaultyRead;
