//! Seeded fault schedules aimed at a concrete store file.

use std::io::{self, Read};
use std::path::Path;
use std::time::Duration;

use gdelt_columnar::binfmt::{
    read_store_extents, scan_layout, section_space, ReadShim, SectionSpace,
};

use crate::rng::{seeded_picks, SplitMix64};
use crate::shim::FaultyRead;

/// Sentinel for [`ScheduledFault::until_attempt`]: the fault applies on
/// every load attempt (persistent corruption rather than a transient
/// failure).
pub const ALWAYS: u32 = u32::MAX;

/// One injectable fault, positioned by absolute file offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// XOR the byte at `pos` as it is read.
    FlipByte {
        /// Absolute file offset of the byte.
        pos: u64,
        /// Nonzero XOR mask.
        xor: u8,
    },
    /// Report EOF at `pos`, simulating a torn write.
    TruncateAt {
        /// Absolute file offset where the stream ends.
        pos: u64,
    },
    /// Fail (retryably) the read that would cross `pos`.
    FailRead {
        /// Absolute file offset the failing read crosses.
        pos: u64,
    },
    /// Sleep `ms` milliseconds before the read crossing `pos`.
    DelayRead {
        /// Absolute file offset the delayed read crosses.
        pos: u64,
        /// Sleep duration in milliseconds.
        ms: u64,
    },
}

/// A [`Fault`] plus the attempts it applies to: active while
/// `attempt < until_attempt`, so `until_attempt: 2` means the fault
/// fires on attempts 0 and 1 and clears on the second retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// The fault itself.
    pub fault: Fault,
    /// First attempt number on which the fault no longer applies;
    /// [`ALWAYS`] for persistent faults.
    pub until_attempt: u32,
}

/// Knobs for [`FaultPlan::seeded`]: how much of each fault class the
/// schedule should contain. All positions within those classes are
/// drawn from the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpec {
    /// Number of distinct partitions to hit with a byte flip.
    pub corrupt_partitions: u32,
    /// Number of attempts a transient `FailRead` survives before
    /// clearing (0 = no transient failures).
    pub transient_failures: u32,
    /// Also truncate the file inside its final section.
    pub truncate_tail: bool,
    /// If nonzero, delay the first payload read by this many ms.
    pub delay_ms: u64,
}

impl Default for PlanSpec {
    fn default() -> Self {
        PlanSpec { corrupt_partitions: 1, transient_failures: 0, truncate_tail: false, delay_ms: 0 }
    }
}

/// A complete, reproducible fault schedule for one store file.
///
/// Implements [`ReadShim`], so it plugs straight into
/// [`gdelt_columnar::load_degraded_with`]; the `attempt` number the
/// loader passes on each retry is matched against each fault's
/// `until_attempt` window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the schedule was derived from.
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<ScheduledFault>,
    /// Partitions the byte flips were aimed at (ascending). Advisory:
    /// the loader's quarantine may be a superset (e.g. a flip landing
    /// on a shared boundary offset quarantines both neighbours).
    pub corrupted_partitions: Vec<u32>,
}

impl FaultPlan {
    /// An empty schedule (identity shim) — the "clean run" control arm.
    pub fn clean(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new(), corrupted_partitions: Vec::new() }
    }

    /// Derive a schedule from `seed` against the store at `path`.
    ///
    /// Byte flips are aimed at fixed-width event/mention column
    /// sections only, inside the byte range owned by a seeded choice of
    /// partition, so each flip deterministically quarantines the
    /// partition it targets (and only that one). The section layout is
    /// read from the file itself; the same seed against the same store
    /// bytes always yields the same schedule.
    pub fn seeded(path: &Path, seed: u64, spec: &PlanSpec) -> io::Result<FaultPlan> {
        let layout = scan_layout(path)?;
        let store = read_store_extents(path)?;
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::new();

        // Fixed-width column sections: a flip anywhere in a partition's
        // slice of these dirties exactly that partition's digest.
        let targets: Vec<_> = layout
            .iter()
            .filter(|s| {
                matches!(section_space(&s.name), SectionSpace::Event(_) | SectionSpace::Mention(_))
                    && s.payload_len > 0
            })
            .collect();

        let n_parts = store.extents.len() as u64;
        let picks = seeded_picks(seed ^ 0xC0FF_EE00, n_parts, u64::from(spec.corrupt_partitions));
        let mut corrupted = Vec::new();
        for &p in &picks {
            let ext = match store.extents.get(usize::try_from(p).unwrap_or(usize::MAX)) {
                Some(e) => e,
                None => continue,
            };
            // Try seeded sections until one has a nonempty byte range
            // for this partition (mention columns can be empty for a
            // partition with no mentions).
            let mut placed = false;
            for _ in 0..32 {
                if targets.is_empty() {
                    break;
                }
                let sec = targets[usize::try_from(rng.below(targets.len() as u64))
                    .unwrap_or(0)
                    .min(targets.len() - 1)];
                let space = section_space(&sec.name);
                let Some((b, e)) = ext.byte_range(space, &[]) else { continue };
                if e <= b || e > sec.payload_len {
                    continue;
                }
                let pos = sec.payload_offset + b + rng.below(e - b);
                let xor = (rng.below(255) + 1) as u8;
                faults.push(ScheduledFault {
                    fault: Fault::FlipByte { pos, xor },
                    until_attempt: ALWAYS,
                });
                placed = true;
                break;
            }
            if placed {
                corrupted.push(u32::try_from(p).unwrap_or(u32::MAX));
            }
        }

        if spec.transient_failures > 0 {
            // Fail a read early in the file (inside the first section's
            // payload) so every attempt under the window dies fast.
            let pos = layout
                .first()
                .map(|s| s.payload_offset + rng.below(s.payload_len.max(1)))
                .unwrap_or(12);
            faults.push(ScheduledFault {
                fault: Fault::FailRead { pos },
                until_attempt: spec.transient_failures,
            });
        }

        if spec.truncate_tail {
            // Land inside the final section's payload: the loader keeps
            // everything before it and quarantines the damaged tail.
            if let Some(last) = layout.last() {
                let pos = last.payload_offset + rng.below(last.payload_len.max(1));
                faults.push(ScheduledFault {
                    fault: Fault::TruncateAt { pos },
                    until_attempt: ALWAYS,
                });
            }
        }

        if spec.delay_ms > 0 {
            let pos = layout.first().map(|s| s.payload_offset).unwrap_or(12);
            faults.push(ScheduledFault {
                fault: Fault::DelayRead { pos, ms: spec.delay_ms },
                until_attempt: ALWAYS,
            });
        }

        Ok(FaultPlan { seed, faults, corrupted_partitions: corrupted })
    }

    /// The faults active on load attempt `attempt`.
    pub fn active(&self, attempt: u32) -> Vec<&Fault> {
        self.faults.iter().filter(|f| attempt < f.until_attempt).map(|f| &f.fault).collect()
    }

    /// Serialize the schedule as JSON (hand-rolled; the schema is flat
    /// integers and kind tags). This is the artifact a failing chaos CI
    /// run uploads so the exact schedule can be replayed locally.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"corrupted_partitions\": {:?},\n", self.corrupted_partitions));
        s.push_str("  \"faults\": [\n");
        for (i, f) in self.faults.iter().enumerate() {
            let body = match &f.fault {
                Fault::FlipByte { pos, xor } => {
                    format!("\"kind\": \"flip_byte\", \"pos\": {pos}, \"xor\": {xor}")
                }
                Fault::TruncateAt { pos } => format!("\"kind\": \"truncate_at\", \"pos\": {pos}"),
                Fault::FailRead { pos } => format!("\"kind\": \"fail_read\", \"pos\": {pos}"),
                Fault::DelayRead { pos, ms } => {
                    format!("\"kind\": \"delay_read\", \"pos\": {pos}, \"ms\": {ms}")
                }
            };
            let comma = if i + 1 == self.faults.len() { "" } else { "," };
            s.push_str(&format!("    {{{body}, \"until_attempt\": {}}}{comma}\n", f.until_attempt));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl ReadShim for FaultPlan {
    fn wrap<'a>(&self, inner: Box<dyn Read + 'a>, attempt: u32) -> Box<dyn Read + 'a> {
        let mut flips = Vec::new();
        let mut truncate_at: Option<u64> = None;
        let mut fail_at: Option<u64> = None;
        let mut delays = Vec::new();
        for fault in self.active(attempt) {
            match *fault {
                Fault::FlipByte { pos, xor } => flips.push((pos, xor)),
                Fault::TruncateAt { pos } => {
                    truncate_at = Some(truncate_at.map_or(pos, |t| t.min(pos)));
                }
                Fault::FailRead { pos } => {
                    fail_at = Some(fail_at.map_or(pos, |f| f.min(pos)));
                }
                Fault::DelayRead { pos, ms } => delays.push((pos, Duration::from_millis(ms))),
            }
        }
        Box::new(FaultyRead::new(inner, flips, truncate_at, fail_at, delays))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_respects_attempt_windows() {
        let plan = FaultPlan {
            seed: 1,
            faults: vec![
                ScheduledFault { fault: Fault::FlipByte { pos: 5, xor: 1 }, until_attempt: ALWAYS },
                ScheduledFault { fault: Fault::FailRead { pos: 0 }, until_attempt: 2 },
            ],
            corrupted_partitions: vec![0],
        };
        assert_eq!(plan.active(0).len(), 2);
        assert_eq!(plan.active(1).len(), 2);
        assert_eq!(plan.active(2).len(), 1);
        assert!(matches!(plan.active(2)[0], Fault::FlipByte { .. }));
    }

    #[test]
    fn json_snapshot_is_stable() {
        let plan = FaultPlan {
            seed: 42,
            faults: vec![
                ScheduledFault {
                    fault: Fault::FlipByte { pos: 100, xor: 7 },
                    until_attempt: ALWAYS,
                },
                ScheduledFault { fault: Fault::DelayRead { pos: 12, ms: 50 }, until_attempt: 3 },
            ],
            corrupted_partitions: vec![2, 5],
        };
        let json = plan.to_json();
        assert!(json.contains("\"seed\": 42"), "{json}");
        assert!(json.contains("\"corrupted_partitions\": [2, 5]"), "{json}");
        assert!(json.contains("\"kind\": \"flip_byte\", \"pos\": 100, \"xor\": 7"), "{json}");
        assert!(json.contains("\"kind\": \"delay_read\", \"pos\": 12, \"ms\": 50"), "{json}");
        assert!(json.contains("\"until_attempt\": 3"), "{json}");
        assert_eq!(json, plan.to_json());
    }

    #[test]
    fn clean_plan_is_identity() {
        let plan = FaultPlan::clean(9);
        let data = vec![1u8, 2, 3, 4];
        let mut r = plan.wrap(Box::new(std::io::Cursor::new(data.clone())), 0);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
