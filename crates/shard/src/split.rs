//! Store splitting: partition a single columnar store into N shard
//! stores by *contiguous partition range*, plus the manifest that
//! tells the router what each shard holds.
//!
//! Contiguity is what makes the scatter-gather algebra exact: shard
//! `i` takes source partitions `[i·P/N, (i+1)·P/N)`, so its events are
//! a contiguous slice of the global event table and the manifest can
//! record each shard's `ev_row_base` (first event's global row) —
//! which is all `partial::run_shard_query` needs to rebase top-event
//! rows. The split reuses `restrict_to_partitions`, which keeps the
//! full source directory on every shard (SourceIds stay globally
//! aligned) and never separates an event from its mentions.

use gdelt_columnar::binfmt::{read_store_extents, save_with_partitions};
use gdelt_columnar::degraded::restrict_to_partitions;
use std::io;
use std::path::{Path, PathBuf};

/// What one shard store holds, per the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard store file, relative to the manifest's directory.
    pub file: String,
    /// Source partitions this shard covers (its coverage weight).
    pub partitions: u32,
    /// Global event row of the shard's first event.
    pub ev_row_base: u64,
    /// Event rows in the shard store.
    pub events: u64,
    /// Mention rows in the shard store.
    pub mentions: u64,
}

/// A split's table of contents (`manifest.json` next to the shard
/// stores).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Partitions the source store was written with.
    pub source_partitions: u32,
    /// Per-shard entries, in shard-id order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Hand-rolled JSON (no serde), one shard object per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"source_partitions\": {},\n", self.source_partitions));
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"partitions\": {}, \"ev_row_base\": {}, \"events\": {}, \"mentions\": {}}}{}\n",
                s.file,
                s.partitions,
                s.ev_row_base,
                s.events,
                s.mentions,
                if i + 1 < self.shards.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse the shape [`ShardManifest::to_json`] emits. Not a general
    /// JSON parser — a purpose-built scanner for our own writer, the
    /// same trade obs makes for its trace output.
    pub fn from_json(text: &str) -> io::Result<ShardManifest> {
        let source_partitions = extract_u64(text, "source_partitions")? as u32;
        let open = text.find('[').ok_or_else(|| bad_manifest("missing shards array"))?;
        let close = text.rfind(']').ok_or_else(|| bad_manifest("unterminated shards array"))?;
        let mut shards = Vec::new();
        for obj in text[open + 1..close].split('{').skip(1) {
            let body =
                obj.split('}').next().ok_or_else(|| bad_manifest("unterminated shard object"))?;
            shards.push(ShardEntry {
                file: extract_str(body, "file")?,
                partitions: extract_u64(body, "partitions")? as u32,
                ev_row_base: extract_u64(body, "ev_row_base")?,
                events: extract_u64(body, "events")?,
                mentions: extract_u64(body, "mentions")?,
            });
        }
        if shards.is_empty() {
            return Err(bad_manifest("no shards"));
        }
        Ok(ShardManifest { source_partitions, shards })
    }

    /// Load `dir/manifest.json`.
    pub fn load(dir: &Path) -> io::Result<ShardManifest> {
        ShardManifest::from_json(&std::fs::read_to_string(dir.join("manifest.json"))?)
    }

    /// Absolute path of shard `i`'s store under `dir`.
    pub fn shard_path(&self, dir: &Path, i: usize) -> PathBuf {
        dir.join(&self.shards[i].file)
    }

    /// Total partitions covered by the given live shard ids — the
    /// numerator of the router's `Coverage`.
    pub fn coverage_of(&self, live: &[usize]) -> u32 {
        live.iter().filter_map(|&i| self.shards.get(i)).map(|s| s.partitions).sum()
    }
}

fn bad_manifest(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("shard manifest: {what}"))
}

fn extract_u64(text: &str, key: &str) -> io::Result<u64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle).ok_or_else(|| bad_manifest(&format!("missing key {key}")))?;
    let rest = text[at + needle.len()..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().map_err(|_| bad_manifest(&format!("bad number for {key}")))
}

fn extract_str(text: &str, key: &str) -> io::Result<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle).ok_or_else(|| bad_manifest(&format!("missing key {key}")))?;
    let rest = text[at + needle.len()..].trim_start();
    let inner =
        rest.strip_prefix('"').ok_or_else(|| bad_manifest(&format!("{key} is not a string")))?;
    let end =
        inner.find('"').ok_or_else(|| bad_manifest(&format!("unterminated string for {key}")))?;
    Ok(inner[..end].to_string())
}

/// Contiguous partition range `[lo, hi)` for shard `i` of `n` over `p`
/// partitions — the same balanced split the tests and chaos arm use.
pub fn shard_range(p: u32, n: u32, i: u32) -> (u32, u32) {
    (i * p / n, (i + 1) * p / n)
}

/// Split the store at `src` into `n_shards` shard stores under
/// `out_dir`, writing `manifest.json` alongside. Returns the manifest.
///
/// Fails if `n_shards` is zero or exceeds the source's partition
/// count (a shard with zero partitions would contribute nothing but
/// still cost a connection).
pub fn split_store(src: &Path, out_dir: &Path, n_shards: u32) -> io::Result<ShardManifest> {
    let extents = read_store_extents(src)?;
    let n_parts = extents.extents.len() as u32;
    if n_shards == 0 || n_shards > n_parts {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot split {n_parts} partitions into {n_shards} shards"),
        ));
    }
    let d = gdelt_columnar::binfmt::load(src)?;
    std::fs::create_dir_all(out_dir)?;
    let mut shards = Vec::with_capacity(n_shards as usize);
    let mut ev_row_base = 0u64;
    for i in 0..n_shards {
        let (lo, hi) = shard_range(n_parts, n_shards, i);
        let quarantined: Vec<u32> = (0..n_parts).filter(|p| *p < lo || *p >= hi).collect();
        let shard_d = restrict_to_partitions(&d, n_parts, &quarantined)?;
        let file = format!("shard-{i:03}.gdhpc");
        save_with_partitions(&out_dir.join(&file), &shard_d, hi - lo)?;
        shards.push(ShardEntry {
            file,
            partitions: hi - lo,
            ev_row_base,
            events: shard_d.events.len() as u64,
            mentions: shard_d.mentions.len() as u64,
        });
        ev_row_base += shard_d.events.len() as u64;
    }
    let manifest = ShardManifest { source_partitions: n_parts, shards };
    std::fs::write(out_dir.join("manifest.json"), manifest.to_json())?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_round_trips() {
        let m = ShardManifest {
            source_partitions: 8,
            shards: vec![
                ShardEntry {
                    file: "shard-000.gdhpc".into(),
                    partitions: 4,
                    ev_row_base: 0,
                    events: 100,
                    mentions: 900,
                },
                ShardEntry {
                    file: "shard-001.gdhpc".into(),
                    partitions: 4,
                    ev_row_base: 100,
                    events: 80,
                    mentions: 700,
                },
            ],
        };
        assert_eq!(ShardManifest::from_json(&m.to_json()).unwrap(), m);
        assert_eq!(m.coverage_of(&[0]), 4);
        assert_eq!(m.coverage_of(&[0, 1]), 8);
    }

    #[test]
    fn shard_ranges_tile_the_partition_space() {
        for p in [8u32, 12, 16] {
            for n in [1u32, 2, 3, 4, 8] {
                let mut next = 0;
                for i in 0..n {
                    let (lo, hi) = shard_range(p, n, i);
                    assert_eq!(lo, next, "p={p} n={n} i={i}");
                    assert!(hi > lo || p < n);
                    next = hi;
                }
                assert_eq!(next, p);
            }
        }
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(ShardManifest::from_json("{}").is_err());
        assert!(ShardManifest::from_json("{\"source_partitions\": 8, \"shards\": []}").is_err());
        assert!(ShardManifest::from_json("not json at all").is_err());
    }
}
