//! Hand-rolled length-prefixed wire protocol for the shard tier.
//!
//! Zero dependencies, no serde — in the same spirit as obs's
//! hand-rolled JSON. Every message is one *frame*. Version 2 carries
//! trace context in the header so spans opened by a worker parent
//! under the router's span:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GDSH"
//! 4       2     version (LE) — 2; v1 frames still decode
//! 6       1     kind (frame discriminant)
//! 7       8     trace id (LE; 0 = untraced)
//! 15      8     parent span id (LE; 0 = no parent)
//! 23      4     payload length (LE)
//! 27      len   payload (message-specific, little-endian codecs)
//! 27+len  8     FNV-1a 64 checksum of bytes [0, 27+len) (LE)
//! ```
//!
//! A version-1 header is the same minus the two trace fields (11
//! bytes, payload length at offset 7). Decoding negotiates by the
//! version field: v1 frames yield zero trace context and a
//! [`Frame::Reply`] without the flight section — typed, never a panic.
//!
//! Integers are little-endian; `f64` travels as IEEE-754 bits
//! (`to_bits`/`from_bits`), so round-trips are bit-identical — the
//! equivalence suite depends on that. Decoding is total: every
//! malformed input maps to a typed [`WireError`], never a panic.

use gdelt_columnar::binfmt::fnv1a64;
use gdelt_engine::coreport::CountryCoReport;
use gdelt_engine::crossreport::CrossReport;
use gdelt_engine::delay::DelayStats;
use gdelt_engine::filter::Bitmap;
use gdelt_engine::followreport::FollowReport;
use gdelt_engine::partial::{ActiveSourcesPartial, DelayHist, ShardPartial, ShardQuery};
use gdelt_engine::timeseries::QuarterlySeries;
use gdelt_engine::{Matrix, Query, QueryResult, SeriesKind, TopKKind};
use gdelt_model::ids::SourceId;
use gdelt_model::time::Quarter;

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"GDSH";
/// Protocol version written by [`Frame::encode`].
pub const VERSION: u16 = 2;
/// The pre-trace-context protocol version, still accepted on decode.
pub const VERSION_V1: u16 = 1;
/// Header bytes before the payload (version 2: includes trace id and
/// parent span id).
pub const HEADER_LEN: usize = 27;
/// Version-1 header bytes (no trace context).
pub const HEADER_LEN_V1: usize = 11;
/// The version-independent header prefix: magic + version. Decoding
/// reads this much before it knows which header layout follows.
pub const HEADER_PREFIX_LEN: usize = 6;
/// Trailing checksum bytes.
pub const CHECKSUM_LEN: usize = 8;
/// Refuse payloads larger than this (256 MiB) — a corrupt length
/// prefix must not allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// Typed decode failure. Every way a frame can be bad has a variant;
/// the proptests assert corruption maps here, never to a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the frame (or field) requires.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u16),
    /// Payload length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// FNV checksum mismatch.
    BadChecksum {
        /// Checksum computed over the received bytes.
        computed: u64,
        /// Checksum carried by the frame.
        stored: u64,
    },
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Structurally invalid payload (bad tag, bad length, bad UTF-8…).
    Malformed(&'static str),
    /// Payload decoded but left unconsumed trailing bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            WireError::BadChecksum { computed, stored } => {
                write!(f, "checksum mismatch: computed {computed:#x}, stored {stored:#x}")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Worker self-description, sent once per connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Shard index in the split.
    pub shard_id: u32,
    /// Partitions this shard holds.
    pub partitions: u32,
    /// Global event row of this shard's first event.
    pub ev_row_base: u64,
    /// Event rows in the shard store.
    pub events: u64,
    /// Mention rows in the shard store.
    pub mentions: u64,
    /// Store generation (bumps invalidate router cache entries).
    pub generation: u64,
}

/// Health snapshot (reply to [`Frame::HealthProbe`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// Live partitions behind this worker.
    pub live: u32,
    /// Partitions the shard store was written with.
    pub total: u32,
    /// Current store generation.
    pub generation: u64,
}

/// One flight-recorder event forwarded across a process boundary.
///
/// Workers piggyback their most recent warn/error events on replies
/// and metrics scrapes; the router re-records them (at most once per
/// `seq`, see `Router::absorb_flight`) so chaos artifacts capture
/// worker-side faults without a separate log-shipping channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightForward {
    /// The worker-local monotone flight sequence number. The router's
    /// per-shard cursor dedups on this.
    pub seq: u64,
    /// Microseconds since the worker's flight epoch.
    pub t_us: u64,
    /// Severity: 0 = info, 1 = warn, 2 = error.
    pub level: u8,
    /// Component tag (e.g. `"worker"`).
    pub component: String,
    /// Stable event code (e.g. `"fault_delay"`).
    pub code: String,
    /// Human-readable detail.
    pub detail: String,
}

/// One completed span shipped from a worker to the router for trace
/// stitching. Timestamps are absolute unix nanoseconds so the router
/// can rebase all processes onto one clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Absolute start time (unix ns).
    pub start_unix_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Worker-local thread lane.
    pub tid: u32,
    /// Trace this span belongs to (0 = untraced).
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Numeric span arguments.
    pub args: Vec<(String, u64)>,
}

/// One wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → router, once per connection.
    Hello(Hello),
    /// Router → worker: answer this shard query.
    Request(ShardQuery),
    /// Worker → router: the partial, stamped with the generation it
    /// was computed under.
    Reply {
        /// Store generation at compute time.
        generation: u64,
        /// The sufficient statistic.
        partial: ShardPartial,
        /// Recent worker flight events (empty on v1 frames).
        flight: Vec<FlightForward>,
    },
    /// Router → worker: health check.
    HealthProbe,
    /// Worker → router: health snapshot.
    Health(Health),
    /// Bump the worker's store generation (chaos/testing hook for
    /// cache-invalidation propagation).
    BumpGeneration,
    /// A full query (client → router framing; also exercised by the
    /// round-trip proptests).
    Query(Query),
    /// A full result (router → client framing).
    Result(QueryResult),
    /// Typed failure with a short human-readable detail.
    Error {
        /// Stable numeric code.
        code: u16,
        /// Diagnostic text.
        message: String,
    },
    /// Router → worker: snapshot your metrics registry.
    MetricsRequest,
    /// Worker → router: the registry snapshot (obs snapshot JSON) plus
    /// piggybacked flight events.
    MetricsReply {
        /// `RegistrySnapshot::to_json()` output.
        snapshot_json: String,
        /// Recent worker flight events.
        flight: Vec<FlightForward>,
    },
    /// Router → worker: drain your completed spans.
    TraceRequest,
    /// Worker → router: drained spans, stamped with the worker pid so
    /// the stitched Chrome trace gets one lane per process.
    TraceReply {
        /// Worker OS process id.
        pid: u32,
        /// Completed spans, absolute-timestamped.
        spans: Vec<WireSpan>,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_REQUEST: u8 = 2;
const KIND_REPLY: u8 = 3;
const KIND_HEALTH_PROBE: u8 = 4;
const KIND_HEALTH: u8 = 5;
const KIND_BUMP: u8 = 6;
const KIND_QUERY: u8 = 7;
const KIND_RESULT: u8 = 8;
const KIND_ERROR: u8 = 9;
const KIND_METRICS_REQUEST: u8 = 10;
const KIND_METRICS_REPLY: u8 = 11;
const KIND_TRACE_REQUEST: u8 = 12;
const KIND_TRACE_REPLY: u8 = 13;

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello(_) => KIND_HELLO,
            Frame::Request(_) => KIND_REQUEST,
            Frame::Reply { .. } => KIND_REPLY,
            Frame::HealthProbe => KIND_HEALTH_PROBE,
            Frame::Health(_) => KIND_HEALTH,
            Frame::BumpGeneration => KIND_BUMP,
            Frame::Query(_) => KIND_QUERY,
            Frame::Result(_) => KIND_RESULT,
            Frame::Error { .. } => KIND_ERROR,
            Frame::MetricsRequest => KIND_METRICS_REQUEST,
            Frame::MetricsReply { .. } => KIND_METRICS_REPLY,
            Frame::TraceRequest => KIND_TRACE_REQUEST,
            Frame::TraceReply { .. } => KIND_TRACE_REPLY,
        }
    }

    /// Encode into a checksummed v2 frame with zero (untraced) trace
    /// context.
    // analyze: no_panic
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(VERSION, 0, 0)
    }

    /// Encode into a checksummed v2 frame carrying trace context.
    // analyze: no_panic
    pub fn encode_traced(&self, trace_id: u64, parent_span: u64) -> Vec<u8> {
        self.encode_with(VERSION, trace_id, parent_span)
    }

    /// Encode with the pre-trace-context version-1 header (11 bytes,
    /// no trace fields; `Reply` omits its flight section). Exists so
    /// the negotiation tests can manufacture genuine old-format frames
    /// without hand-packing bytes.
    // analyze: no_panic
    pub fn encode_v1(&self) -> Vec<u8> {
        self.encode_with(VERSION_V1, 0, 0)
    }

    // analyze: no_panic
    fn encode_with(&self, version: u16, trace_id: u64, parent_span: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        let mut e = Enc(&mut payload);
        match self {
            Frame::Hello(h) => {
                e.u32(h.shard_id);
                e.u32(h.partitions);
                e.u64(h.ev_row_base);
                e.u64(h.events);
                e.u64(h.mentions);
                e.u64(h.generation);
            }
            Frame::Request(sq) => enc_shard_query(&mut e, sq),
            Frame::Reply { generation, partial, flight } => {
                e.u64(*generation);
                enc_partial(&mut e, partial);
                // The flight section joined the Reply payload in v2; a
                // v1 Reply simply does not carry it.
                if version >= VERSION {
                    enc_flight_vec(&mut e, flight);
                }
            }
            Frame::HealthProbe | Frame::BumpGeneration => {}
            Frame::Health(h) => {
                e.u32(h.live);
                e.u32(h.total);
                e.u64(h.generation);
            }
            Frame::Query(q) => enc_query(&mut e, q),
            Frame::Result(r) => enc_result(&mut e, r),
            Frame::Error { code, message } => {
                e.u16(*code);
                e.str(message);
            }
            Frame::MetricsRequest | Frame::TraceRequest => {}
            Frame::MetricsReply { snapshot_json, flight } => {
                e.str(snapshot_json);
                enc_flight_vec(&mut e, flight);
            }
            Frame::TraceReply { pid, spans } => {
                e.u32(*pid);
                e.len(spans.len());
                for s in spans {
                    enc_wire_span(&mut e, s);
                }
            }
        }
        let header_len = if version == VERSION_V1 { HEADER_LEN_V1 } else { HEADER_LEN };
        let mut out = Vec::with_capacity(header_len + payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.push(self.kind());
        if version != VERSION_V1 {
            out.extend_from_slice(&trace_id.to_le_bytes());
            out.extend_from_slice(&parent_span.to_le_bytes());
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode one frame from the start of `buf`; returns the frame and
    /// the bytes it consumed, dropping the trace context.
    // analyze: no_panic
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        Frame::decode_traced(buf).map(|(frame, _, _, total)| (frame, total))
    }

    /// Decode one frame plus its trace context `(frame, trace_id,
    /// parent_span, consumed)`. Version-1 frames decode with zero
    /// trace context.
    // analyze: no_panic
    pub fn decode_traced(buf: &[u8]) -> Result<(Frame, u64, u64, usize), WireError> {
        if buf.len() < HEADER_PREFIX_LEN {
            return Err(WireError::Truncated { needed: HEADER_PREFIX_LEN, have: buf.len() });
        }
        let magic: [u8; 4] = [buf[0], buf[1], buf[2], buf[3]];
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        let header_len = match version {
            VERSION_V1 => HEADER_LEN_V1,
            VERSION => HEADER_LEN,
            other => return Err(WireError::BadVersion(other)),
        };
        if buf.len() < header_len {
            return Err(WireError::Truncated { needed: header_len, have: buf.len() });
        }
        let kind = buf[6];
        let (trace_id, parent_span) = if version == VERSION {
            let t = buf.get(7..15).and_then(|s| s.try_into().ok()).map(u64::from_le_bytes);
            let p = buf.get(15..23).and_then(|s| s.try_into().ok()).map(u64::from_le_bytes);
            match (t, p) {
                (Some(t), Some(p)) => (t, p),
                _ => return Err(WireError::Malformed("trace header")),
            }
        } else {
            (0, 0)
        };
        let len_off = header_len - 4;
        let len_bytes = buf.get(len_off..header_len).and_then(|s| <[u8; 4]>::try_from(s).ok());
        let Some(len_bytes) = len_bytes else {
            return Err(WireError::Malformed("length field"));
        };
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized(len));
        }
        let total = header_len + len as usize + CHECKSUM_LEN;
        if buf.len() < total {
            return Err(WireError::Truncated { needed: total, have: buf.len() });
        }
        let body_end = header_len + len as usize;
        let body = buf.get(..body_end).ok_or(WireError::Malformed("frame body"))?;
        let computed = fnv1a64(body);
        let sum_bytes = buf.get(body_end..total).ok_or(WireError::Malformed("checksum"))?;
        let stored =
            u64::from_le_bytes(sum_bytes.try_into().map_err(|_| WireError::Malformed("checksum"))?);
        if computed != stored {
            return Err(WireError::BadChecksum { computed, stored });
        }
        let payload = buf.get(header_len..body_end).ok_or(WireError::Malformed("payload"))?;
        let mut d = Dec { buf: payload, pos: 0 };
        let frame = match kind {
            KIND_HELLO => Frame::Hello(Hello {
                shard_id: d.u32()?,
                partitions: d.u32()?,
                ev_row_base: d.u64()?,
                events: d.u64()?,
                mentions: d.u64()?,
                generation: d.u64()?,
            }),
            KIND_REQUEST => Frame::Request(dec_shard_query(&mut d)?),
            KIND_REPLY => {
                let generation = d.u64()?;
                let partial = dec_partial(&mut d)?;
                // v1 replies predate the flight section.
                let flight =
                    if version == VERSION_V1 { Vec::new() } else { dec_flight_vec(&mut d)? };
                Frame::Reply { generation, partial, flight }
            }
            KIND_HEALTH_PROBE => Frame::HealthProbe,
            KIND_HEALTH => {
                Frame::Health(Health { live: d.u32()?, total: d.u32()?, generation: d.u64()? })
            }
            KIND_BUMP => Frame::BumpGeneration,
            KIND_QUERY => Frame::Query(dec_query(&mut d)?),
            KIND_RESULT => Frame::Result(dec_result(&mut d)?),
            KIND_ERROR => Frame::Error { code: d.u16()?, message: d.str()? },
            KIND_METRICS_REQUEST => Frame::MetricsRequest,
            KIND_METRICS_REPLY => {
                Frame::MetricsReply { snapshot_json: d.str()?, flight: dec_flight_vec(&mut d)? }
            }
            KIND_TRACE_REQUEST => Frame::TraceRequest,
            KIND_TRACE_REPLY => {
                let pid = d.u32()?;
                let n = d.len_for(WIRE_SPAN_MIN_BYTES)?;
                let spans =
                    (0..n).map(|_| dec_wire_span(&mut d)).collect::<Result<Vec<_>, _>>()?;
                Frame::TraceReply { pid, spans }
            }
            other => return Err(WireError::BadKind(other)),
        };
        if d.pos != d.buf.len() {
            return Err(WireError::TrailingBytes(d.buf.len() - d.pos));
        }
        Ok((frame, trace_id, parent_span, total))
    }

    /// Write one frame to a stream with zero trace context.
    // analyze: no_panic
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Write one frame to a stream, stamping the header with trace
    /// context for the receiving process to adopt.
    // analyze: no_panic
    pub fn write_traced_to(
        &self,
        w: &mut impl std::io::Write,
        trace_id: u64,
        parent_span: u64,
    ) -> std::io::Result<()> {
        w.write_all(&self.encode_traced(trace_id, parent_span))?;
        w.flush()
    }

    /// Read exactly one frame from a stream, dropping trace context.
    /// Wire-level failures come back as `InvalidData` wrapping the
    /// [`WireError`] text.
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Frame> {
        Frame::read_traced_from(r).map(|(frame, _, _)| frame)
    }

    /// Read exactly one frame plus its `(trace_id, parent_span)` from
    /// a stream. Accepts both header versions; v1 frames yield zero
    /// trace context.
    pub fn read_traced_from(r: &mut impl std::io::Read) -> std::io::Result<(Frame, u64, u64)> {
        let mut prefix = [0u8; HEADER_PREFIX_LEN];
        r.read_exact(&mut prefix)?;
        let magic: [u8; 4] = [prefix[0], prefix[1], prefix[2], prefix[3]];
        if magic != MAGIC {
            return Err(wire_io(WireError::BadMagic(magic)));
        }
        let version = u16::from_le_bytes([prefix[4], prefix[5]]);
        let header_len = match version {
            VERSION_V1 => HEADER_LEN_V1,
            VERSION => HEADER_LEN,
            other => return Err(wire_io(WireError::BadVersion(other))),
        };
        let mut header_rest = vec![0u8; header_len - HEADER_PREFIX_LEN];
        r.read_exact(&mut header_rest)?;
        let len_bytes: [u8; 4] = header_rest[header_rest.len() - 4..]
            .try_into()
            .map_err(|_| wire_io(WireError::Malformed("length field")))?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_PAYLOAD {
            return Err(wire_io(WireError::Oversized(len)));
        }
        let mut rest = vec![0u8; len as usize + CHECKSUM_LEN];
        r.read_exact(&mut rest)?;
        let mut whole = Vec::with_capacity(header_len + rest.len());
        whole.extend_from_slice(&prefix);
        whole.extend_from_slice(&header_rest);
        whole.extend_from_slice(&rest);
        let (frame, trace_id, parent_span, _) =
            Frame::decode_traced(&whole).map_err(wire_io)?;
        Ok((frame, trace_id, parent_span))
    }
}

fn wire_io(e: WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Little-endian payload encoder.
struct Enc<'a>(&'a mut Vec<u8>);

impl Enc<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i16(&mut self, v: i16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Bounds-checked payload decoder.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self.pos.saturating_add(n);
        let Some(s) = self.buf.get(self.pos..end) else {
            return Err(WireError::Truncated { needed: end, have: self.buf.len() });
        };
        self.pos = end;
        Ok(s)
    }
    fn fixed<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Malformed("fixed-width field"))
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.fixed()?))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.fixed()?))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.fixed()?))
    }
    fn i16(&mut self) -> Result<i16, WireError> {
        Ok(i16::from_le_bytes(self.fixed()?))
    }
    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.fixed()?))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len_for(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("utf-8 string"))
    }
    /// A length prefix, rejected early when even `n × elem_size` bytes
    /// cannot remain — keeps corrupt prefixes from huge allocations.
    fn len_for(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(elem_size.max(1)) > remaining {
            return Err(WireError::Malformed("length prefix exceeds payload"));
        }
        Ok(n)
    }
}

/// Smallest possible encoded [`FlightForward`]: seq + t_us + level +
/// three empty length-prefixed strings.
const FLIGHT_FORWARD_MIN_BYTES: usize = 8 + 8 + 1 + 4 + 4 + 4;
/// Smallest possible encoded [`WireSpan`]: two empty strings, five
/// fixed ints, tid, and an empty args vec.
const WIRE_SPAN_MIN_BYTES: usize = 4 + 4 + 8 + 8 + 4 + 8 + 8 + 8 + 4;

fn enc_flight_vec(e: &mut Enc<'_>, flight: &[FlightForward]) {
    e.len(flight.len());
    for f in flight {
        e.u64(f.seq);
        e.u64(f.t_us);
        e.u8(f.level);
        e.str(&f.component);
        e.str(&f.code);
        e.str(&f.detail);
    }
}

fn dec_flight_vec(d: &mut Dec<'_>) -> Result<Vec<FlightForward>, WireError> {
    let n = d.len_for(FLIGHT_FORWARD_MIN_BYTES)?;
    (0..n)
        .map(|_| {
            let seq = d.u64()?;
            let t_us = d.u64()?;
            let level = d.u8()?;
            if level > 2 {
                return Err(WireError::Malformed("flight level"));
            }
            Ok(FlightForward {
                seq,
                t_us,
                level,
                component: d.str()?,
                code: d.str()?,
                detail: d.str()?,
            })
        })
        .collect()
}

fn enc_wire_span(e: &mut Enc<'_>, s: &WireSpan) {
    e.str(&s.name);
    e.str(&s.cat);
    e.u64(s.start_unix_ns);
    e.u64(s.dur_ns);
    e.u32(s.tid);
    e.u64(s.trace_id);
    e.u64(s.span_id);
    e.u64(s.parent_id);
    e.len(s.args.len());
    for (k, v) in &s.args {
        e.str(k);
        e.u64(*v);
    }
}

fn dec_wire_span(d: &mut Dec<'_>) -> Result<WireSpan, WireError> {
    let name = d.str()?;
    let cat = d.str()?;
    let start_unix_ns = d.u64()?;
    let dur_ns = d.u64()?;
    let tid = d.u32()?;
    let trace_id = d.u64()?;
    let span_id = d.u64()?;
    let parent_id = d.u64()?;
    let n = d.len_for(12)?;
    let args = (0..n).map(|_| Ok((d.str()?, d.u64()?))).collect::<Result<Vec<_>, WireError>>()?;
    Ok(WireSpan { name, cat, start_unix_ns, dur_ns, tid, trace_id, span_id, parent_id, args })
}

fn enc_vec_u64(e: &mut Enc<'_>, v: &[u64]) {
    e.len(v.len());
    for &x in v {
        e.u64(x);
    }
}

fn dec_vec_u64(d: &mut Dec<'_>) -> Result<Vec<u64>, WireError> {
    let n = d.len_for(8)?;
    (0..n).map(|_| d.u64()).collect()
}

fn enc_matrix(e: &mut Enc<'_>, m: &Matrix<u64>) {
    e.u32(m.rows() as u32);
    e.u32(m.cols() as u32);
    for &x in m.as_slice() {
        e.u64(x);
    }
}

fn dec_matrix(d: &mut Dec<'_>) -> Result<Matrix<u64>, WireError> {
    let rows = d.u32()? as usize;
    let cols = d.u32()? as usize;
    if rows.saturating_mul(cols).saturating_mul(8) > d.buf.len() - d.pos {
        return Err(WireError::Malformed("matrix dims exceed payload"));
    }
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m.set(r, c, d.u64()?);
        }
    }
    Ok(m)
}

fn enc_subset(e: &mut Enc<'_>, subset: &[SourceId]) {
    e.len(subset.len());
    for s in subset {
        e.u32(s.0);
    }
}

fn dec_subset(d: &mut Dec<'_>) -> Result<Vec<SourceId>, WireError> {
    let n = d.len_for(4)?;
    (0..n).map(|_| d.u32().map(SourceId)).collect()
}

fn enc_series_kind(e: &mut Enc<'_>, k: &SeriesKind) {
    match k {
        SeriesKind::Events => e.u8(0),
        SeriesKind::Articles => e.u8(1),
        SeriesKind::ActiveSources => e.u8(2),
        SeriesKind::LateArticles { threshold } => {
            e.u8(3);
            e.u32(*threshold);
        }
    }
}

fn dec_series_kind(d: &mut Dec<'_>) -> Result<SeriesKind, WireError> {
    Ok(match d.u8()? {
        0 => SeriesKind::Events,
        1 => SeriesKind::Articles,
        2 => SeriesKind::ActiveSources,
        3 => SeriesKind::LateArticles { threshold: d.u32()? },
        _ => return Err(WireError::Malformed("series kind tag")),
    })
}

fn enc_query(e: &mut Enc<'_>, q: &Query) {
    match q {
        Query::CoReport => e.u8(0),
        Query::FollowReport { top_k } => {
            e.u8(1);
            e.u32(*top_k);
        }
        Query::CrossCountry => e.u8(2),
        Query::Delay => e.u8(3),
        Query::TimeSeries(k) => {
            e.u8(4);
            enc_series_kind(e, k);
        }
        Query::TopK { kind, k } => {
            e.u8(5);
            e.u8(match kind {
                TopKKind::Publishers => 0,
                TopKKind::Events => 1,
            });
            e.u32(*k);
        }
    }
}

fn dec_query(d: &mut Dec<'_>) -> Result<Query, WireError> {
    Ok(match d.u8()? {
        0 => Query::CoReport,
        1 => Query::FollowReport { top_k: d.u32()? },
        2 => Query::CrossCountry,
        3 => Query::Delay,
        4 => Query::TimeSeries(dec_series_kind(d)?),
        5 => {
            let kind = match d.u8()? {
                0 => TopKKind::Publishers,
                1 => TopKKind::Events,
                _ => return Err(WireError::Malformed("topk kind tag")),
            };
            Query::TopK { kind, k: d.u32()? }
        }
        _ => return Err(WireError::Malformed("query tag")),
    })
}

fn enc_series(e: &mut Enc<'_>, s: &QuarterlySeries) {
    e.i16(s.base.year);
    e.u8(s.base.q);
    e.len(s.values.len());
    for &v in &s.values {
        e.f64(v);
    }
}

fn dec_series(d: &mut Dec<'_>) -> Result<QuarterlySeries, WireError> {
    let year = d.i16()?;
    let q = d.u8()?;
    let n = d.len_for(8)?;
    let values = (0..n).map(|_| d.f64()).collect::<Result<Vec<f64>, _>>()?;
    Ok(QuarterlySeries { base: Quarter { year, q }, values })
}

fn enc_delay_stats(e: &mut Enc<'_>, s: &DelayStats) {
    e.u64(s.count);
    e.u32(s.min);
    e.u32(s.max);
    e.f64(s.mean);
    e.u32(s.median);
}

fn dec_delay_stats(d: &mut Dec<'_>) -> Result<DelayStats, WireError> {
    Ok(DelayStats {
        count: d.u64()?,
        min: d.u32()?,
        max: d.u32()?,
        mean: d.f64()?,
        median: d.u32()?,
    })
}

fn enc_result(e: &mut Enc<'_>, r: &QueryResult) {
    match r {
        QueryResult::CoReport(c) => {
            e.u8(0);
            enc_matrix(e, &c.pairs);
            enc_vec_u64(e, &c.event_counts);
        }
        QueryResult::FollowReport(fr) => {
            e.u8(1);
            enc_subset(e, &fr.subset);
            enc_matrix(e, &fr.follow_counts);
            enc_vec_u64(e, &fr.articles);
        }
        QueryResult::CrossCountry(c) => {
            e.u8(2);
            enc_matrix(e, &c.counts);
            enc_vec_u64(e, &c.articles_by_publisher);
            enc_vec_u64(e, &c.events_by_country);
        }
        QueryResult::Delay(stats) => {
            e.u8(3);
            e.len(stats.len());
            for s in stats {
                enc_delay_stats(e, s);
            }
        }
        QueryResult::TimeSeries(s) => {
            e.u8(4);
            enc_series(e, s);
        }
        QueryResult::TopPublishers(ranked) => {
            e.u8(5);
            e.len(ranked.len());
            for (s, c) in ranked {
                e.u32(s.0);
                e.u64(*c);
            }
        }
        QueryResult::TopEvents(ranked) => {
            e.u8(6);
            e.len(ranked.len());
            for (row, c) in ranked {
                e.u64(*row as u64);
                e.u64(*c);
            }
        }
    }
}

fn dec_result(d: &mut Dec<'_>) -> Result<QueryResult, WireError> {
    Ok(match d.u8()? {
        0 => QueryResult::CoReport(CountryCoReport {
            pairs: dec_matrix(d)?,
            event_counts: dec_vec_u64(d)?,
        }),
        1 => QueryResult::FollowReport(FollowReport {
            subset: dec_subset(d)?,
            follow_counts: dec_matrix(d)?,
            articles: dec_vec_u64(d)?,
        }),
        2 => QueryResult::CrossCountry(CrossReport {
            counts: dec_matrix(d)?,
            articles_by_publisher: dec_vec_u64(d)?,
            events_by_country: dec_vec_u64(d)?,
        }),
        3 => {
            let n = d.len_for(28)?;
            QueryResult::Delay((0..n).map(|_| dec_delay_stats(d)).collect::<Result<Vec<_>, _>>()?)
        }
        4 => QueryResult::TimeSeries(dec_series(d)?),
        5 => {
            let n = d.len_for(12)?;
            QueryResult::TopPublishers(
                (0..n)
                    .map(|_| Ok((SourceId(d.u32()?), d.u64()?)))
                    .collect::<Result<Vec<_>, WireError>>()?,
            )
        }
        6 => {
            let n = d.len_for(16)?;
            QueryResult::TopEvents(
                (0..n)
                    .map(|_| Ok((d.u64()? as usize, d.u64()?)))
                    .collect::<Result<Vec<_>, WireError>>()?,
            )
        }
        _ => return Err(WireError::Malformed("result tag")),
    })
}

fn enc_shard_query(e: &mut Enc<'_>, sq: &ShardQuery) {
    match sq {
        ShardQuery::CoReport => e.u8(0),
        ShardQuery::FollowReportWith { sources } => {
            e.u8(1);
            enc_subset(e, sources);
        }
        ShardQuery::CrossCountry => e.u8(2),
        ShardQuery::Delay => e.u8(3),
        ShardQuery::TimeSeries(k) => {
            e.u8(4);
            enc_series_kind(e, k);
        }
        ShardQuery::PublisherCounts => e.u8(5),
        ShardQuery::TopEvents { k } => {
            e.u8(6);
            e.u32(*k);
        }
    }
}

fn dec_shard_query(d: &mut Dec<'_>) -> Result<ShardQuery, WireError> {
    Ok(match d.u8()? {
        0 => ShardQuery::CoReport,
        1 => ShardQuery::FollowReportWith { sources: dec_subset(d)? },
        2 => ShardQuery::CrossCountry,
        3 => ShardQuery::Delay,
        4 => ShardQuery::TimeSeries(dec_series_kind(d)?),
        5 => ShardQuery::PublisherCounts,
        6 => ShardQuery::TopEvents { k: d.u32()? },
        _ => return Err(WireError::Malformed("shard query tag")),
    })
}

fn enc_partial(e: &mut Enc<'_>, p: &ShardPartial) {
    match p {
        ShardPartial::CoReport(c) => {
            e.u8(0);
            enc_matrix(e, &c.pairs);
            enc_vec_u64(e, &c.event_counts);
        }
        ShardPartial::FollowReport(fr) => {
            e.u8(1);
            enc_subset(e, &fr.subset);
            enc_matrix(e, &fr.follow_counts);
            enc_vec_u64(e, &fr.articles);
        }
        ShardPartial::CrossCountry(c) => {
            e.u8(2);
            enc_matrix(e, &c.counts);
            enc_vec_u64(e, &c.articles_by_publisher);
            enc_vec_u64(e, &c.events_by_country);
        }
        ShardPartial::Delay(hists) => {
            e.u8(3);
            e.len(hists.len());
            for h in hists {
                e.len(h.runs.len());
                for &(dl, c) in &h.runs {
                    e.u32(dl);
                    e.u64(c);
                }
            }
        }
        ShardPartial::Series(s) => {
            e.u8(4);
            enc_series(e, s);
        }
        ShardPartial::ActiveSources(a) => {
            e.u8(5);
            e.i32(a.base);
            let n_sources = a.quarters.first().map_or(0, Bitmap::len);
            e.u64(n_sources as u64);
            e.len(a.quarters.len());
            for bm in &a.quarters {
                enc_vec_u64(e, bm.words());
            }
        }
        ShardPartial::PublisherCounts(v) => {
            e.u8(6);
            enc_vec_u64(e, v);
        }
        ShardPartial::TopEvents { k, entries } => {
            e.u8(7);
            e.u32(*k);
            e.len(entries.len());
            for &(row, c) in entries {
                e.u64(row);
                e.u64(c);
            }
        }
    }
}

fn dec_partial(d: &mut Dec<'_>) -> Result<ShardPartial, WireError> {
    Ok(match d.u8()? {
        0 => ShardPartial::CoReport(CountryCoReport {
            pairs: dec_matrix(d)?,
            event_counts: dec_vec_u64(d)?,
        }),
        1 => ShardPartial::FollowReport(FollowReport {
            subset: dec_subset(d)?,
            follow_counts: dec_matrix(d)?,
            articles: dec_vec_u64(d)?,
        }),
        2 => ShardPartial::CrossCountry(CrossReport {
            counts: dec_matrix(d)?,
            articles_by_publisher: dec_vec_u64(d)?,
            events_by_country: dec_vec_u64(d)?,
        }),
        3 => {
            let n = d.len_for(4)?;
            let mut hists = Vec::with_capacity(n);
            for _ in 0..n {
                let runs = d.len_for(12)?;
                let runs = (0..runs)
                    .map(|_| Ok((d.u32()?, d.u64()?)))
                    .collect::<Result<Vec<_>, WireError>>()?;
                // analyze: allow(hot_alloc): hists is reserved to n above; this push never reallocates
                hists.push(DelayHist { runs });
            }
            ShardPartial::Delay(hists)
        }
        4 => ShardPartial::Series(dec_series(d)?),
        5 => {
            let base = d.i32()?;
            let n_sources = d.u64()? as usize;
            let n = d.len_for(4)?;
            let quarters = (0..n)
                .map(|_| Ok(Bitmap::from_words(dec_vec_u64(d)?, n_sources)))
                .collect::<Result<Vec<_>, WireError>>()?;
            ShardPartial::ActiveSources(ActiveSourcesPartial { base, quarters })
        }
        6 => ShardPartial::PublisherCounts(dec_vec_u64(d)?),
        7 => {
            let k = d.u32()?;
            let n = d.len_for(16)?;
            let entries =
                (0..n).map(|_| Ok((d.u64()?, d.u64()?))).collect::<Result<Vec<_>, WireError>>()?;
            ShardPartial::TopEvents { k, entries }
        }
        _ => return Err(WireError::Malformed("partial tag")),
    })
}
