//! Shard worker: serves one shard store over the wire protocol.
//!
//! A worker is a plain request/reply loop — no admission, no cache,
//! no batching; all of that lives in the router. It loads its shard
//! store once, answers [`Frame::Request`] with generation-stamped
//! [`Frame::Reply`] partials, and reports [`Frame::Health`] on probe.
//! The same struct backs both deployment modes: the
//! `gdelt-cli shard-worker` process (accept loop over TCP) and the
//! in-process worker threads the integration tests spin up.

use crate::wire::{Frame, Health, Hello};
use gdelt_columnar::Dataset;
use gdelt_engine::partial::run_shard_query;
use gdelt_engine::ExecContext;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How to stand up one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Shard store file.
    pub store: PathBuf,
    /// Shard index in the split.
    pub shard_id: u32,
    /// Source partitions this shard covers (its coverage weight).
    pub partitions: u32,
    /// Global event row of the shard's first event.
    pub ev_row_base: u64,
    /// Kernel threads for the shard-local `ExecContext`.
    pub threads: usize,
    /// Deterministic fault injection: sleep `fault_delay_ms` before
    /// answering the request with this zero-based index (chaos arm).
    pub fault_delay_at: Option<u64>,
    /// Milliseconds to sleep when `fault_delay_at` fires.
    pub fault_delay_ms: u64,
}

impl WorkerConfig {
    /// Config for a shard with no injected faults.
    pub fn new(store: PathBuf, shard_id: u32, partitions: u32, ev_row_base: u64) -> Self {
        WorkerConfig {
            store,
            shard_id,
            partitions,
            ev_row_base,
            threads: 2,
            fault_delay_at: None,
            fault_delay_ms: 0,
        }
    }
}

/// One loaded shard, ready to answer requests from any number of
/// connections.
pub struct ShardWorker {
    cfg: WorkerConfig,
    ctx: ExecContext,
    dataset: Dataset,
    generation: AtomicU64,
    requests: AtomicU64,
}

impl ShardWorker {
    /// Load the shard store and build the execution context.
    pub fn load(cfg: WorkerConfig) -> io::Result<Arc<ShardWorker>> {
        let dataset = gdelt_columnar::binfmt::load(&cfg.store)?;
        let ctx = ExecContext::builder().threads(cfg.threads.max(1)).build();
        Ok(Arc::new(ShardWorker {
            cfg,
            ctx,
            dataset,
            generation: AtomicU64::new(1),
            requests: AtomicU64::new(0),
        }))
    }

    /// The hello frame for a fresh connection.
    pub fn hello(&self) -> Hello {
        Hello {
            shard_id: self.cfg.shard_id,
            partitions: self.cfg.partitions,
            ev_row_base: self.cfg.ev_row_base,
            events: self.dataset.events.len() as u64,
            mentions: self.dataset.mentions.len() as u64,
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    fn health(&self) -> Health {
        Health {
            live: self.cfg.partitions,
            total: self.cfg.partitions,
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    /// Answer one frame. Pure dispatch — shared by every transport.
    pub fn handle(&self, frame: Frame) -> Frame {
        match frame {
            Frame::Request(sq) => {
                let idx = self.requests.fetch_add(1, Ordering::Relaxed);
                if self.cfg.fault_delay_at == Some(idx) && self.cfg.fault_delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(self.cfg.fault_delay_ms));
                }
                let t0 = std::time::Instant::now();
                let partial = run_shard_query(&self.ctx, &self.dataset, &sq, self.cfg.ev_row_base);
                gdelt_obs::global()
                    .histogram("shard_worker_query_us")
                    .record(t0.elapsed().as_micros() as u64);
                Frame::Reply { generation: self.generation.load(Ordering::Acquire), partial }
            }
            Frame::HealthProbe => Frame::Health(self.health()),
            Frame::BumpGeneration => {
                self.generation.fetch_add(1, Ordering::AcqRel);
                Frame::Health(self.health())
            }
            other => Frame::Error {
                code: 1,
                message: format!("unsupported frame kind for worker: {}", frame_name(&other)),
            },
        }
    }

    /// Serve one connection: hello, then request/reply until the peer
    /// hangs up.
    pub fn serve_conn(&self, mut stream: TcpStream) -> io::Result<()> {
        let _ = stream.set_nodelay(true);
        Frame::Hello(self.hello()).write_to(&mut stream)?;
        loop {
            let frame = match Frame::read_from(&mut stream) {
                Ok(f) => f,
                // Peer hung up between frames — a normal end.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            };
            self.handle(frame).write_to(&mut stream)?;
        }
    }

    /// Accept loop: one thread per connection, forever (process mode —
    /// the router kills workers by killing the process).
    pub fn serve(self: &Arc<ShardWorker>, listener: TcpListener) -> io::Result<()> {
        loop {
            let (stream, _peer) = listener.accept()?;
            let worker = Arc::clone(self);
            std::thread::spawn(move || {
                if let Err(e) = worker.serve_conn(stream) {
                    gdelt_obs::flight_warn(
                        "shard",
                        "worker_conn_error",
                        format!("shard {}: {e}", worker.cfg.shard_id),
                    );
                }
            });
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Hello(_) => "hello",
        Frame::Request(_) => "request",
        Frame::Reply { .. } => "reply",
        Frame::HealthProbe => "health_probe",
        Frame::Health(_) => "health",
        Frame::BumpGeneration => "bump_generation",
        Frame::Query(_) => "query",
        Frame::Result(_) => "result",
        Frame::Error { .. } => "error",
    }
}
