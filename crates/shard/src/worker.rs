//! Shard worker: serves one shard store over the wire protocol.
//!
//! A worker is a plain request/reply loop — no admission, no cache,
//! no batching; all of that lives in the router. It loads its shard
//! store once, answers [`Frame::Request`] with generation-stamped
//! [`Frame::Reply`] partials, and reports [`Frame::Health`] on probe.
//! The same struct backs both deployment modes: the
//! `gdelt-cli shard-worker` process (accept loop over TCP) and the
//! in-process worker threads the integration tests spin up.
//!
//! Distributed observability (see DESIGN.md "Distributed
//! observability"): each request frame carries trace context in its
//! v2 header; the worker adopts it for the duration of [`handle`], so
//! the `worker_query` span — and the engine partition spans nested
//! under it — parent under the router's RPC span. Replies piggyback
//! the worker's most recent flight events, and the router can scrape
//! the worker's metrics registry ([`Frame::MetricsRequest`]) or drain
//! its completed spans ([`Frame::TraceRequest`]) over the same
//! connection.

use crate::wire::{FlightForward, Frame, Health, Hello, WireSpan};
use gdelt_columnar::Dataset;
use gdelt_engine::partial::run_shard_query;
use gdelt_engine::ExecContext;
use gdelt_obs::{FlightLevel, TraceContext};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Flight events attached to one reply or scrape — enough to cover a
/// chaos window between scrapes without bloating every frame.
pub const FLIGHT_PIGGYBACK_MAX: usize = 32;

/// How to stand up one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Shard store file.
    pub store: PathBuf,
    /// Shard index in the split.
    pub shard_id: u32,
    /// Source partitions this shard covers (its coverage weight).
    pub partitions: u32,
    /// Global event row of the shard's first event.
    pub ev_row_base: u64,
    /// Kernel threads for the shard-local `ExecContext`.
    pub threads: usize,
    /// Deterministic fault injection: sleep `fault_delay_ms` before
    /// answering the request with this zero-based index (chaos arm).
    pub fault_delay_at: Option<u64>,
    /// Milliseconds to sleep when `fault_delay_at` fires.
    pub fault_delay_ms: u64,
    /// Enable span recording in this process so [`Frame::TraceRequest`]
    /// has spans to drain.
    pub trace: bool,
}

impl WorkerConfig {
    /// Config for a shard with no injected faults.
    pub fn new(store: PathBuf, shard_id: u32, partitions: u32, ev_row_base: u64) -> Self {
        WorkerConfig {
            store,
            shard_id,
            partitions,
            ev_row_base,
            threads: 2,
            fault_delay_at: None,
            fault_delay_ms: 0,
            trace: false,
        }
    }
}

/// One loaded shard, ready to answer requests from any number of
/// connections.
pub struct ShardWorker {
    cfg: WorkerConfig,
    ctx: ExecContext,
    dataset: Dataset,
    generation: AtomicU64,
    requests: AtomicU64,
}

impl ShardWorker {
    /// Load the shard store and build the execution context.
    pub fn load(cfg: WorkerConfig) -> io::Result<Arc<ShardWorker>> {
        let dataset = gdelt_columnar::binfmt::load(&cfg.store)?;
        let ctx = ExecContext::builder().threads(cfg.threads.max(1)).build();
        if cfg.trace {
            gdelt_obs::set_tracing(true);
        }
        gdelt_obs::flight_info(
            "worker",
            "worker_started",
            format!("shard {} pid {}", cfg.shard_id, std::process::id()),
        );
        Ok(Arc::new(ShardWorker {
            cfg,
            ctx,
            dataset,
            generation: AtomicU64::new(1),
            requests: AtomicU64::new(0),
        }))
    }

    /// The hello frame for a fresh connection.
    pub fn hello(&self) -> Hello {
        Hello {
            shard_id: self.cfg.shard_id,
            partitions: self.cfg.partitions,
            ev_row_base: self.cfg.ev_row_base,
            events: self.dataset.events.len() as u64,
            mentions: self.dataset.mentions.len() as u64,
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    fn health(&self) -> Health {
        Health {
            live: self.cfg.partitions,
            total: self.cfg.partitions,
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    /// The most recent flight events as wire forwards, oldest first.
    ///
    /// The worker side is stateless: it attaches the same tail to
    /// every reply and lets the router's per-shard seq cursor dedup
    /// (`seq` is monotone per process, so at-most-once re-recording is
    /// the router's `fetch_max` away).
    fn recent_flight(&self) -> Vec<FlightForward> {
        let evs = gdelt_obs::flight_snapshot();
        let skip = evs.len().saturating_sub(FLIGHT_PIGGYBACK_MAX);
        evs.into_iter()
            .skip(skip)
            .map(|ev| FlightForward {
                seq: ev.seq,
                t_us: ev.t_us,
                level: match ev.level {
                    FlightLevel::Info => 0,
                    FlightLevel::Warn => 1,
                    FlightLevel::Error => 2,
                },
                component: ev.component,
                code: ev.code,
                detail: ev.detail,
            })
            .collect()
    }

    /// Drain completed spans as absolute-timestamped wire spans.
    fn drain_spans(&self) -> Vec<WireSpan> {
        let epoch = gdelt_obs::epoch_unix_ns();
        gdelt_obs::take_spans()
            .into_iter()
            .map(|s| WireSpan {
                name: s.name.to_string(),
                cat: s.cat.to_string(),
                start_unix_ns: epoch.saturating_add(s.start_ns),
                dur_ns: s.dur_ns,
                tid: s.tid,
                trace_id: s.trace_id,
                span_id: s.span_id,
                parent_id: s.parent_id,
                args: s.args[..s.n_args as usize]
                    .iter()
                    .map(|&(k, v)| (k.to_string(), v))
                    .collect(),
            })
            .collect()
    }

    /// Answer one frame. Pure dispatch — shared by every transport.
    /// The caller is responsible for having adopted any wire trace
    /// context (see [`ShardWorker::serve_conn`]).
    pub fn handle(&self, frame: Frame) -> Frame {
        match frame {
            Frame::Request(sq) => {
                let _span = gdelt_obs::span_args(
                    "shard",
                    "worker_query",
                    "shard",
                    self.cfg.shard_id as u64,
                );
                let idx = self.requests.fetch_add(1, Ordering::Relaxed);
                if self.cfg.fault_delay_at == Some(idx) && self.cfg.fault_delay_ms > 0 {
                    gdelt_obs::flight_warn(
                        "worker",
                        "fault_delay",
                        format!(
                            "shard {}: injected {}ms stall before request {idx}",
                            self.cfg.shard_id, self.cfg.fault_delay_ms
                        ),
                    );
                    std::thread::sleep(std::time::Duration::from_millis(self.cfg.fault_delay_ms));
                }
                let t0 = std::time::Instant::now();
                let partial = run_shard_query(&self.ctx, &self.dataset, &sq, self.cfg.ev_row_base);
                gdelt_obs::global()
                    .histogram("shard_worker_query_us")
                    .record(t0.elapsed().as_micros() as u64);
                Frame::Reply {
                    generation: self.generation.load(Ordering::Acquire),
                    partial,
                    flight: self.recent_flight(),
                }
            }
            Frame::HealthProbe => Frame::Health(self.health()),
            Frame::BumpGeneration => {
                self.generation.fetch_add(1, Ordering::AcqRel);
                Frame::Health(self.health())
            }
            Frame::MetricsRequest => Frame::MetricsReply {
                snapshot_json: gdelt_obs::global().snapshot().to_json(),
                flight: self.recent_flight(),
            },
            Frame::TraceRequest => {
                Frame::TraceReply { pid: std::process::id(), spans: self.drain_spans() }
            }
            other => Frame::Error {
                code: 1,
                message: format!("unsupported frame kind for worker: {}", frame_name(&other)),
            },
        }
    }

    /// Serve one connection: hello, then request/reply until the peer
    /// hangs up. Each inbound frame's trace context is adopted for the
    /// duration of its handling, so worker spans parent under the
    /// router's RPC span.
    pub fn serve_conn(&self, mut stream: TcpStream) -> io::Result<()> {
        let _ = stream.set_nodelay(true);
        Frame::Hello(self.hello()).write_to(&mut stream)?;
        loop {
            let (frame, trace_id, parent_span) = match Frame::read_traced_from(&mut stream) {
                Ok(f) => f,
                // Peer hung up between frames — a normal end.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            };
            let reply = {
                let _scope = gdelt_obs::with_trace(TraceContext {
                    trace_id,
                    span_id: parent_span,
                });
                self.handle(frame)
            };
            reply.write_to(&mut stream)?;
        }
    }

    /// Accept loop: one thread per connection, forever (process mode —
    /// the router kills workers by killing the process).
    pub fn serve(self: &Arc<ShardWorker>, listener: TcpListener) -> io::Result<()> {
        loop {
            let (stream, _peer) = listener.accept()?;
            let worker = Arc::clone(self);
            std::thread::spawn(move || {
                if let Err(e) = worker.serve_conn(stream) {
                    gdelt_obs::flight_warn(
                        "shard",
                        "worker_conn_error",
                        format!("shard {}: {e}", worker.cfg.shard_id),
                    );
                }
            });
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Hello(_) => "hello",
        Frame::Request(_) => "request",
        Frame::Reply { .. } => "reply",
        Frame::HealthProbe => "health_probe",
        Frame::Health(_) => "health",
        Frame::BumpGeneration => "bump_generation",
        Frame::Query(_) => "query",
        Frame::Result(_) => "result",
        Frame::Error { .. } => "error",
        Frame::MetricsRequest => "metrics_request",
        Frame::MetricsReply { .. } => "metrics_reply",
        Frame::TraceRequest => "trace_request",
        Frame::TraceReply { .. } => "trace_reply",
    }
}
