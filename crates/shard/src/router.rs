//! Scatter-gather router: the front door of the sharded serve tier.
//!
//! The router owns everything the single-process `QueryService` owns —
//! admission control, the generation-stamped result cache, coverage
//! accounting — but its "workers" are shard processes reached over the
//! wire protocol. One admitted [`Query`] becomes a scatter of
//! [`ShardQuery`]s (two rounds for follow-reports), the surviving
//! partials merge with the engine's associative
//! [`ShardPartial::merge`], and [`partial::finalize`] reassembles the
//! bit-identical single-process answer.
//!
//! Failure maps onto the degraded-store vocabulary the repo already
//! speaks: a dead or timed-out shard is a quarantined *partition
//! range*, so coverage is `live/total` in source-store partitions,
//! `DegradedPolicy::ServePartial` answers over the survivors and
//! `DegradedPolicy::Fail` returns [`ServeError::Degraded`]. Reconnects
//! use capped exponential backoff (the `LoadPolicy` discipline), and
//! only full-coverage answers enter the cache, so a shard death can
//! never leave a stale partial answer behind.

use crate::split::ShardManifest;
use crate::wire::{FlightForward, Frame, Hello, WireSpan};
use gdelt_columnar::Coverage;
use gdelt_engine::partial::{self, plan, ShardPartial, ShardPlan, ShardQuery};
use gdelt_engine::{Query, QueryResult};
use gdelt_obs::{FlightLevel, RegistrySnapshot, SpanGuard};
use gdelt_serve::{
    Admission, AdmissionConfig, CoveredAnswer, DegradedPolicy, ServeError, ShardedCache,
};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Capped-exponential reconnect schedule: attempt `a` (0-based) waits
/// `min(backoff_ms << a, cap_ms)` before dialing.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Dial attempts per scatter before declaring the shard dead.
    pub max_attempts: u32,
    /// Base backoff before the second attempt, in milliseconds.
    pub backoff_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub cap_ms: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy { max_attempts: 2, backoff_ms: 10, cap_ms: 200 }
    }
}

impl ReconnectPolicy {
    /// Backoff before attempt `a` (no wait before the first).
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u64 << attempt.saturating_sub(1).min(16);
        Duration::from_millis(self.backoff_ms.saturating_mul(factor).min(self.cap_ms))
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// `host:port` per shard, in shard-id order (must match the
    /// manifest's shard order).
    pub addrs: Vec<String>,
    /// What to do when shards are missing.
    pub policy: DegradedPolicy,
    /// Result cache toggle.
    pub cache_enabled: bool,
    /// Cache shards.
    pub cache_shards: usize,
    /// Cache capacity per cache shard.
    pub cache_capacity_per_shard: usize,
    /// Admission queue bound.
    pub max_queue: usize,
    /// Admission in-flight cost budget.
    pub max_cost_in_flight: u64,
    /// Per-shard read timeout.
    pub read_timeout: Duration,
    /// Reconnect schedule.
    pub reconnect: ReconnectPolicy,
    /// Idle connections kept per shard. Concurrent scatters each check
    /// out their own connection (dialing on demand), so cold queries
    /// never serialize behind one shard socket; this caps how many
    /// stay pooled between scatters.
    pub pool_per_shard: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addrs: Vec::new(),
            policy: DegradedPolicy::ServePartial,
            cache_enabled: true,
            cache_shards: 8,
            cache_capacity_per_shard: 64,
            max_queue: 256,
            max_cost_in_flight: u64::MAX / 4,
            read_timeout: Duration::from_secs(10),
            reconnect: ReconnectPolicy::default(),
            pool_per_shard: 8,
        }
    }
}

/// Counters the bench and chaos arms read. Retries are reconnects that
/// went on to succeed; they are *neither* hits nor misses, so
/// `completed == hits + misses` stays an invariant under sharding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Queries answered (hit or computed).
    pub completed: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (scatter computed the answer).
    pub misses: u64,
    /// Successful shard reconnects (not counted as hit or miss).
    pub retries: u64,
    /// Answers served with partial coverage.
    pub degraded: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Cache invalidations from shard generation/membership changes.
    pub invalidations: u64,
}

struct ShardSlot {
    addr: String,
    /// Idle connections, checked out per request so concurrent
    /// scatters to the same shard run on distinct sockets (the worker
    /// serves one thread per connection).
    pool: Mutex<Vec<Connection>>,
    /// Consecutive dial failures (drives backoff growth across
    /// scatters; reset on success).
    failures: AtomicU64,
}

impl ShardSlot {
    fn check_out(&self) -> Option<Connection> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn check_in(&self, conn: Connection, cap: usize) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        // analyze: allow(guard_across_await_or_call): Vec::len on the guarded pool itself — no other lock is reachable
        if pool.len() < cap.max(1) {
            // analyze: allow(guard_across_await_or_call): Vec::len/push on the guarded pool itself — no other lock is reachable
            pool.push(conn);
        }
    }

    /// Drop every pooled connection — they share the fate of the one
    /// that just failed, and keeping them would make the shard look
    /// dead for several scatters after it comes back.
    fn clear(&self) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

struct Connection {
    stream: TcpStream,
    hello: Hello,
}

/// One live answer from a shard.
struct ShardAnswer {
    shard: usize,
    generation: u64,
    partial: ShardPartial,
    /// True when the connection was re-dialed for this scatter.
    reconnected: bool,
}

/// The scatter-gather front-end.
pub struct Router {
    cfg: RouterConfig,
    manifest: ShardManifest,
    slots: Vec<ShardSlot>,
    admission: Admission,
    cache: ShardedCache,
    /// Per-shard generation (0 = dead) as of the last scatter; any
    /// change invalidates the cache.
    last_sig: Mutex<Vec<u64>>,
    /// Per-shard flight-forwarding cursor: the next worker flight
    /// `seq` this router has not yet re-recorded. Workers attach the
    /// same recent-event tail to every reply; `fetch_max` on this
    /// cursor makes re-recording at-most-once per event even when
    /// concurrent scatters race on the same shard's replies.
    flight_cursors: Vec<AtomicU64>,
    completed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    invalidations: AtomicU64,
    /// Total rows, for admission pricing.
    events: u64,
    mentions: u64,
}

impl Router {
    /// Build a router over `manifest`'s shards at `cfg.addrs`.
    pub fn new(manifest: ShardManifest, cfg: RouterConfig) -> Router {
        assert_eq!(cfg.addrs.len(), manifest.shards.len(), "one address per manifest shard");
        let slots = cfg
            .addrs
            .iter()
            .map(|a| ShardSlot {
                addr: a.clone(),
                pool: Mutex::new(Vec::new()),
                failures: AtomicU64::new(0),
            })
            .collect();
        let admission = Admission::new(AdmissionConfig {
            max_queue: cfg.max_queue,
            max_cost_in_flight: cfg.max_cost_in_flight,
        });
        let cache = ShardedCache::new(cfg.cache_shards, cfg.cache_capacity_per_shard);
        let events = manifest.shards.iter().map(|s| s.events).sum();
        let mentions = manifest.shards.iter().map(|s| s.mentions).sum();
        let n = manifest.shards.len();
        Router {
            cfg,
            manifest,
            slots,
            admission,
            cache,
            last_sig: Mutex::new(vec![0; n]),
            flight_cursors: (0..n).map(|_| AtomicU64::new(0)).collect(),
            completed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            events,
            mentions,
        }
    }

    /// Stats snapshot.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            completed: self.completed.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.admission.shed_count(),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Cache stats (hit/miss/evict counts come from the shared
    /// `ShardedCache`, same as the single-process service).
    pub fn cache_stats(&self) -> gdelt_serve::CacheStats {
        self.cache.stats()
    }

    /// Current router cache generation.
    pub fn generation(&self) -> u64 {
        self.cache.generation()
    }

    /// Total source partitions (the coverage denominator).
    pub fn total_partitions(&self) -> u32 {
        self.manifest.source_partitions
    }

    /// Answer `q`: admission, cache, scatter, merge, finalize.
    pub fn query(&self, q: &Query) -> Result<CoveredAnswer, ServeError> {
        let cost = q.cost_estimate_rows(self.events, self.mentions);
        self.admission.try_admit(cost)?;
        let out = self.query_admitted(q);
        self.admission.release(cost);
        out
    }

    fn query_admitted(&self, q: &Query) -> Result<CoveredAnswer, ServeError> {
        let t0 = std::time::Instant::now();
        // Root span of the distributed trace: with no ambient context
        // it mints a fresh trace id, which every shard RPC below then
        // carries in its frame header.
        let _root = gdelt_obs::span("router", q.kernel_name());
        if self.cfg.cache_enabled {
            if let Some(result) = self.cache.get(q) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.completed.fetch_add(1, Ordering::Relaxed);
                return Ok(CoveredAnswer { result, coverage: Coverage::full() });
            }
        }
        let (result, coverage) = self.scatter_query(q)?;
        if self.cfg.cache_enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        gdelt_obs::global().histogram("router_query_us").record(t0.elapsed().as_micros() as u64);
        Ok(CoveredAnswer { result: Arc::new(result), coverage })
    }

    fn scatter_query(&self, q: &Query) -> Result<(QueryResult, Coverage), ServeError> {
        let merged = match plan(q) {
            ShardPlan::Direct(sq) => self.scatter_round(&sq)?,
            ShardPlan::PublishersThenFollow { top_k } => {
                // Two rounds; the answer's coverage is the second
                // round's survivor set (a shard that answered the
                // ranking round but died before the follow round is
                // not behind the final matrix).
                let first = self.scatter_round(&ShardQuery::PublisherCounts)?;
                let ShardPartial::PublisherCounts(counts) = first.partial else {
                    return Err(ServeError::WorkerPanicked);
                };
                let sources = partial::subset_from_counts(&counts, top_k as usize);
                self.scatter_round(&ShardQuery::FollowReportWith { sources })?
            }
        };
        let total = self.manifest.source_partitions;
        let live_parts = self.manifest.coverage_of(&merged.live);
        let coverage = Coverage { live: live_parts, total };
        if !coverage.is_full() {
            self.degraded.fetch_add(1, Ordering::Relaxed);
            if self.cfg.policy == DegradedPolicy::Fail {
                return Err(ServeError::Degraded { live: live_parts, total });
            }
        }
        let result = partial::finalize(q, merged.partial);
        if self.cfg.cache_enabled && coverage.is_full() {
            self.cache.insert(*q, Arc::new(result.clone()), merged.cache_generation);
        }
        Ok((result, coverage))
    }

    /// Scatter one [`ShardQuery`] over every shard and merge the
    /// survivors in shard order. Dispatch is pipelined, not threaded:
    /// all requests go out first, then replies are read in shard
    /// order, so every worker computes concurrently while the router
    /// pays no per-scatter thread spawn/join cost.
    fn scatter_round(&self, sq: &ShardQuery) -> Result<Round, ServeError> {
        let n = self.slots.len();
        let pending: Vec<Option<(Connection, bool, SpanGuard)>> =
            (0..n).map(|i| self.send_request(i, sq)).collect();
        let mut answers: Vec<Option<ShardAnswer>> = Vec::with_capacity(n);
        for (i, p) in pending.into_iter().enumerate() {
            // The RPC span guard rides alongside the connection and
            // drops here, after the reply — so each shard_rpc span
            // covers its full send→reply interval even though the
            // sends all happen before the first read.
            answers.push(p.and_then(|(conn, reconnected, _rpc_span)| {
                self.read_reply(i, conn, reconnected)
            }));
        }
        // Generation/membership signature: any change — a shard dying,
        // coming back, or bumping its store generation — invalidates
        // the cache before this round's answer can be inserted.
        let sig: Vec<u64> = (0..n)
            .map(|i| answers.iter().flatten().find(|a| a.shard == i).map_or(0, |a| a.generation))
            .collect();
        let cache_generation = self.note_signature(sig);
        let mut live = Vec::new();
        let mut merged: Option<ShardPartial> = None;
        let mut retries = 0u64;
        for a in answers.into_iter().flatten() {
            live.push(a.shard);
            if a.reconnected {
                retries += 1;
            }
            merged = Some(match merged {
                None => a.partial,
                Some(m) => m.merge(a.partial),
            });
        }
        if retries > 0 {
            self.retries.fetch_add(retries, Ordering::Relaxed);
        }
        let Some(partial) = merged else {
            return Err(ServeError::Degraded { live: 0, total: self.manifest.source_partitions });
        };
        Ok(Round { partial, live, cache_generation })
    }

    /// Send-phase half of a scatter: check a connection out of shard
    /// `i`'s pool (or dial with capped backoff) and put the request on
    /// the wire. Returns the connection awaiting its reply, whether it
    /// was freshly dialed, and the RPC span whose context was stamped
    /// into the frame header (the caller holds it open until the reply
    /// lands).
    fn send_request(&self, i: usize, sq: &ShardQuery) -> Option<(Connection, bool, SpanGuard)> {
        let slot = &self.slots[i];
        let mut reconnected = false;
        let mut conn = slot.check_out();
        if conn.is_none() {
            conn = self.dial(i, slot);
            reconnected = conn.is_some();
        }
        let mut conn = conn?;
        // Explicitly parented (span_at, not span): the scatter sends
        // all N requests before reading any reply, so these guards are
        // siblings dropped out of LIFO order — they must not disturb
        // the ambient context under the root span.
        let rpc_span =
            gdelt_obs::span_at("router", "shard_rpc", gdelt_obs::current_trace())
                .arg("shard", i as u64);
        let tc = rpc_span.trace_context();
        match Frame::Request(sq.clone()).write_traced_to(&mut conn.stream, tc.trace_id, tc.span_id)
        {
            Ok(()) => Some((conn, reconnected, rpc_span)),
            Err(e) => {
                self.conn_lost(i, &e.to_string());
                None
            }
        }
    }

    /// Receive-phase half of a scatter: await shard `i`'s reply on the
    /// connection its request went out on. Any failure marks the shard
    /// dead for this scatter and leaves reconnection to the next one.
    fn read_reply(&self, i: usize, mut conn: Connection, reconnected: bool) -> Option<ShardAnswer> {
        let t0 = std::time::Instant::now();
        match Frame::read_from(&mut conn.stream) {
            Ok(Frame::Reply { generation, partial, flight }) => {
                gdelt_obs::global()
                    .histogram(&format!("router_shard_us_{i}"))
                    .record(t0.elapsed().as_micros() as u64);
                self.absorb_flight(i, &flight);
                self.slots[i].check_in(conn, self.cfg.pool_per_shard);
                Some(ShardAnswer { shard: i, generation, partial, reconnected })
            }
            Ok(other) => {
                self.conn_lost(i, &format!("unexpected frame {other:?}"));
                None
            }
            Err(e) => {
                self.conn_lost(i, &e.to_string());
                None
            }
        }
    }

    /// A connection to shard `i` died (the caller already dropped it):
    /// clear its siblings — they share the dead worker — and leave a
    /// flight-recorder trace.
    fn conn_lost(&self, i: usize, why: &str) {
        self.slots[i].clear();
        self.slots[i].failures.fetch_add(1, Ordering::Relaxed);
        gdelt_obs::global().counter("router_shard_loss").inc();
        gdelt_obs::flight_warn("shard", "shard_lost", format!("shard {i}: {why}"));
    }

    /// Dial a shard with the capped-backoff schedule and read its
    /// hello. Every failed attempt leaves its own flight event (with
    /// the shard id and attempt number), so a dump distinguishes
    /// "first dial lost a race with a restart" from "down the whole
    /// window"; the terminal `dial_failed` still fires only once.
    fn dial(&self, i: usize, slot: &ShardSlot) -> Option<Connection> {
        let attempts = self.cfg.reconnect.max_attempts;
        for attempt in 0..attempts {
            let wait = self.cfg.reconnect.delay(attempt);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            let why = match TcpStream::connect(&slot.addr) {
                Ok(mut stream) => {
                    let _ = stream.set_read_timeout(Some(self.cfg.read_timeout));
                    let _ = stream.set_nodelay(true);
                    match Frame::read_from(&mut stream) {
                        Ok(Frame::Hello(hello)) => {
                            slot.failures.store(0, Ordering::Relaxed);
                            return Some(Connection { stream, hello });
                        }
                        Ok(other) => format!("expected hello, got {}", frame_label(&other)),
                        Err(e) => format!("hello read failed: {e}"),
                    }
                }
                Err(e) => format!("connect failed: {e}"),
            };
            gdelt_obs::flight_warn(
                "shard",
                "dial_retry",
                format!(
                    "shard {i} at {}: attempt {}/{attempts} {why}",
                    slot.addr,
                    attempt + 1
                ),
            );
        }
        gdelt_obs::flight_warn(
            "shard",
            "dial_failed",
            format!("shard {i} at {} unreachable after {attempts} attempts", slot.addr),
        );
        None
    }

    /// Re-record flight events a worker piggybacked on a reply, at
    /// most once per event: the per-shard cursor advances with
    /// `fetch_max`, so whichever racing reply observes an event first
    /// claims it and every later tail containing the same `seq` skips
    /// it.
    fn absorb_flight(&self, i: usize, events: &[FlightForward]) {
        let Some(cursor) = self.flight_cursors.get(i) else { return };
        for ev in events {
            let prev = cursor.fetch_max(ev.seq + 1, Ordering::Relaxed);
            if prev > ev.seq {
                continue;
            }
            let level = match ev.level {
                0 => FlightLevel::Info,
                1 => FlightLevel::Warn,
                _ => FlightLevel::Error,
            };
            gdelt_obs::flight(
                level,
                ev.component.clone(),
                ev.code.clone(),
                format!("[shard {i} seq {} +{}us] {}", ev.seq, ev.t_us, ev.detail),
            );
        }
    }

    /// One round-trip request/reply on shard `i`'s connection, pooled
    /// on success (shared shape of the metrics scrape and trace
    /// drain).
    fn exchange(&self, i: usize, request: Frame) -> Option<Frame> {
        let slot = &self.slots[i];
        let mut conn = slot.check_out().or_else(|| self.dial(i, slot))?;
        let reply =
            request.write_to(&mut conn.stream).and_then(|()| Frame::read_from(&mut conn.stream));
        match reply {
            Ok(frame) => {
                slot.check_in(conn, self.cfg.pool_per_shard);
                Some(frame)
            }
            Err(e) => {
                self.conn_lost(i, &e.to_string());
                None
            }
        }
    }

    /// Scrape every worker's metrics registry. Returns per-shard
    /// `Some(snapshot)` or `None` when the shard is unreachable or
    /// replied malformed JSON. Piggybacked flight events are absorbed
    /// on the way — a scrape doubles as a flight sync even for shards
    /// that have not answered a query recently.
    pub fn scrape_metrics(&self) -> Vec<Option<RegistrySnapshot>> {
        (0..self.slots.len())
            .map(|i| match self.exchange(i, Frame::MetricsRequest)? {
                Frame::MetricsReply { snapshot_json, flight } => {
                    self.absorb_flight(i, &flight);
                    match RegistrySnapshot::from_json(&snapshot_json) {
                        Ok(snap) => Some(snap),
                        Err(e) => {
                            gdelt_obs::flight_warn(
                                "shard",
                                "bad_metrics_snapshot",
                                format!("shard {i}: {e}"),
                            );
                            None
                        }
                    }
                }
                other => {
                    self.conn_lost(i, &format!("expected metrics reply, got {other:?}"));
                    None
                }
            })
            .collect()
    }

    /// Drain every worker's completed spans for trace stitching.
    /// Returns per-shard `Some((pid, spans))` or `None` when
    /// unreachable. Draining is destructive on the worker side, so
    /// collect once at the end of a traced run.
    pub fn collect_traces(&self) -> Vec<Option<(u32, Vec<WireSpan>)>> {
        (0..self.slots.len())
            .map(|i| match self.exchange(i, Frame::TraceRequest)? {
                Frame::TraceReply { pid, spans } => Some((pid, spans)),
                other => {
                    self.conn_lost(i, &format!("expected trace reply, got {other:?}"));
                    None
                }
            })
            .collect()
    }

    /// Record a per-shard generation signature (0 = dead); any change
    /// invalidates the whole cache, so a shard death or store swap can
    /// never serve a stale full-coverage answer. Returns the cache
    /// generation to stamp fresh inserts with.
    fn note_signature(&self, sig: Vec<u64>) -> u64 {
        let mut last = self.last_sig.lock().unwrap_or_else(|e| e.into_inner());
        if *last != sig {
            *last = sig;
            // analyze: allow(guard_across_await_or_call): last_sig -> cache-shard locks is the fixed acquisition order; the compare-and-invalidate must be atomic or two racing scatters could each see a stale signature
            let next = self.cache.generation() + 1;
            // analyze: allow(guard_across_await_or_call): last_sig -> cache-shard locks is the fixed acquisition order; the compare-and-invalidate must be atomic or two racing scatters could each see a stale signature
            self.cache.invalidate_all(next);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        drop(last);
        self.cache.generation()
    }

    /// Health-probe every shard; returns per-shard
    /// `Some((live, total, generation))` or `None` when unreachable.
    /// Probing runs the same signature check as a scatter, so a chaos
    /// harness can detect shard loss (and force cache invalidation)
    /// without issuing a query.
    pub fn probe(&self) -> Vec<Option<(u32, u32, u64)>> {
        let healths: Vec<Option<(u32, u32, u64)>> = (0..self.slots.len())
            .map(|i| {
                let slot = &self.slots[i];
                let mut conn = slot.check_out().or_else(|| self.dial(i, slot))?;
                let reply = Frame::HealthProbe
                    .write_to(&mut conn.stream)
                    .and_then(|()| Frame::read_from(&mut conn.stream));
                match reply {
                    Ok(Frame::Health(h)) => {
                        slot.check_in(conn, self.cfg.pool_per_shard);
                        Some((h.live, h.total, h.generation))
                    }
                    _ => {
                        self.conn_lost(i, "health probe failed");
                        None
                    }
                }
            })
            .collect();
        let sig = healths.iter().map(|h| h.map_or(0, |(_, _, g)| g)).collect();
        self.note_signature(sig);
        healths
    }

    /// Hello metadata of currently-pooled shard connections
    /// (testing/obs aid).
    pub fn connected_hellos(&self) -> Vec<Option<Hello>> {
        self.slots
            .iter()
            .map(|s| {
                s.pool.lock().unwrap_or_else(|e| e.into_inner()).first().map(|c| c.hello.clone())
            })
            .collect()
    }
}

/// Short frame label for dial diagnostics (full `Debug` of a frame
/// can embed a whole partial).
fn frame_label(f: &Frame) -> &'static str {
    match f {
        Frame::Hello(_) => "hello",
        Frame::Request(_) => "request",
        Frame::Reply { .. } => "reply",
        Frame::HealthProbe => "health_probe",
        Frame::Health(_) => "health",
        Frame::BumpGeneration => "bump_generation",
        Frame::Query(_) => "query",
        Frame::Result(_) => "result",
        Frame::Error { .. } => "error",
        Frame::MetricsRequest => "metrics_request",
        Frame::MetricsReply { .. } => "metrics_reply",
        Frame::TraceRequest => "trace_request",
        Frame::TraceReply { .. } => "trace_reply",
    }
}

/// A merged scatter round.
struct Round {
    partial: ShardPartial,
    /// Shard ids that answered, ascending.
    live: Vec<usize>,
    /// Cache generation after this round's signature check.
    cache_generation: u64,
}
