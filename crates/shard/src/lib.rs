//! Multi-process serve tier: shard stores, wire protocol, workers and
//! the scatter-gather router.
//!
//! The single-node engine answers a query by partitioning a scan,
//! computing per-thread partials and merging them associatively
//! (`ExecContext::map_reduce`). This crate lifts that exact structure
//! across process boundaries:
//!
//! 1. [`split::split_store`] partitions a columnar store into N shard
//!    stores by contiguous partition range (a manifest records what
//!    each shard holds);
//! 2. a [`worker::ShardWorker`] process loads one shard and answers
//!    [`wire`]-framed `ShardQuery` requests with sufficient-statistic
//!    partials (`gdelt_engine::partial`);
//! 3. the [`router::Router`] admits queries, scatters them over the
//!    workers, merges the surviving partials with the engine's own
//!    associative merge, and finalizes the **bit-identical**
//!    single-process answer.
//!
//! Shard death degrades, never corrupts: a lost worker maps onto the
//! store-level `Coverage { live, total }` vocabulary (its partition
//! range is treated as quarantined), governed by the same
//! `DegradedPolicy` the in-process service uses. Only full-coverage
//! answers are cached, and any shard generation or membership change
//! invalidates the router cache, so partial answers can never go
//! stale. The equivalence proptests in `tests/` pin all of this down.

#![warn(missing_docs)]

pub mod router;
pub mod split;
pub mod wire;
pub mod worker;

pub use router::{ReconnectPolicy, Router, RouterConfig, RouterStats};
pub use split::{shard_range, split_store, ShardEntry, ShardManifest};
pub use wire::{FlightForward, Frame, Health, Hello, WireError, WireSpan};
pub use worker::{ShardWorker, WorkerConfig};
