//! End-to-end socket integration: real shard stores on disk, real
//! workers behind real TCP connections, a real router — asserting the
//! full tentpole contract:
//!
//! * router answers are bit-identical to single-process `run_query`;
//! * a killed worker degrades the answer to **exactly** the surviving
//!   partition coverage (`ServePartial`) or fails with
//!   `ServeError::Degraded` (`Fail`);
//! * no stale cache entries survive a shard death or a generation
//!   bump;
//! * a revived worker restores full coverage via reconnect.

use gdelt_engine::{run_query, ExecContext, Query, SeriesKind, TopKKind};
use gdelt_serve::{DegradedPolicy, ServeError};
use gdelt_shard::router::{ReconnectPolicy, Router, RouterConfig};
use gdelt_shard::wire::Frame;
use gdelt_shard::worker::{ShardWorker, WorkerConfig};
use gdelt_shard::{split_store, ShardManifest};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PARTS: u32 = 8;
const N_SHARDS: u32 = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shard-socket-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A controllable in-process worker: `alive == false` makes it drop
/// connections (existing and new) without replying — to the router
/// that is indistinguishable from a killed process. Flipping it back
/// "revives" the worker on the same port.
struct TestWorker {
    addr: String,
    alive: Arc<AtomicBool>,
}

impl TestWorker {
    fn spawn(worker: Arc<ShardWorker>) -> TestWorker {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let alive = Arc::new(AtomicBool::new(true));
        let accept_alive = Arc::clone(&alive);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                if !accept_alive.load(Ordering::Acquire) {
                    continue; // dropped before hello: dial fails
                }
                let w = Arc::clone(&worker);
                let a = Arc::clone(&accept_alive);
                std::thread::spawn(move || {
                    if Frame::Hello(w.hello()).write_to(&mut stream).is_err() {
                        return;
                    }
                    loop {
                        let Ok(frame) = Frame::read_from(&mut stream) else { return };
                        if !a.load(Ordering::Acquire) {
                            return; // die mid-request: peer sees EOF
                        }
                        if w.handle(frame).write_to(&mut stream).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        TestWorker { addr, alive }
    }

    fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }
}

struct Fixture {
    dataset: gdelt_columnar::Dataset,
    manifest: ShardManifest,
    workers: Vec<TestWorker>,
}

fn fixture(tag: &str) -> Fixture {
    let dir = temp_dir(tag);
    let dataset = gdelt_synth::generate_dataset(&gdelt_synth::scenario::tiny(7)).0;
    let store = dir.join("store.gdhpc");
    gdelt_columnar::binfmt::save_with_partitions(&store, &dataset, PARTS).expect("save");
    let shard_dir = dir.join("shards");
    let manifest = split_store(&store, &shard_dir, N_SHARDS).expect("split");
    assert_eq!(manifest, ShardManifest::load(&shard_dir).expect("manifest reload"));
    let workers: Vec<TestWorker> = (0..N_SHARDS as usize)
        .map(|i| {
            let e = &manifest.shards[i];
            let cfg = WorkerConfig::new(
                manifest.shard_path(&shard_dir, i),
                i as u32,
                e.partitions,
                e.ev_row_base,
            );
            TestWorker::spawn(ShardWorker::load(cfg).expect("load shard"))
        })
        .collect();
    Fixture { dataset, manifest, workers }
}

fn router(f: &Fixture, policy: DegradedPolicy, cache: bool) -> Router {
    Router::new(
        f.manifest.clone(),
        RouterConfig {
            addrs: f.workers.iter().map(|w| w.addr.clone()).collect(),
            policy,
            cache_enabled: cache,
            read_timeout: Duration::from_secs(5),
            reconnect: ReconnectPolicy { max_attempts: 2, backoff_ms: 1, cap_ms: 5 },
            ..RouterConfig::default()
        },
    )
}

fn all_queries() -> Vec<Query> {
    vec![
        Query::CoReport,
        Query::FollowReport { top_k: 5 },
        Query::CrossCountry,
        Query::Delay,
        Query::TimeSeries(SeriesKind::Events),
        Query::TimeSeries(SeriesKind::Articles),
        Query::TimeSeries(SeriesKind::ActiveSources),
        Query::TimeSeries(SeriesKind::LateArticles { threshold: 96 }),
        Query::TopK { kind: TopKKind::Publishers, k: 5 },
        Query::TopK { kind: TopKKind::Events, k: 5 },
    ]
}

#[test]
fn router_is_bit_identical_to_single_process() {
    let f = fixture("identical");
    let r = router(&f, DegradedPolicy::ServePartial, true);
    let ctx = ExecContext::builder().threads(2).build();
    for q in all_queries() {
        let expect = run_query(&ctx, &f.dataset, &q);
        let got = r.query(&q).expect("router answer");
        assert!(got.coverage.is_full(), "{q}: full coverage expected");
        assert_eq!(*got.result, expect, "{q}: router vs single-process");
        // Second ask is a cache hit and still identical.
        let again = r.query(&q).expect("cached answer");
        assert_eq!(*again.result, expect, "{q}: cached");
    }
    let stats = r.stats();
    let n = all_queries().len() as u64;
    assert_eq!(stats.completed, 2 * n);
    assert_eq!(stats.hits, n);
    assert_eq!(stats.misses, n);
    assert_eq!(stats.completed, stats.hits + stats.misses, "hit/miss invariant");
}

#[test]
fn shard_death_degrades_to_exact_surviving_coverage() {
    let f = fixture("degrade");
    let r = router(&f, DegradedPolicy::ServePartial, true);
    let q = Query::CrossCountry;

    let full = r.query(&q).expect("initial answer");
    assert!(full.coverage.is_full());

    // Kill shard 1 (its partition range per shard_range(8,3,1) is
    // [2,5) — 3 partitions), so exactly 5 of 8 survive.
    f.workers[1].kill();
    let dead_parts = f.manifest.shards[1].partitions;
    let live_parts = f.manifest.source_partitions - dead_parts;

    // The router learns of the death on its next shard contact; the
    // probe detects it and invalidates the cache, so the pre-kill
    // full-coverage entry can never be served past this point.
    let gen_before = r.generation();
    let probed = r.probe();
    assert!(probed[1].is_none(), "dead shard must fail its health probe");
    let degraded = r.query(&q).expect("degraded answer");
    assert_eq!(degraded.coverage.live, live_parts, "exact surviving coverage");
    assert_eq!(degraded.coverage.total, f.manifest.source_partitions);
    assert!(r.generation() > gen_before, "shard loss must bump the cache generation");

    // No stale cache: the full-coverage entry inserted before the kill
    // must not be served now. A fresh ask recomputes (miss), and the
    // degraded answer is never cached, so asking twice is two misses.
    let s1 = r.stats();
    let again = r.query(&q).expect("degraded answer again");
    let s2 = r.stats();
    assert_eq!(again.coverage.live, live_parts);
    assert_eq!(s2.misses, s1.misses + 1, "degraded answers are never cache hits");
    assert_eq!(s2.completed, s2.hits + s2.misses, "hit/miss invariant under degradation");
    assert!(s2.degraded >= 2);

    // The degraded answer equals single-process run_query over only
    // the surviving shards' rows — verified via the coverage fraction
    // here; bit-level equality of partial answers is pinned by the
    // chaos arm against restrict_to_partitions.

    // Revive: reconnect restores full coverage and the answer matches
    // the pre-kill full answer bit-for-bit.
    f.workers[1].revive();
    let recovered = r.query(&q).expect("recovered answer");
    assert!(recovered.coverage.is_full(), "full coverage after revive");
    assert_eq!(recovered.result, full.result, "recovered answer identical");
}

#[test]
fn fail_policy_refuses_partial_answers() {
    let f = fixture("failpolicy");
    let r = router(&f, DegradedPolicy::Fail, false);
    assert!(r.query(&Query::CoReport).is_ok());
    f.workers[0].kill();
    f.workers[2].kill();
    let live = f.manifest.shards[1].partitions;
    match r.query(&Query::CoReport) {
        Err(ServeError::Degraded { live: l, total }) => {
            assert_eq!(l, live);
            assert_eq!(total, f.manifest.source_partitions);
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    // All shards dead: Degraded { live: 0 } regardless of policy.
    f.workers[1].kill();
    match r.query(&Query::CoReport) {
        Err(ServeError::Degraded { live: 0, total }) => {
            assert_eq!(total, f.manifest.source_partitions)
        }
        other => panic!("expected Degraded 0, got {other:?}"),
    }
}

#[test]
fn generation_bump_propagates_and_invalidates_cache() {
    let f = fixture("genbump");
    let r = router(&f, DegradedPolicy::ServePartial, true);
    let q = Query::TimeSeries(SeriesKind::Events);
    let _ = r.query(&q).expect("prime cache");
    let hits_before = r.stats().hits;
    let gen_before = r.generation();

    // Bump shard 0's store generation out-of-band (as a store swap
    // would) and let the router notice via a health probe.
    let mut stream = std::net::TcpStream::connect(&f.workers[0].addr).expect("connect");
    let hello = Frame::read_from(&mut stream).expect("hello");
    assert!(matches!(hello, Frame::Hello(_)));
    Frame::BumpGeneration.write_to(&mut stream).expect("bump");
    let health = Frame::read_from(&mut stream).expect("health");
    let Frame::Health(h) = health else { panic!("expected health, got {health:?}") };
    assert_eq!(h.generation, 2, "bumped worker generation");
    drop(stream);

    let probed = r.probe();
    assert_eq!(probed.iter().flatten().count(), 3, "all shards probed live");
    assert!(r.generation() > gen_before, "probe must pick up the new generation");

    // The old cached answer is gone: same query misses and recomputes.
    let again = r.query(&q).expect("recompute");
    assert!(again.coverage.is_full());
    assert_eq!(r.stats().hits, hits_before, "no hit on an invalidated entry");
}

#[test]
fn metrics_federation_over_the_wire() {
    let f = fixture("federation");
    let r = router(&f, DegradedPolicy::ServePartial, false);
    for q in all_queries() {
        r.query(&q).expect("scatter answer");
    }

    let scraped = r.scrape_metrics();
    assert_eq!(scraped.len(), N_SHARDS as usize);
    let parts: Vec<(String, gdelt_obs::RegistrySnapshot)> = scraped
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i.to_string(), s.expect("healthy shard scrapes")))
        .collect();
    for (label, snap) in &parts {
        let h = snap
            .hists
            .get("shard_worker_query_us")
            .unwrap_or_else(|| panic!("shard {label} snapshot missing the query histogram"));
        assert!(h.count > 0, "shard {label} forwarded an empty query histogram");
    }

    // The federated view obeys the merge law: its count is exactly the
    // sum of the per-shard counts (associativity/commutativity of the
    // underlying merge is proptest-pinned in the obs crate).
    let sum: u64 = parts.iter().map(|(_, s)| s.hists["shard_worker_query_us"].count).sum();
    let mut fed = gdelt_obs::RegistrySnapshot::default();
    for (_, part) in &parts {
        fed.merge(part);
    }
    assert_eq!(fed.hists["shard_worker_query_us"].count, sum, "federated count = per-shard sum");

    // And the rendered exposition carries both views and passes the
    // strict validator.
    let text = gdelt_obs::render_federated(&parts);
    gdelt_obs::validate_prometheus(&text).expect("federated exposition validates");
    assert!(
        text.contains("shard_worker_query_us_count{shard=\"0\"}"),
        "per-shard labeled sample missing:\n{text}"
    );
}

#[test]
fn worker_rejects_unsupported_frames_with_typed_error() {
    let f = fixture("badframe");
    let mut stream = std::net::TcpStream::connect(&f.workers[0].addr).expect("connect");
    let _ = Frame::read_from(&mut stream).expect("hello");
    Frame::Query(Query::CoReport).write_to(&mut stream).expect("send");
    match Frame::read_from(&mut stream).expect("reply") {
        Frame::Error { code, message } => {
            assert_eq!(code, 1);
            assert!(message.contains("unsupported"), "{message}");
        }
        other => panic!("expected error frame, got {other:?}"),
    }
}
