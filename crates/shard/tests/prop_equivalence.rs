//! The sharded tier's central theorem, proptest-pinned: for every
//! query family, on seeded synthetic stores split 1/2/4/8 ways by
//! contiguous partition range, merging the shard partials in **any
//! permutation** (and any association — linear or tree) yields a
//! result bit-identical to single-process `run_query` over the
//! unsharded dataset. Each partial additionally round-trips through
//! the wire codec on its way to the merge, so the equality covers the
//! framed bytes, not just the in-memory structs.

use gdelt_columnar::degraded::restrict_to_partitions;
use gdelt_columnar::Dataset;
use gdelt_engine::partial::{
    plan, run_shard_query, subset_from_counts, ShardPartial, ShardPlan, ShardQuery,
};
use gdelt_engine::{run_query, ExecContext, Query, QueryResult, SeriesKind, TopKKind};
use gdelt_shard::shard_range;
use gdelt_shard::wire::Frame;
use proptest::prelude::*;

const PARTS: u32 = 8;

fn all_queries(k: u32, threshold: u32) -> Vec<Query> {
    vec![
        Query::CoReport,
        Query::FollowReport { top_k: k },
        Query::CrossCountry,
        Query::Delay,
        Query::TimeSeries(SeriesKind::Events),
        Query::TimeSeries(SeriesKind::Articles),
        Query::TimeSeries(SeriesKind::ActiveSources),
        Query::TimeSeries(SeriesKind::LateArticles { threshold }),
        Query::TopK { kind: TopKKind::Publishers, k },
        Query::TopK { kind: TopKKind::Events, k },
    ]
}

/// Contiguous partition-range split; returns each shard's dataset and
/// its global event-row base.
fn split(d: &Dataset, n_shards: u32) -> Vec<(Dataset, u64)> {
    let mut shards = Vec::new();
    let mut ev_base = 0u64;
    for s in 0..n_shards {
        let (lo, hi) = shard_range(PARTS, n_shards, s);
        let quarantined: Vec<u32> = (0..PARTS).filter(|p| *p < lo || *p >= hi).collect();
        let shard = restrict_to_partitions(d, PARTS, &quarantined).expect("split");
        let events = shard.events.len() as u64;
        shards.push((shard, ev_base));
        ev_base += events;
    }
    shards
}

/// Permutation of `0..n` from a Lehmer code seeded by `seed` — lets
/// proptest range over every ordering without a shuffle primitive.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for remaining in (1..=n).rev() {
        let idx = (seed % remaining as u64) as usize;
        seed /= remaining as u64;
        out.push(pool.remove(idx));
    }
    out
}

/// Push one partial through the wire codec (Reply frame) and back.
fn through_wire(p: ShardPartial) -> ShardPartial {
    let bytes = Frame::Reply { generation: 1, partial: p, flight: Vec::new() }.encode();
    let (frame, _) = Frame::decode(&bytes).expect("reply frame decodes");
    match frame {
        Frame::Reply { partial, .. } => partial,
        other => panic!("wrong frame back: {other:?}"),
    }
}

/// Merge partials in the permuted order, optionally as a balanced
/// tree instead of a left fold.
fn merge_in_order(partials: &[ShardPartial], order: &[usize], tree: bool) -> ShardPartial {
    let picked: Vec<ShardPartial> = order.iter().map(|&i| partials[i].clone()).collect();
    if !tree {
        return picked.into_iter().reduce(ShardPartial::merge).expect("nonempty");
    }
    let mut layer = picked;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a.merge(b)),
                None => next.push(a),
            }
        }
        layer = next;
    }
    layer.into_iter().next().expect("nonempty")
}

/// Full scatter-gather for `q` with a chosen merge order/shape.
fn scatter(
    ctx: &ExecContext,
    shards: &[(Dataset, u64)],
    q: &Query,
    order: &[usize],
    tree: bool,
) -> QueryResult {
    let round = |sq: &ShardQuery| -> Vec<ShardPartial> {
        shards.iter().map(|(d, base)| through_wire(run_shard_query(ctx, d, sq, *base))).collect()
    };
    match plan(q) {
        ShardPlan::Direct(sq) => {
            gdelt_engine::partial::finalize(q, merge_in_order(&round(&sq), order, tree))
        }
        ShardPlan::PublishersThenFollow { top_k } => {
            let merged = merge_in_order(&round(&ShardQuery::PublisherCounts), order, tree);
            let ShardPartial::PublisherCounts(counts) = merged else {
                panic!("wrong partial family");
            };
            let sources = subset_from_counts(&counts, top_k as usize);
            let partials = round(&ShardQuery::FollowReportWith { sources });
            gdelt_engine::partial::finalize(q, merge_in_order(&partials, order, tree))
        }
    }
}

proptest! {
    // Each case builds a corpus, splits it three ways and runs every
    // family twice per split — keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_merge_permutation_matches_single_process(
        seed in 0u64..10_000,
        threads in 1usize..4,
        k in 1u32..20,
        threshold in 1u32..800,
        perm_seed in any::<u64>(),
        tree in any::<bool>(),
    ) {
        let d = gdelt_synth::generate_dataset(&gdelt_synth::scenario::tiny(seed)).0;
        let ctx = ExecContext::builder().threads(threads).build();
        for n_shards in [1u32, 2, 4, 8] {
            let shards = split(&d, n_shards);
            let order = permutation(n_shards as usize, perm_seed);
            for q in all_queries(k, threshold) {
                let expect = run_query(&ctx, &d, &q);
                let got = scatter(&ctx, &shards, &q, &order, tree);
                prop_assert_eq!(
                    got,
                    expect,
                    "{} over {} shards, order {:?}, tree={}",
                    q,
                    n_shards,
                    &order,
                    tree
                );
            }
        }
    }

    /// Merge really is commutative pairwise, not just end-to-end:
    /// `a.merge(b) == b.merge(a)` for every adjacent shard pair.
    #[test]
    fn pairwise_merge_commutes(seed in 0u64..10_000, k in 1u32..20) {
        let d = gdelt_synth::generate_dataset(&gdelt_synth::scenario::tiny(seed)).0;
        let ctx = ExecContext::builder().threads(2).build();
        let shards = split(&d, 4);
        for q in all_queries(k, 96) {
            let ShardPlan::Direct(sq) = plan(&q) else { continue };
            let ps: Vec<ShardPartial> = shards
                .iter()
                .map(|(sd, base)| run_shard_query(&ctx, sd, &sq, *base))
                .collect();
            for w in ps.windows(2) {
                let ab = w[0].clone().merge(w[1].clone());
                let ba = w[1].clone().merge(w[0].clone());
                prop_assert_eq!(ab, ba, "{} pairwise commutativity", q);
            }
        }
    }
}
