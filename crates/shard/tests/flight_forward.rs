//! Cross-process flight forwarding, pinned end-to-end over real TCP:
//! workers piggyback their recent flight-recorder events on replies
//! and metrics scrapes; the router re-records them **at most once**
//! via per-shard monotone sequence cursors.
//!
//! This lives in its own integration-test binary (own process, own
//! flight ring): the assertions below count ring events by exact
//! re-record prefix, and any other test's router absorbing replies
//! concurrently would inflate the count.

use gdelt_shard::router::{Router, RouterConfig};
use gdelt_shard::split_store;
use gdelt_shard::wire::Frame;
use gdelt_shard::worker::{ShardWorker, WorkerConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const PARTS: u32 = 8;

/// Minimal in-process worker loop: hello, then request/reply until EOF.
fn spawn_worker(worker: Arc<ShardWorker>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let w = Arc::clone(&worker);
            std::thread::spawn(move || {
                if Frame::Hello(w.hello()).write_to(&mut stream).is_err() {
                    return;
                }
                while let Ok(frame) = Frame::read_from(&mut stream) {
                    if w.handle(frame).write_to(&mut stream).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn flight_forwarding_is_at_most_once() {
    // Single-shard fleet so the cursor arithmetic below has exactly one
    // forwarding path to reason about.
    let dir = std::env::temp_dir().join(format!("shard-flightfwd-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let dataset = gdelt_synth::generate_dataset(&gdelt_synth::scenario::tiny(11)).0;
    let store = dir.join("store.gdhpc");
    gdelt_columnar::binfmt::save_with_partitions(&store, &dataset, PARTS).expect("save");
    let shard_dir: PathBuf = dir.join("shards");
    let manifest = split_store(&store, &shard_dir, 1).expect("split");
    let e = &manifest.shards[0];
    let cfg =
        WorkerConfig::new(manifest.shard_path(&shard_dir, 0), 0, e.partitions, e.ev_row_base);
    let addr = spawn_worker(ShardWorker::load(cfg).expect("load shard"));

    // Record a distinctive event and learn its ring sequence number.
    gdelt_obs::flight_warn("test", "synthetic_fault", "forwarding probe".to_string());
    let s0 = gdelt_obs::flight_snapshot()
        .iter()
        .rev()
        .find(|ev| ev.code == "synthetic_fault")
        .expect("probe event recorded")
        .seq;

    // Worker side: the piggyback is stateless — two scrapes forward the
    // probe with the SAME sequence number, which is what lets the
    // router's cursor make re-recording at-most-once.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let _ = Frame::read_from(&mut stream).expect("hello");
    for round in 0..2 {
        Frame::MetricsRequest.write_to(&mut stream).expect("scrape");
        match Frame::read_from(&mut stream).expect("reply") {
            Frame::MetricsReply { snapshot_json, flight } => {
                gdelt_obs::RegistrySnapshot::from_json(&snapshot_json)
                    .expect("snapshot round-trips");
                let probe = flight
                    .iter()
                    .find(|ev| ev.code == "synthetic_fault")
                    .unwrap_or_else(|| panic!("round {round}: probe not piggybacked"));
                assert_eq!(probe.seq, s0, "round {round}: forwarded seq must be stable");
            }
            other => panic!("expected metrics reply, got {other:?}"),
        }
    }
    drop(stream);

    // Router side: scrape twice through the real router; the per-shard
    // cursor must re-record the probe exactly once. (The worker shares
    // this test process's ring, so the first re-record is itself
    // forwarded on the second scrape — but with a fresh sequence
    // number, hence a fresh `[shard 0 seq N ...]` prefix; the
    // original's prefix can open exactly one ring event.)
    let r = Router::new(
        manifest.clone(),
        RouterConfig {
            addrs: vec![addr.clone()],
            cache_enabled: false,
            read_timeout: Duration::from_secs(5),
            ..RouterConfig::default()
        },
    );
    for s in r.scrape_metrics() {
        s.expect("healthy scrape");
    }
    for s in r.scrape_metrics() {
        s.expect("healthy scrape");
    }
    let prefix = format!("[shard 0 seq {s0} ");
    let rerecorded = gdelt_obs::flight_snapshot()
        .iter()
        .filter(|ev| ev.detail.starts_with(&prefix))
        .count();
    assert_eq!(rerecorded, 1, "probe must be re-recorded exactly once across two scrapes");

    // Query replies piggyback too: the second re-record (of the first
    // one) rides the next reply or scrape, proving replies and scrapes
    // share one forwarding path — and still never duplicate a seq.
    let _ = r.query(&gdelt_engine::Query::CoReport).expect("scatter answer");
    let after_query = gdelt_obs::flight_snapshot()
        .iter()
        .filter(|ev| ev.detail.starts_with(&prefix))
        .count();
    assert_eq!(after_query, 1, "reply-path forwarding must respect the same cursor");
}
