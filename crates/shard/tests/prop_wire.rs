//! Wire-protocol round-trip properties: arbitrary `Query` and
//! `QueryResult` values (and the shard-internal frames) must
//! encode→frame→decode bit-identically, and truncated or corrupted
//! frames must come back as typed [`WireError`]s — never a panic,
//! never a silently-wrong value.

use gdelt_engine::coreport::CountryCoReport;
use gdelt_engine::crossreport::CrossReport;
use gdelt_engine::delay::DelayStats;
use gdelt_engine::filter::Bitmap;
use gdelt_engine::followreport::FollowReport;
use gdelt_engine::partial::{ActiveSourcesPartial, DelayHist, ShardPartial, ShardQuery};
use gdelt_engine::timeseries::QuarterlySeries;
use gdelt_engine::{Matrix, Query, QueryResult, SeriesKind, TopKKind};
use gdelt_model::ids::SourceId;
use gdelt_model::time::Quarter;
use gdelt_shard::wire::{
    FlightForward, Frame, Health, Hello, WireError, WireSpan, CHECKSUM_LEN, HEADER_LEN,
    HEADER_LEN_V1, VERSION, VERSION_V1,
};
use proptest::prelude::*;

fn series_kind() -> impl Strategy<Value = SeriesKind> {
    prop_oneof![
        Just(SeriesKind::Events),
        Just(SeriesKind::Articles),
        Just(SeriesKind::ActiveSources),
        (1u32..2000).prop_map(|threshold| SeriesKind::LateArticles { threshold }),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    prop_oneof![
        Just(Query::CoReport),
        (1u32..64).prop_map(|top_k| Query::FollowReport { top_k }),
        Just(Query::CrossCountry),
        Just(Query::Delay),
        series_kind().prop_map(Query::TimeSeries),
        (1u32..64).prop_map(|k| Query::TopK { kind: TopKKind::Publishers, k }),
        (1u32..64).prop_map(|k| Query::TopK { kind: TopKKind::Events, k }),
    ]
}

fn matrix() -> impl Strategy<Value = Matrix<u64>> {
    (0usize..5, 0usize..5, prop::collection::vec(0u64..1_000_000, 0..25)).prop_map(
        |(rows, cols, data)| {
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m.set(r, c, data.get(r * cols + c).copied().unwrap_or(7));
                }
            }
            m
        },
    )
}

fn vec_u64() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..u64::MAX / 2, 0..12)
}

fn subset() -> impl Strategy<Value = Vec<SourceId>> {
    prop::collection::vec((0u32..10_000).prop_map(SourceId), 0..10)
}

fn series() -> impl Strategy<Value = QuarterlySeries> {
    (
        (1990i16..2030, 1u8..5),
        prop::collection::vec((0u64..1_000_000).prop_map(|v| v as f64), 0..16),
    )
        .prop_map(|((year, q), values)| QuarterlySeries { base: Quarter { year, q }, values })
}

fn delay_stats() -> impl Strategy<Value = DelayStats> {
    (0u64..1_000_000, 0u32..40_000, 0u32..40_000, 0f64..40_000.0, 0u32..40_000)
        .prop_map(|(count, min, max, mean, median)| DelayStats { count, min, max, mean, median })
}

fn query_result() -> impl Strategy<Value = QueryResult> {
    prop_oneof![
        (matrix(), vec_u64()).prop_map(|(pairs, event_counts)| QueryResult::CoReport(
            CountryCoReport { pairs, event_counts }
        )),
        (subset(), matrix(), vec_u64()).prop_map(|(subset, follow_counts, articles)| {
            QueryResult::FollowReport(FollowReport { subset, follow_counts, articles })
        }),
        (matrix(), vec_u64(), vec_u64()).prop_map(
            |(counts, articles_by_publisher, events_by_country)| {
                QueryResult::CrossCountry(CrossReport {
                    counts,
                    articles_by_publisher,
                    events_by_country,
                })
            }
        ),
        prop::collection::vec(delay_stats(), 0..8).prop_map(QueryResult::Delay),
        series().prop_map(QueryResult::TimeSeries),
        prop::collection::vec(((0u32..10_000).prop_map(SourceId), 0u64..1_000_000), 0..10)
            .prop_map(QueryResult::TopPublishers),
        prop::collection::vec((0usize..1_000_000, 0u64..1_000_000), 0..10)
            .prop_map(QueryResult::TopEvents),
    ]
}

fn shard_query() -> impl Strategy<Value = ShardQuery> {
    prop_oneof![
        Just(ShardQuery::CoReport),
        subset().prop_map(|sources| ShardQuery::FollowReportWith { sources }),
        Just(ShardQuery::CrossCountry),
        Just(ShardQuery::Delay),
        series_kind().prop_map(ShardQuery::TimeSeries),
        Just(ShardQuery::PublisherCounts),
        (1u32..64).prop_map(|k| ShardQuery::TopEvents { k }),
    ]
}

fn delay_hist() -> impl Strategy<Value = DelayHist> {
    prop::collection::vec((0u32..40_000, 1u64..1_000), 0..8).prop_map(|mut runs| {
        runs.sort();
        runs.dedup_by_key(|r| r.0);
        DelayHist { runs }
    })
}

fn active_sources() -> impl Strategy<Value = ShardPartial> {
    (
        0usize..100,
        -200i32..200,
        prop::collection::vec(prop::collection::vec(any::<u16>(), 0..6), 0..4),
    )
        .prop_map(|(n_sources, base, qsets)| {
            let quarters = qsets
                .into_iter()
                .map(|bits| {
                    let mut bm = Bitmap::new(n_sources);
                    if n_sources > 0 {
                        for b in bits {
                            bm.set(b as usize % n_sources);
                        }
                    }
                    bm
                })
                .collect();
            ShardPartial::ActiveSources(ActiveSourcesPartial { base, quarters })
        })
}

fn shard_partial() -> impl Strategy<Value = ShardPartial> {
    prop_oneof![
        prop::collection::vec(delay_hist(), 0..6).prop_map(ShardPartial::Delay),
        active_sources(),
        series().prop_map(ShardPartial::Series),
        vec_u64().prop_map(ShardPartial::PublisherCounts),
        (1u32..64, prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 0..10))
            .prop_map(|(k, entries)| ShardPartial::TopEvents { k, entries }),
    ]
}

fn flight_forward() -> impl Strategy<Value = FlightForward> {
    (any::<u64>(), any::<u64>(), 0u8..=2, "[a-z_]{0,12}", "[a-z_]{0,12}", "[a-z0-9 ]{0,30}")
        .prop_map(|(seq, t_us, level, component, code, detail)| FlightForward {
            seq,
            t_us,
            level,
            component,
            code,
            detail,
        })
}

fn wire_span() -> impl Strategy<Value = WireSpan> {
    (
        ("[a-z_]{0,16}", "[a-z]{0,8}", any::<u64>(), any::<u64>(), any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        prop::collection::vec(("[a-z]{1,8}", any::<u64>()), 0..3),
    )
        .prop_map(|((name, cat, start_unix_ns, dur_ns, tid), (trace_id, span_id, parent_id), args)| {
            WireSpan { name, cat, start_unix_ns, dur_ns, tid, trace_id, span_id, parent_id, args }
        })
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(shard_id, partitions, ev_row_base, events, mentions, generation)| {
                Frame::Hello(Hello {
                    shard_id,
                    partitions,
                    ev_row_base,
                    events,
                    mentions,
                    generation,
                })
            }),
        shard_query().prop_map(Frame::Request),
        (any::<u64>(), shard_partial(), prop::collection::vec(flight_forward(), 0..4))
            .prop_map(|(generation, partial, flight)| Frame::Reply {
                generation,
                partial,
                flight
            }),
        Just(Frame::HealthProbe),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(live, total, generation)| {
            Frame::Health(Health { live, total, generation })
        }),
        Just(Frame::BumpGeneration),
        query().prop_map(Frame::Query),
        query_result().prop_map(Frame::Result),
        (any::<u16>(), "[a-z ]{0,40}").prop_map(|(code, message)| Frame::Error { code, message }),
        Just(Frame::MetricsRequest),
        ("[ -~]{0,80}", prop::collection::vec(flight_forward(), 0..4))
            .prop_map(|(snapshot_json, flight)| Frame::MetricsReply { snapshot_json, flight }),
        Just(Frame::TraceRequest),
        (any::<u32>(), prop::collection::vec(wire_span(), 0..4))
            .prop_map(|(pid, spans)| Frame::TraceReply { pid, spans }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame round-trips bit-identically, and decode consumes
    /// exactly the bytes encode produced.
    #[test]
    fn frames_round_trip(f in frame()) {
        let bytes = f.encode();
        let (back, consumed) = Frame::decode(&bytes).expect("decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, f);
    }

    /// A frame followed by trailing garbage still decodes to the same
    /// value and reports the exact frame length.
    #[test]
    fn decode_ignores_bytes_after_the_frame(f in frame(), tail in prop::collection::vec(any::<u8>(), 1..32)) {
        let mut bytes = f.encode();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&tail);
        let (back, consumed) = Frame::decode(&bytes).expect("decode");
        prop_assert_eq!(consumed, frame_len);
        prop_assert_eq!(back, f);
    }

    /// Every proper prefix is rejected as `Truncated` — no partial
    /// frame ever decodes.
    #[test]
    fn truncation_is_always_detected(f in frame(), cut in 0usize..1000) {
        let bytes = f.encode();
        prop_assume!(!bytes.is_empty());
        let cut = cut % bytes.len();
        match Frame::decode(&bytes[..cut]) {
            Err(WireError::Truncated { needed, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(needed > cut);
            }
            other => prop_assert!(false, "prefix of {cut} bytes decoded as {other:?}"),
        }
    }

    /// Flipping any single bit is caught: a typed error, never a
    /// silently different frame. (A flip in the checksum itself yields
    /// BadChecksum; flips in the header can surface as any typed
    /// variant, but never success-with-different-value.)
    #[test]
    fn corruption_is_always_detected(f in frame(), pos in 0usize..2000, bit in 0u8..8) {
        let mut bytes = f.encode();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match Frame::decode(&bytes) {
            Err(_) => {}
            Ok((back, _)) => prop_assert!(
                false,
                "bit flip at byte {pos} decoded successfully as {back:?}"
            ),
        }
    }

    /// Corrupting the payload (past the header, before the checksum)
    /// is specifically a checksum failure.
    #[test]
    fn payload_corruption_is_a_checksum_error(f in frame(), pos in 0usize..2000, xor in 1u8..=255) {
        let mut bytes = f.encode();
        prop_assume!(bytes.len() > HEADER_LEN + CHECKSUM_LEN);
        let payload_len = bytes.len() - HEADER_LEN - CHECKSUM_LEN;
        let pos = HEADER_LEN + pos % payload_len;
        bytes[pos] ^= xor;
        prop_assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    /// Trace context rides the v2 header bit-identically and is
    /// invisible to the payload: the same frame encodes to the same
    /// payload bytes whatever ids the header carries.
    #[test]
    fn trace_context_rides_the_header(f in frame(), trace_id in any::<u64>(), parent in any::<u64>()) {
        let bytes = f.encode_traced(trace_id, parent);
        let (back, tid, pspan, consumed) = Frame::decode_traced(&bytes).expect("decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, f);
        prop_assert_eq!(tid, trace_id);
        prop_assert_eq!(pspan, parent);
        // Same payload, different header context: only header +
        // checksum bytes may differ.
        let untraced = f.encode();
        prop_assert_eq!(&untraced[HEADER_LEN..untraced.len() - CHECKSUM_LEN],
                        &bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN]);
    }

    /// Version negotiation (the compatibility contract): genuine
    /// version-1 frames — 11-byte header, no trace fields, no Reply
    /// flight section — still decode, with zero trace context and an
    /// empty flight vec. Typed errors for prefixes, never a panic.
    #[test]
    fn v1_frames_decode_with_zero_trace_context(f in frame(), cut in 0usize..1000) {
        let bytes = f.encode_v1();
        prop_assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION_V1);
        let (back, tid, pspan, consumed) = Frame::decode_traced(&bytes).expect("v1 decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(tid, 0, "v1 frames carry no trace id");
        prop_assert_eq!(pspan, 0, "v1 frames carry no parent span");
        // A v1 Reply predates the flight section; everything else is
        // unchanged by the downgrade.
        let expect = match f {
            Frame::Reply { generation, partial, .. } =>
                Frame::Reply { generation, partial, flight: Vec::new() },
            other => other,
        };
        prop_assert_eq!(back, expect);
        // And every proper prefix of a v1 frame is typed Truncated,
        // with `needed` never below the v1 header length rules.
        let cut = cut % bytes.len();
        match Frame::decode(&bytes[..cut]) {
            Err(WireError::Truncated { needed, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(needed > cut);
            }
            other => prop_assert!(false, "v1 prefix of {cut} bytes decoded as {other:?}"),
        }
    }
}

#[test]
fn bad_magic_version_and_kind_are_typed() {
    let good = Frame::HealthProbe.encode();

    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(Frame::decode(&bad), Err(WireError::BadMagic(_))));

    // Version and kind live inside the checksummed region, so a raw
    // flip is caught by FNV first; rebuild the checksum to reach the
    // typed checks underneath.
    let reseal = |mut b: Vec<u8>| {
        let body = b.len() - CHECKSUM_LEN;
        let sum = gdelt_columnar::binfmt::fnv1a64(&b[..body]);
        b[body..].copy_from_slice(&sum.to_le_bytes());
        b
    };

    let mut bad = good.clone();
    bad[4] = 0xEE;
    assert!(matches!(Frame::decode(&reseal(bad)), Err(WireError::BadVersion(_))));

    let mut bad = good.clone();
    bad[6] = 0xEE;
    assert!(matches!(Frame::decode(&reseal(bad)), Err(WireError::BadKind(0xEE))));

    // The v2 length field sits after the two 8-byte trace ids.
    let mut bad = good;
    for b in &mut bad[HEADER_LEN - 4..HEADER_LEN] {
        *b = 0xFF;
    }
    assert!(matches!(Frame::decode(&bad), Err(WireError::Oversized(_))));
}

#[test]
fn header_layouts_match_the_documented_offsets() {
    let v2 = Frame::HealthProbe.encode_traced(0x1122_3344_5566_7788, 0x99AA_BBCC_DDEE_FF00);
    assert_eq!(v2.len(), HEADER_LEN + CHECKSUM_LEN, "empty payload");
    assert_eq!(&v2[0..4], b"GDSH");
    assert_eq!(u16::from_le_bytes([v2[4], v2[5]]), VERSION);
    assert_eq!(
        u64::from_le_bytes(v2[7..15].try_into().unwrap()),
        0x1122_3344_5566_7788,
        "trace id at offset 7"
    );
    assert_eq!(
        u64::from_le_bytes(v2[15..23].try_into().unwrap()),
        0x99AA_BBCC_DDEE_FF00,
        "parent span at offset 15"
    );
    assert_eq!(u32::from_le_bytes(v2[23..27].try_into().unwrap()), 0, "length at offset 23");

    let v1 = Frame::HealthProbe.encode_v1();
    assert_eq!(v1.len(), HEADER_LEN_V1 + CHECKSUM_LEN);
    assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), VERSION_V1);
    assert_eq!(u32::from_le_bytes(v1[7..11].try_into().unwrap()), 0, "v1 length at offset 7");

    // An unknown future version is a typed rejection on both the
    // buffer and stream paths.
    let mut v3 = Frame::HealthProbe.encode();
    v3[4] = 3;
    let body = v3.len() - CHECKSUM_LEN;
    let sum = gdelt_columnar::binfmt::fnv1a64(&v3[..body]);
    let split = v3.len() - CHECKSUM_LEN;
    v3[split..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(Frame::decode(&v3), Err(WireError::BadVersion(3))));
    let err = Frame::read_from(&mut &v3[..]).expect_err("stream decode must reject v3");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
