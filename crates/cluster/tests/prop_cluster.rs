//! Property tests for the sparse-matrix kernels and MCL: CSR operations
//! must match their dense counterparts for arbitrary matrices, and
//! clustering must always produce a partition of the node set.

use gdelt_cluster::components::union_find_components;
use gdelt_cluster::{connected_components, mcl, CsrMatrix, MclParams};
use proptest::prelude::*;

/// `(n, row-major data)` for a random sparse-ish square matrix.
fn arb_dense() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (1usize..8).prop_flat_map(|n| {
        prop::collection::vec(prop_oneof![4 => Just(0.0), 1 => 0.01f64..5.0], n * n)
            .prop_map(move |data| (n, data))
    })
}

/// A pair of same-size dense matrices.
fn arb_dense_pair() -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>)> {
    (1usize..7).prop_flat_map(|n| {
        let cell = prop_oneof![4 => Just(0.0), 1 => 0.01f64..5.0];
        let cell2 = prop_oneof![4 => Just(0.0), 1 => 0.01f64..5.0];
        (prop::collection::vec(cell, n * n), prop::collection::vec(cell2, n * n))
            .prop_map(move |(a, b)| (n, a, b))
    })
}

fn dense_mul(n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let v = a[i * n + k];
            if v != 0.0 {
                for j in 0..n {
                    out[i * n + j] += v * b[k * n + j];
                }
            }
        }
    }
    out
}

fn approx(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_dense_round_trip((n, dense) in arb_dense()) {
        let m = CsrMatrix::from_dense(n, &dense);
        prop_assert!(approx(&m.to_dense(), &dense));
        prop_assert_eq!(m.nnz(), dense.iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn multiply_matches_dense((n, a, b) in arb_dense_pair()) {
        let ma = CsrMatrix::from_dense(n, &a);
        let mb = CsrMatrix::from_dense(n, &b);
        let got = ma.multiply(&mb).to_dense();
        prop_assert!(approx(&got, &dense_mul(n, &a, &b)));
    }

    #[test]
    fn normalized_columns_sum_to_one_or_zero((n, dense) in arb_dense()) {
        let m = CsrMatrix::from_dense(n, &dense).normalize_columns();
        let d = m.to_dense();
        for c in 0..n {
            let sum: f64 = (0..n).map(|r| d[r * n + c]).sum();
            prop_assert!(
                sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9,
                "column {c} sums to {sum}"
            );
        }
    }

    #[test]
    fn prune_only_removes_small_entries((n, dense) in arb_dense(), threshold in 0.0f64..2.0) {
        let m = CsrMatrix::from_dense(n, &dense);
        let p = m.prune(threshold);
        for r in 0..n {
            for c in 0..n {
                let v = m.get(r, c);
                let expect = if v >= threshold { v } else { 0.0 };
                prop_assert_eq!(p.get(r, c), expect);
            }
        }
        prop_assert!(p.nnz() <= m.nnz());
    }

    #[test]
    fn hadamard_power_matches_elementwise((n, dense) in arb_dense(), e in 1.0f64..4.0) {
        let m = CsrMatrix::from_dense(n, &dense);
        let p = m.hadamard_power(e);
        for r in 0..n {
            for c in 0..n {
                let v = m.get(r, c);
                let expect = if v == 0.0 { 0.0 } else { v.powf(e) };
                prop_assert!((p.get(r, c) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn max_abs_diff_is_a_metric((n, a, b) in arb_dense_pair()) {
        let ma = CsrMatrix::from_dense(n, &a);
        let mb = CsrMatrix::from_dense(n, &b);
        let d = ma.max_abs_diff(&mb);
        prop_assert!((d - mb.max_abs_diff(&ma)).abs() < 1e-12, "symmetry");
        prop_assert_eq!(ma.max_abs_diff(&ma), 0.0);
        // Equals the dense sup-norm of the difference.
        let expect = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
        prop_assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn union_find_components_partition_nodes(
        n in 1usize..60,
        edges in prop::collection::vec((0u32..60, 0u32..60), 0..120),
    ) {
        let comps = union_find_components(n, edges.iter().copied());
        // Every node appears exactly once.
        let mut all: Vec<u32> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
        // Both endpoints of an in-range edge share a component.
        for &(a, b) in &edges {
            if (a as usize) < n && (b as usize) < n {
                let ca = comps.iter().position(|c| c.contains(&a));
                let cb = comps.iter().position(|c| c.contains(&b));
                prop_assert_eq!(ca, cb);
            }
        }
    }

    #[test]
    fn mcl_clusters_partition_nodes(
        n in 1usize..16,
        edges in prop::collection::vec((0u32..16, 0u32..16, 0.05f64..1.0), 0..40),
    ) {
        let sym: Vec<(u32, u32, f64)> = edges
            .iter()
            .filter(|&&(a, b, _)| (a as usize) < n && (b as usize) < n && a != b)
            .flat_map(|&(a, b, w)| [(a, b, w), (b, a, w)])
            .collect();
        let m = CsrMatrix::from_triplets(n, &sym);
        let c = mcl(&m, MclParams::default());
        let mut all: Vec<u32> = c.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
        // MCL never merges disconnected components.
        let comps = connected_components(&m, f64::MIN_POSITIVE);
        for cluster in &c.clusters {
            let comp_of_first = comps.iter().position(|x| x.contains(&cluster[0])).unwrap();
            for node in cluster {
                prop_assert!(
                    comps[comp_of_first].contains(node),
                    "cluster spans disconnected components"
                );
            }
        }
    }
}
