//! Connected components via union-find — the cheap clustering baseline
//! and the cluster-extraction step of MCL.

/// Union-find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Extract all sets as sorted member lists.
    pub fn sets(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut by_root: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for x in 0..n as u32 {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut out: Vec<Vec<u32>> = by_root.into_values().collect();
        for s in &mut out {
            s.sort_unstable();
        }
        out.sort_by_key(|s| s.first().copied());
        out
    }
}

/// Connected components of an edge list over `n` nodes.
pub fn union_find_components(n: usize, edges: impl Iterator<Item = (u32, u32)>) -> Vec<Vec<u32>> {
    let mut uf = UnionFind::new(n);
    for (a, b) in edges {
        if (a as usize) < n && (b as usize) < n {
            uf.union(a, b);
        }
    }
    uf.sets()
}

/// Components of a thresholded similarity matrix: nodes `i`, `j` join
/// when `sim(i, j) >= threshold`. The baseline clustering the MCL
/// benchmark compares against.
pub fn connected_components(sim: &crate::sparse::CsrMatrix, threshold: f64) -> Vec<Vec<u32>> {
    let mut edges = Vec::new();
    for r in 0..sim.n {
        for i in sim.indptr[r]..sim.indptr[r + 1] {
            if sim.values[i] >= threshold {
                edges.push((r as u32, sim.indices[i]));
            }
        }
    }
    union_find_components(sim.n, edges.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    #[test]
    fn union_find_merges_and_finds() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        let sets = uf.sets();
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn components_from_edges() {
        let comps = union_find_components(6, [(0u32, 1u32), (2, 3), (3, 4)].into_iter());
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
    }

    #[test]
    fn out_of_range_edges_ignored() {
        let comps = union_find_components(2, [(0u32, 9u32)].into_iter());
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn thresholded_components() {
        let sim = CsrMatrix::from_triplets(
            4,
            &[(0, 1, 0.9), (1, 0, 0.9), (1, 2, 0.1), (2, 1, 0.1), (2, 3, 0.8), (3, 2, 0.8)],
        );
        let strong = connected_components(&sim, 0.5);
        assert_eq!(strong, vec![vec![0, 1], vec![2, 3]]);
        let weak = connected_components(&sim, 0.05);
        assert_eq!(weak, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn empty_matrix_all_singletons() {
        let comps = connected_components(&CsrMatrix::zeros(3), 0.5);
        assert_eq!(comps.len(), 3);
    }
}
