//! Compressed-sparse-row matrices for Markov clustering.
//!
//! MCL iterates on a column-stochastic similarity matrix. The
//! co-reporting matrices this runs on are symmetric and (outside the
//! media-group blocks) sparse, so CSR with row-parallel kernels is the
//! natural representation — the paper makes the same observation about
//! time-sliced co-reporting matrices (§VI-B).

use rayon::prelude::*;

/// A square CSR matrix with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Dimension (square).
    pub n: usize,
    /// Row pointer array, `n + 1` entries.
    pub indptr: Vec<usize>,
    /// Column indices, grouped by row, ascending within a row.
    pub indices: Vec<u32>,
    /// Values parallel to `indices`.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        CsrMatrix { n, indptr: vec![0; n + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Build from unordered triplets, summing duplicates and dropping
    /// explicit zeros.
    pub fn from_triplets(n: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut sorted: Vec<(u32, u32, f64)> = triplets
            .iter()
            .filter(|&&(r, c, v)| v != 0.0 && (r as usize) < n && (c as usize) < n)
            .copied()
            .collect();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; n + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Same row (indptr cursor at r+1 nonzero) and same col →
                // accumulate.
                let row_started = indptr[r as usize + 1] > indptr[r as usize];
                if row_started && last_c == c {
                    *values.last_mut().expect("non-empty") += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Fill empty-row gaps in indptr.
        for i in 1..=n {
            if indptr[i] < indptr[i - 1] {
                indptr[i] = indptr[i - 1];
            }
        }
        CsrMatrix { n, indptr, indices, values }
    }

    /// Build from a dense row-major slice.
    pub fn from_dense(n: usize, dense: &[f64]) -> Self {
        assert_eq!(dense.len(), n * n, "dense data must be n*n");
        let mut indptr = vec![0usize; n + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let v = dense[r * n + c];
                if v != 0.0 {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr[r + 1] = indices.len();
        }
        CsrMatrix { n, indptr, indices, values }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entry accessor (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        match self.indices[lo..hi].binary_search(&(c as u32)) {
            Ok(i) => self.values[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Densify (tests / tiny matrices only).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n * self.n];
        for r in 0..self.n {
            for i in self.indptr[r]..self.indptr[r + 1] {
                out[r * self.n + self.indices[i] as usize] = self.values[i];
            }
        }
        out
    }

    /// Add `v` to every diagonal entry (MCL self-loops).
    pub fn add_self_loops(&self, v: f64) -> CsrMatrix {
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(self.nnz() + self.n);
        for r in 0..self.n {
            for i in self.indptr[r]..self.indptr[r + 1] {
                triplets.push((r as u32, self.indices[i], self.values[i]));
            }
            triplets.push((r as u32, r as u32, v));
        }
        CsrMatrix::from_triplets(self.n, &triplets)
    }

    /// Normalize every **column** to sum 1 (column-stochastic form).
    /// All-zero columns stay zero.
    pub fn normalize_columns(&self) -> CsrMatrix {
        let mut col_sums = vec![0.0f64; self.n];
        for (i, &c) in self.indices.iter().enumerate() {
            col_sums[c as usize] += self.values[i];
        }
        let mut out = self.clone();
        for (i, &c) in self.indices.iter().enumerate() {
            let s = col_sums[c as usize];
            if s > 0.0 {
                out.values[i] = self.values[i] / s;
            }
        }
        out
    }

    /// Sparse matrix product `self * other` with row-parallel dense
    /// accumulators.
    pub fn multiply(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let rows: Vec<(Vec<u32>, Vec<f64>)> = (0..n)
            .into_par_iter()
            .map(|r| {
                // analyze: allow(hot_alloc): the per-row dense accumulator IS the algorithm
                let mut acc = vec![0.0f64; n];
                // analyze: allow(hot_alloc): per-row output column set, size unknown upfront
                let mut touched: Vec<u32> = Vec::new();
                for i in self.indptr[r]..self.indptr[r + 1] {
                    let k = self.indices[i] as usize;
                    let v = self.values[i];
                    for j in other.indptr[k]..other.indptr[k + 1] {
                        let c = other.indices[j] as usize;
                        if acc[c] == 0.0 {
                            // analyze: allow(hot_alloc): amortized push into the row output
                            touched.push(c as u32);
                        }
                        acc[c] += v * other.values[j];
                    }
                }
                touched.sort_unstable();
                // analyze: allow(hot_alloc): one exact-size row materialization
                let vals: Vec<f64> = touched.iter().map(|&c| acc[c as usize]).collect();
                (touched, vals)
            })
            .collect();
        let mut indptr = vec![0usize; n + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (r, (cols, vals)) in rows.into_iter().enumerate() {
            indices.extend(cols);
            values.extend(vals);
            indptr[r + 1] = indices.len();
        }
        CsrMatrix { n, indptr, indices, values }
    }

    /// Hadamard (element-wise) power — the MCL inflation kernel.
    pub fn hadamard_power(&self, exponent: f64) -> CsrMatrix {
        let mut out = self.clone();
        out.values.par_iter_mut().for_each(|v| *v = v.powf(exponent));
        out
    }

    /// Drop entries below `threshold` (MCL pruning).
    pub fn prune(&self, threshold: f64) -> CsrMatrix {
        let mut indptr = vec![0usize; self.n + 1];
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.n {
            for i in self.indptr[r]..self.indptr[r + 1] {
                if self.values[i] >= threshold {
                    indices.push(self.indices[i]);
                    values.push(self.values[i]);
                }
            }
            indptr[r + 1] = indices.len();
        }
        CsrMatrix { n: self.n, indptr, indices, values }
    }

    /// Largest absolute element-wise difference to another matrix
    /// (convergence check).
    pub fn max_abs_diff(&self, other: &CsrMatrix) -> f64 {
        assert_eq!(self.n, other.n, "dimension mismatch");
        // Walk both row streams; missing entries count as 0.
        let mut max = 0.0f64;
        for r in 0..self.n {
            let (mut i, ei) = (self.indptr[r], self.indptr[r + 1]);
            let (mut j, ej) = (other.indptr[r], other.indptr[r + 1]);
            while i < ei || j < ej {
                let ci = if i < ei { self.indices[i] } else { u32::MAX };
                let cj = if j < ej { other.indices[j] } else { u32::MAX };
                let d = match ci.cmp(&cj) {
                    std::cmp::Ordering::Less => {
                        let d = self.values[i].abs();
                        i += 1;
                        d
                    }
                    std::cmp::Ordering::Greater => {
                        let d = other.values[j].abs();
                        j += 1;
                        d
                    }
                    std::cmp::Ordering::Equal => {
                        let d = (self.values[i] - other.values[j]).abs();
                        i += 1;
                        j += 1;
                        d
                    }
                };
                max = max.max(d);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn from_triplets_sorts_and_sums() {
        let m = CsrMatrix::from_triplets(3, &[(1, 2, 1.0), (0, 1, 2.0), (1, 2, 0.5), (2, 0, 3.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 2), 1.5);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_triplets_drops_zeros_and_out_of_range() {
        let m = CsrMatrix::from_triplets(2, &[(0, 0, 0.0), (5, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn dense_round_trip() {
        let dense = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0];
        let m = CsrMatrix::from_dense(3, &dense);
        assert_eq!(m.nnz(), 4);
        assert!(approx(&m.to_dense(), &dense));
    }

    #[test]
    fn column_normalization() {
        // Column 0 sums to 5, column 1 to 2.
        let m = CsrMatrix::from_dense(2, &[1.0, 2.0, 4.0, 0.0]);
        let n = m.normalize_columns();
        assert!(approx(&n.to_dense(), &[0.2, 1.0, 0.8, 0.0]));
    }

    #[test]
    fn multiply_matches_dense() {
        let a = CsrMatrix::from_dense(2, &[1.0, 2.0, 3.0, 4.0]);
        let b = CsrMatrix::from_dense(2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.multiply(&b);
        assert!(approx(&c.to_dense(), &[19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn multiply_keeps_sparsity() {
        let a = CsrMatrix::from_triplets(4, &[(0, 1, 1.0)]);
        let b = CsrMatrix::from_triplets(4, &[(1, 3, 2.0)]);
        let c = a.multiply(&b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 3), 2.0);
    }

    #[test]
    fn hadamard_power_and_prune() {
        let m = CsrMatrix::from_dense(2, &[0.5, 0.25, 0.0, 1.0]);
        let p = m.hadamard_power(2.0);
        assert!(approx(&p.to_dense(), &[0.25, 0.0625, 0.0, 1.0]));
        let pruned = p.prune(0.1);
        assert_eq!(pruned.nnz(), 2);
        assert_eq!(pruned.get(0, 1), 0.0);
    }

    #[test]
    fn self_loops() {
        let m = CsrMatrix::from_triplets(2, &[(0, 1, 1.0)]);
        let s = m.add_self_loops(0.5);
        assert_eq!(s.get(0, 0), 0.5);
        assert_eq!(s.get(1, 1), 0.5);
        assert_eq!(s.get(0, 1), 1.0);
    }

    #[test]
    fn max_abs_diff_handles_different_patterns() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 0.5)]);
        let b = CsrMatrix::from_triplets(2, &[(0, 0, 0.75), (1, 1, 0.2)]);
        let d = a.max_abs_diff(&b);
        assert!((d - 0.5).abs() < 1e-12); // the (0,1) entry vs 0
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn zeros_matrix() {
        let z = CsrMatrix::zeros(3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.get(2, 2), 0.0);
        let m = CsrMatrix::from_triplets(3, &[(0, 0, 1.0)]);
        let prod = z.multiply(&m);
        assert_eq!(prod.nnz(), 0);
    }
}
