//! Markov Clustering (MCL), van Dongen 2000 — the algorithm the paper
//! names for finding co-owned publisher clusters in the co-reporting
//! matrix (§VI-B).
//!
//! The iteration alternates **expansion** (squaring the column-stochastic
//! matrix — flow spreads) and **inflation** (Hadamard power + column
//! renormalization — strong flow strengthens, weak flow decays), with
//! pruning of negligible entries. At convergence the matrix is a union of
//! star-shaped attractor systems; clusters are read off as the weakly
//! connected components of the nonzero pattern.

use crate::components::union_find_components;
use crate::sparse::CsrMatrix;

/// MCL hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MclParams {
    /// Inflation exponent (≥ 1); higher → finer clusters. 2.0 is the
    /// standard default.
    pub inflation: f64,
    /// Entries below this are pruned each iteration.
    pub prune_threshold: f64,
    /// Convergence tolerance on the max element change.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Self-loop weight added before normalization.
    pub self_loop: f64,
}

impl Default for MclParams {
    fn default() -> Self {
        MclParams {
            inflation: 2.0,
            prune_threshold: 1e-5,
            epsilon: 1e-6,
            max_iterations: 100,
            self_loop: 1.0,
        }
    }
}

/// MCL result.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Clusters as sorted member lists, ordered by descending size then
    /// by smallest member.
    pub clusters: Vec<Vec<u32>>,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
    /// Whether the epsilon criterion was met within the cap.
    pub converged: bool,
}

impl Clustering {
    /// Cluster index of each node.
    pub fn assignment(&self, n: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; n];
        for (ci, members) in self.clusters.iter().enumerate() {
            for &m in members {
                out[m as usize] = ci;
            }
        }
        out
    }
}

/// Run MCL on a symmetric non-negative similarity matrix.
///
/// # Panics
/// If `params.inflation < 1.0`.
pub fn mcl(similarity: &CsrMatrix, params: MclParams) -> Clustering {
    assert!(params.inflation >= 1.0, "inflation must be >= 1");
    let mut m = similarity.add_self_loops(params.self_loop).normalize_columns();
    let mut iterations = 0;
    let mut converged = false;
    while iterations < params.max_iterations {
        iterations += 1;
        let expanded = m.multiply(&m);
        let inflated = expanded
            .hadamard_power(params.inflation)
            .normalize_columns()
            .prune(params.prune_threshold)
            .normalize_columns();
        let diff = inflated.max_abs_diff(&m);
        m = inflated;
        if diff < params.epsilon {
            converged = true;
            break;
        }
    }

    // Clusters = weakly connected components of the converged pattern.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m.nnz());
    for r in 0..m.n {
        for i in m.indptr[r]..m.indptr[r + 1] {
            edges.push((r as u32, m.indices[i]));
        }
    }
    let mut clusters = union_find_components(m.n, edges.iter().copied());
    clusters.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.first().copied()));
    Clustering { clusters, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 3-cliques joined by a single weak edge.
    fn two_cliques() -> CsrMatrix {
        let mut t = Vec::new();
        let clique = |t: &mut Vec<(u32, u32, f64)>, nodes: &[u32]| {
            for &a in nodes {
                for &b in nodes {
                    if a != b {
                        t.push((a, b, 1.0));
                    }
                }
            }
        };
        clique(&mut t, &[0, 1, 2]);
        clique(&mut t, &[3, 4, 5]);
        t.push((2, 3, 0.05));
        t.push((3, 2, 0.05));
        CsrMatrix::from_triplets(6, &t)
    }

    #[test]
    fn separates_two_cliques() {
        let c = mcl(&two_cliques(), MclParams::default());
        assert!(c.converged, "did not converge in {} iterations", c.iterations);
        assert_eq!(c.clusters.len(), 2);
        let a: Vec<u32> = c.clusters[0].clone();
        let b: Vec<u32> = c.clusters[1].clone();
        let mut all: Vec<u32> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        assert!(a == vec![0, 1, 2] || a == vec![3, 4, 5]);
    }

    #[test]
    fn assignment_maps_nodes() {
        let c = mcl(&two_cliques(), MclParams::default());
        let assign = c.assignment(6);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[0], assign[2]);
        assert_ne!(assign[0], assign[3]);
        assert_eq!(assign[3], assign[5]);
    }

    #[test]
    fn isolated_nodes_form_singletons() {
        let m = CsrMatrix::from_triplets(4, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let c = mcl(&m, MclParams::default());
        assert_eq!(c.clusters.len(), 3); // {0,1}, {2}, {3}
        assert_eq!(c.clusters[0], vec![0, 1]);
    }

    #[test]
    fn higher_inflation_never_coarsens() {
        let sim = two_cliques();
        let fine = mcl(&sim, MclParams { inflation: 4.0, ..Default::default() });
        let coarse = mcl(&sim, MclParams { inflation: 1.4, ..Default::default() });
        assert!(fine.clusters.len() >= coarse.clusters.len());
    }

    #[test]
    fn empty_matrix_is_all_singletons() {
        let c = mcl(&CsrMatrix::zeros(3), MclParams::default());
        assert_eq!(c.clusters.len(), 3);
    }

    #[test]
    #[should_panic(expected = "inflation")]
    fn rejects_deflation() {
        let _ = mcl(&CsrMatrix::zeros(1), MclParams { inflation: 0.5, ..Default::default() });
    }

    #[test]
    fn deterministic() {
        let sim = two_cliques();
        let a = mcl(&sim, MclParams::default());
        let b = mcl(&sim, MclParams::default());
        assert_eq!(a, b);
    }
}
