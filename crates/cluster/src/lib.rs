//! # gdelt-cluster
//!
//! Graph clustering over co-reporting matrices.
//!
//! The paper (§VI-B) points out that clusters of co-owned news websites
//! can be found "by applying clustering algorithms (e.g. Markov
//! clustering) to the co-reporting matrix", the symmetric Jaccard matrix
//! being better suited than the asymmetric follow matrix. This crate
//! implements that follow-up:
//!
//! * [`sparse`] — a compressed-sparse-row matrix with the operations MCL
//!   needs (column normalization, sparse product, Hadamard power,
//!   pruning);
//! * [`mcl()`] — Markov Clustering (expansion/inflation iteration, cluster
//!   extraction);
//! * [`components`] — union-find connected components over a thresholded
//!   similarity graph, the cheap baseline.

#![warn(missing_docs)]

pub mod components;
pub mod mcl;
pub mod sparse;

pub use components::connected_components;
pub use mcl::{mcl, MclParams};
pub use sparse::CsrMatrix;
