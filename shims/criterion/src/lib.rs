//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Air-gapped builds cannot fetch the real criterion, so this crate
//! provides the same API shape backed by a small wall-clock harness:
//! each benchmark warms up briefly, then runs `sample_size` samples and
//! prints min / median / mean per iteration (plus throughput when
//! configured). There is no statistical analysis, no HTML report and no
//! baseline comparison — the point is that `cargo bench` compiles, runs
//! and produces honest timings on a sealed machine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness: holds defaults that groups inherit.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target duration for the whole sampling phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.run(&id, f);
        self
    }
}

/// Unit attached to reported timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Display id for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Id rendered from the parameter value alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { repr: param.to_string() }
    }

    /// Id with a function-name prefix.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { repr: format!("{}/{param}", name.into()) }
    }
}

/// A named collection of benchmarks sharing config.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Attach a throughput unit to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.repr.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    /// End the group (upstream writes reports here; the shim only
    /// prints a separator).
    pub fn finish(self) {
        eprintln!();
    }

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the body repeatedly until the warm-up budget is
        // spent, so first-touch effects don't land in the samples.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut iters_per_sample: u64 = 1;
        while Instant::now() < warm_deadline {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                // Aim each sample at ~1/sample_size of the measurement
                // budget so the total run lands near measurement_time.
                let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
                let per_iter = b.elapsed.as_secs_f64();
                iters_per_sample = ((per_sample / per_iter) as u64).clamp(1, 1_000_000);
            }
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter_ns[0];
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        let mut line = format!(
            "{}/{id}: min {} | median {} | mean {} ({} samples x {} iters)",
            self.name,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            per_iter_ns.len(),
            iters_per_sample,
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(n) => (n as f64, "MiB/s"),
                Throughput::Elements(n) => (n as f64, "Melem/s"),
            };
            let per_sec = amount / (median / 1e9);
            let scaled = match t {
                Throughput::Bytes(_) => per_sec / (1024.0 * 1024.0),
                Throughput::Elements(_) => per_sec / 1e6,
            };
            line.push_str(&format!(" | {scaled:.1} {unit}"));
        }
        eprintln!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        assert!(runs >= 3, "body ran during warm-up and sampling");
    }

    #[test]
    fn group_runs_with_throughput_and_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(8).repr, "8");
        assert_eq!(BenchmarkId::new("scan", 8).repr, "scan/8");
    }
}
