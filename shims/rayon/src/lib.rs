//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! The real rayon cannot be fetched on air-gapped machines, and the
//! engine only needs a small slice of its API: `into_par_iter()` on
//! vectors and index ranges, `par_iter_mut()` on vectors, `map` /
//! `for_each` / `collect`, the per-worker-scratch variants `map_init` /
//! `for_each_init`, thread pools with a fixed thread count, and
//! `current_num_threads()`. This crate reimplements exactly that slice
//! on `std::thread::scope`, preserving rayon's semantics that matter
//! here:
//!
//! * `map(...).collect()` preserves input order;
//! * work actually runs on multiple OS threads (the scaling sweep and
//!   the ThreadSanitizer profile need real concurrency);
//! * `ThreadPool::install(f)` makes `current_num_threads()` inside `f`
//!   report the pool's size, which the partitioner uses to size chunks.
//!
//! Everything is implemented with safe code; closures panicking inside a
//! worker propagate to the caller, as with real rayon.

#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error type mirroring rayon's pool construction failure (the shim's
/// pools cannot actually fail to build).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical pool: in this shim, a thread-count policy rather than a set
/// of persistent workers (threads are scoped per parallel call).
#[derive(Debug)]
pub struct ThreadPool {
    n_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count in effect for any parallel
    /// operations it performs.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.n_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.n_threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    n_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.n_threads = Some(n);
        self
    }

    /// Build the pool. Never fails in the shim; the `Result` mirrors the
    /// upstream signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.n_threads {
            Some(0) | None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { n_threads: n })
    }
}

/// Run `f` over `items` on up to `current_num_threads()` scoped threads,
/// returning outputs in input order.
fn parallel_map<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    parallel_map_init(items, &|| (), &|_, v| f(v))
}

/// The init-aware core: every worker builds one scratch value with
/// `init` and threads it through its whole contiguous chunk — rayon's
/// `map_init` amortization contract. The scratch never crosses threads,
/// so it needs neither `Send` nor `Sync`.
fn parallel_map_init<I, O, T, N, F>(items: Vec<I>, init: &N, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    N: Fn() -> T + Sync,
    F: Fn(&mut T, I) -> O + Sync,
{
    let n_threads = current_num_threads().min(items.len().max(1));
    if n_threads <= 1 || items.len() <= 1 {
        let mut scratch = init();
        return items.into_iter().map(|v| f(&mut scratch, v)).collect();
    }
    // Near-even contiguous chunks, one per worker, mirroring the static
    // schedule the engine's partitioner assumes.
    let len = items.len();
    let base = len / n_threads;
    let extra = len % n_threads;
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n_threads);
    let mut it = items.into_iter();
    for t in 0..n_threads {
        let take = base + usize::from(t < extra);
        chunks.push(it.by_ref().take(take).collect());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = init();
                    chunk.into_iter().map(|v| f(&mut scratch, v)).collect::<Vec<O>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// An eagerly-evaluated parallel iterator over owned items.
///
/// Unlike real rayon this is not lazy: each `map` call performs the
/// parallel pass immediately. For the chains this workspace writes
/// (`into_par_iter().map(..).collect()` and `..for_each(..)`) the
/// observable behavior is identical.
pub struct ParVec<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Parallel map preserving input order.
    pub fn map<O, F>(self, f: F) -> ParVec<O>
    where
        O: Send,
        F: Fn(T) -> O + Sync + Send,
    {
        ParVec { items: parallel_map(self.items, &f) }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        parallel_map(self.items, &|v| f(v));
    }

    /// Parallel map with per-worker scratch (rayon's
    /// `ParallelIterator::map_init`): `init` runs once per worker and
    /// the resulting value is passed `&mut` to every element that
    /// worker processes, in input order.
    pub fn map_init<S, O, N, F>(self, init: N, f: F) -> ParVec<O>
    where
        O: Send,
        N: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) -> O + Sync + Send,
    {
        ParVec { items: parallel_map_init(self.items, &init, &f) }
    }

    /// Parallel side-effecting visit with per-worker scratch (rayon's
    /// `ParallelIterator::for_each_init`).
    pub fn for_each_init<S, N, F>(self, init: N, f: F)
    where
        N: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) + Sync + Send,
    {
        parallel_map_init(self.items, &init, &|s, v| f(s, v));
    }

    /// Pair each item with its index (rayon's
    /// `IndexedParallelIterator::enumerate`).
    pub fn enumerate(self) -> ParVec<(usize, T)> {
        ParVec { items: self.items.into_iter().enumerate().collect() }
    }

    /// Gather results into a collection (order preserved).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Parallel fold-equivalent: sum of all items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type produced by the parallel iterator.
    type Item: Send;
    /// Convert into the shim's eager parallel iterator.
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParVec<usize> {
        ParVec { items: self.collect() }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParVec<u32> {
        ParVec { items: self.collect() }
    }
}

/// Borrowing parallel iteration (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParVec<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec { items: self.iter().collect() }
    }
}

/// Mutable borrowing parallel iteration
/// (`rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutably borrowed element type.
    type Item: Send + 'a;
    /// Parallel iterator over `&mut self`'s elements.
    fn par_iter_mut(&'a mut self) -> ParVec<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParVec<&'a mut T> {
        ParVec { items: self.iter_mut().collect() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParVec<&'a mut T> {
        ParVec { items: self.iter_mut().collect() }
    }
}

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> =
            (0..10_000u64).collect::<Vec<_>>().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn range_par_iter_works() {
        let v: Vec<usize> = (0..257usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v[0], 1);
        assert_eq!(v[256], 257);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        (0..1000u32).collect::<Vec<_>>().into_par_iter().for_each(|x| {
            total.fetch_add(u64::from(x), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u32> = (0..100).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn install_restores_on_exit() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| ());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn nested_install_uses_innermost() {
        let a = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let b = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = a.install(|| b.install(current_num_threads));
        assert_eq!(inner, 2);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..64usize).collect::<Vec<_>>().into_par_iter().for_each(|i| {
                assert!(i < 32, "worker boom");
            });
        });
    }

    #[test]
    fn map_init_builds_one_scratch_per_worker_and_preserves_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inits = AtomicUsize::new(0);
        let v: Vec<u64> = pool.install(|| {
            (0..10_000u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::with_capacity(8)
                    },
                    |scratch: &mut Vec<u64>, x| {
                        scratch.clear();
                        scratch.push(x * 2);
                        scratch[0]
                    },
                )
                .collect()
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&n), "one init per worker, got {n}");
    }

    #[test]
    fn for_each_init_scratch_is_reused_within_a_worker() {
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inits = AtomicUsize::new(0);
        let total = AtomicU64::new(0);
        pool.install(|| {
            (0..1000u32).collect::<Vec<_>>().into_par_iter().for_each_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |seen, x| {
                    *seen += 1;
                    total.fetch_add(u64::from(x), Ordering::Relaxed);
                },
            );
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
        assert!((1..=2).contains(&inits.load(Ordering::Relaxed)));
    }

    #[test]
    fn map_init_sequential_fallback_uses_single_scratch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inits = AtomicUsize::new(0);
        let v: Vec<u32> = pool.install(|| {
            vec![1u32, 2, 3]
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                    },
                    |_, x| x + 1,
                )
                .collect()
        });
        assert_eq!(v, vec![2, 3, 4]);
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }
}
