//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Air-gapped builds cannot fetch the real proptest, so this crate
//! reimplements the slice of its API the property tests exercise:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * range, tuple, `Just`, `any::<T>()`, `prop::bool::ANY`,
//!   `prop::collection::vec` and regex-string strategies;
//! * the `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!*`
//!   and `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input. Re-running
//!   the test replays the identical sequence.
//! * **Deterministic by default.** Each test's stream is seeded from its
//!   name, so failures reproduce without a persistence file.
//! * The regex-string strategy supports the subset of patterns used in
//!   this repo: literals, escapes, `.`, character classes (with ranges
//!   and negation), groups, and `{m,n}` / `?` / `*` / `+` repetition.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod string_gen;
pub mod test_runner;

/// `prop::...` namespace mirroring upstream's module layout.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Boolean strategies (`prop::bool::ANY`).
    pub mod bool {
        pub use crate::strategy::bool_any::{AnyBool, ANY};
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_compose, prop_oneof, proptest};
}
