//! The [`Strategy`] trait, combinators and the built-in strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`gen_value`) plus sized combinators, so strategies
/// can also live behind `Box<dyn Strategy<Value = V>>` (needed by
/// `prop_oneof!`).
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred, reason }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.as_ref().gen_value(rng)
    }
}

/// Box a strategy for heterogeneous storage (see `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.reason);
    }
}

/// Strategy yielding a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Closure-backed strategy (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F, V> FnStrategy<F>
where
    F: Fn(&mut TestRng) -> V,
{
    /// Wrap a generation closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<F, V> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> V,
{
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        (self.f)(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// Strategy over the full value range of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// `prop::bool::ANY`.
pub mod bool_any {
    use super::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The canonical instance.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// String literals act as regex strategies, as in upstream proptest.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string_gen::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Element-count bounds for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for vectors of `elem` values with a size drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.usize_inclusive(self.size.min, self.size.max);
        (0..n).map(|_| self.elem.gen_value(rng)).collect()
    }
}

/// `prop::collection::vec(elem, size)`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    branches: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` branches.
    pub fn new(branches: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { branches, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.branches {
            let w = u64::from(*w);
            if pick < w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        // Weights sum to total_weight, so a branch always matched above.
        self.branches[self.branches.len() - 1].1.gen_value(rng)
    }
}

/// The `proptest!` test-definition macro.
///
/// Supports the forms used in this repo: an optional
/// `#![proptest_config(..)]` header followed by `fn name(pat in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of `proptest!` — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case);
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    // Closure returning Result, as upstream does, so
                    // `prop_assume!` and `return Ok(())` can skip a case.
                    // (`mut` is needed only when the body mutates its
                    // `mut pat` bindings, hence the allow.)
                    #[allow(unused_mut)]
                    let mut body = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(msg) = body() {
                        panic!("proptest case failed: {msg}");
                    }
                    guard.disarm();
                }
            }
        )*
    };
}

/// The `prop_compose!` named-strategy macro (outer-args + bindings form).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Weighted (or uniform) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assertion macros: without shrinking these reduce to the std asserts.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..5_000 {
            let v = (3u32..9).gen_value(&mut r);
            assert!((3..9).contains(&v));
            let w = (1u8..=4).gen_value(&mut r);
            assert!((1..=4).contains(&w));
            let f = (0.5f64..2.0).gen_value(&mut r);
            assert!((0.5..2.0).contains(&f));
            let i = (-10i64..-2).gen_value(&mut r);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0u32..10, 0i64..5, Just("x")).gen_value(&mut r);
        assert!(a < 10);
        assert!((0..5).contains(&b));
        assert_eq!(c, "x");
    }

    #[test]
    fn map_and_flat_map() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.gen_value(&mut r);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn vec_sizes_honor_bounds() {
        let mut r = rng();
        let s = vec(0u32..3, 2..5);
        for _ in 0..200 {
            let v = s.gen_value(&mut r);
            assert!((2..=4).contains(&v.len()));
        }
        let fixed = vec(Just(1u8), 4usize);
        assert_eq!(fixed.gen_value(&mut r), vec![1, 1, 1, 1]);
    }

    #[test]
    fn oneof_draws_every_branch_by_weight() {
        let mut r = rng();
        let s: Union<u32> = prop_oneof![4 => Just(0u32), 1 => 1u32..3];
        let mut zero = 0;
        let n = 5_000;
        for _ in 0..n {
            if s.gen_value(&mut r) == 0 {
                zero += 1;
            }
        }
        // Expect ~80%.
        assert!((3_500..4_500).contains(&zero), "zero={zero}");
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.gen_value(&mut r) % 2, 0);
        }
    }

    #[test]
    fn any_and_bool_any() {
        let mut r = rng();
        let _: u64 = any::<u64>().gen_value(&mut r);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(bool_any::ANY.gen_value(&mut r))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}

#[cfg(test)]
mod macro_tests {
    // Exercise the macros exactly as downstream test files do.
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..50, b in 0u32..50) -> (u32, u32) {
            (a.min(b), a.max(b))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn composed_pairs_are_ordered((lo, hi) in arb_pair()) {
            prop_assert!(lo <= hi);
        }

        #[test]
        fn assume_skips_cases(v in 0u32..10) {
            prop_assume!(v < 5);
            prop_assert!(v < 5);
        }

        #[test]
        fn regex_strings_match_class(s in "[a-z]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }
}
